//! Quickstart: generate a synthetic traffic dataset, train SAGDFN, and
//! print per-horizon test metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sagdfn_repro::data::{metr_la_like, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::sagdfn::{trainer, Sagdfn, SagdfnConfig};

fn main() {
    // 1. A METR-LA-like dataset: 24 sensors on a latent road graph with
    //    daily seasonality, incidents and spatially-correlated noise.
    let data = metr_la_like(Scale::Tiny);
    let n = data.dataset.nodes();
    println!(
        "dataset '{}': {} sensors x {} steps at {}-minute resolution",
        data.dataset.name,
        n,
        data.dataset.steps(),
        data.dataset.interval_min
    );

    // 2. The paper's protocol: 70/10/20 split, predict 12 steps from 12.
    let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));
    println!(
        "windows: {} train / {} val / {} test",
        split.train.len(),
        split.val.len(),
        split.test.len()
    );

    // 3. Configure SAGDFN for this size (M ≈ significant neighbors,
    //    α-entmax sparsity, diffusion depth J — see SagdfnConfig docs).
    let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
    cfg.epochs = 5;
    let mut model = Sagdfn::new(n, cfg);
    println!(
        "SAGDFN: M={} top-K={} heads={} alpha={} ({} parameters)",
        model.config().m,
        model.config().top_k,
        model.config().heads,
        model.config().alpha,
        model.params.num_scalars()
    );

    // 4. Train (Algorithm 2) with early stopping on the validation split.
    let report = trainer::fit(&mut model, &split);
    for e in &report.epochs {
        println!(
            "epoch {:>2}: train MAE {:.3}  val MAE {:.3}  ({:.1}s)",
            e.epoch, e.train_loss, e.val_mae, e.seconds
        );
    }

    // 5. Evaluate on the test split, paper-style.
    println!("\ntest metrics (MAE / RMSE / MAPE):");
    for hz in [3usize, 6, 12] {
        let m = report.at_horizon(hz);
        println!("  horizon {hz:>2}: {}", m.row());
    }
    println!(
        "\nsignificant neighbor set I (first 10): {:?}",
        &model.significant_index()[..model.significant_index().len().min(10)]
    );
}
