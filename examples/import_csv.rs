//! External-data workflow: export a dataset to CSV (standing in for a
//! real METR-LA download), import it back through `sagdfn_data::io`, and
//! run the full train/checkpoint/evaluate cycle on the imported panel —
//! everything a user with their own `(T, N)` data needs.
//!
//! ```sh
//! cargo run --release --example import_csv
//! ```

use sagdfn_repro::data::{io as dataio, metr_la_like, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::nn::checkpoint;
use sagdfn_repro::sagdfn::{trainer, Sagdfn, SagdfnConfig};

fn main() {
    let dir = std::env::temp_dir().join("sagdfn-import-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_path = dir.join("traffic.csv");
    let ckpt_path = dir.join("model.json");

    // 1. Export: any (T, N) panel in headered CSV works; the synthetic
    //    generator stands in for a real download here.
    let original = metr_la_like(Scale::Tiny).dataset;
    dataio::write_csv_path(&original, &csv_path).expect("write csv");
    println!(
        "exported {} ({} nodes x {} steps) to {}",
        original.name,
        original.nodes(),
        original.steps(),
        csv_path.display()
    );

    // 2. Import: metadata (interval, clock anchor) round-trips from the
    //    comment preamble; plain CSVs without it get sane defaults.
    let imported = dataio::read_csv_path(&csv_path).expect("read csv");
    assert_eq!(imported.values, original.values, "lossless round-trip");
    let n = imported.nodes();

    // 3. Train on the imported panel.
    let split = ThreeWaySplit::new(imported, SplitSpec::paper(12, 12));
    let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
    cfg.epochs = 3;
    let mut model = Sagdfn::new(n, cfg.clone());
    let report = trainer::fit(&mut model, &split);
    println!(
        "trained {} epochs; horizon-3 test MAE {:.3}",
        report.epochs.len(),
        report.at_horizon(3).mae
    );

    // 4. Checkpoint and reload into a fresh model.
    checkpoint::save_path(&model.params, &ckpt_path).expect("save");
    let mut restored = Sagdfn::new(n, cfg);
    checkpoint::load_path(&mut restored.params, &ckpt_path).expect("load");
    restored.refresh_index();

    // 5. The restored model matches exactly.
    let m = trainer::evaluate(&restored, &split.test, 16);
    println!(
        "restored model horizon-3 test MAE {:.3} (must match the line above)",
        m[2].mae
    );
    assert!((m[2].mae - report.at_horizon(3).mae).abs() < 1e-6);
    println!("artifacts in {}", dir.display());
}
