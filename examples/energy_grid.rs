//! Domain scenario: substation load forecasting on an energy grid — the
//! "energy consumption" application the paper's introduction motivates.
//! Shows the self-attention backbone and per-node error analysis.
//!
//! ```sh
//! cargo run --release --example energy_grid
//! ```

use sagdfn_repro::data::synth::EnergyConfig;
use sagdfn_repro::data::{node_metrics, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::sagdfn::{trainer, Backbone, Sagdfn, SagdfnConfig};

fn main() {
    let data = EnergyConfig {
        nodes: 24,
        steps: 24 * 40,
        ..Default::default()
    }
    .generate("energy-grid");
    let n = data.dataset.nodes();
    println!(
        "{} substations x {} hourly steps; mean load {:.1} MW",
        n,
        data.dataset.steps(),
        data.dataset.values.mean()
    );

    let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));
    let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
    cfg.backbone = Backbone::SelfAttention; // the fast direct backbone
    cfg.epochs = 6;
    let mut model = Sagdfn::new(n, cfg);
    let report = trainer::fit(&mut model, &split);
    println!(
        "trained {} epochs; test MAE at horizons 3/6/12: {:.2} / {:.2} / {:.2} MW",
        report.epochs.len(),
        report.at_horizon(3).mae,
        report.at_horizon(6).mae,
        report.at_horizon(12).mae
    );

    // Per-substation error analysis: which feeders are hardest?
    let (pred, truth) = trainer::predict(&model, &split.test, 16);
    let per_node = node_metrics(&pred, &truth);
    let mut ranked: Vec<(usize, f32)> = per_node
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.mape))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nhardest substations (by MAPE):");
    for &(node, mape) in ranked.iter().take(3) {
        println!("  substation {node}: {:.1}% MAPE", mape * 100.0);
    }
    println!("easiest:");
    for &(node, mape) in ranked.iter().rev().take(3) {
        println!("  substation {node}: {:.1}% MAPE", mape * 100.0);
    }

    // The learned sparse structure vs the latent feeder graph.
    let idx = model.significant_index();
    println!(
        "\nsignificant neighbors: {} of {} substations selected as global hubs",
        idx.len(),
        n
    );
}
