//! Scalability demo: the crossover the paper's Table I promises.
//!
//! Measures one training iteration of SAGDFN (slim N×M graph) against an
//! AGCRN-style dense N×N recurrent model as N grows, and prints the
//! memory-model predictions for the paper-scale datasets alongside.
//!
//! ```sh
//! cargo run --release --example scalability_demo
//! ```

use sagdfn_repro::autodiff::Tape;
use sagdfn_repro::baselines::deep::{DeepConfig, DeepForecast};
use sagdfn_repro::baselines::graph::RecurrentGraphNet;
use sagdfn_repro::data::{Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::memsim::{ModelFamily, WorkloadDims, V100_32GB};
use sagdfn_repro::nn::{masked_mae, Adam, Mode, Optimizer};
use sagdfn_repro::sagdfn::{Sagdfn, SagdfnConfig};
use std::time::Instant;

fn main() {
    println!("== measured: seconds per training iteration (CPU) ==");
    println!("{:>6} {:>14} {:>14} {:>8}", "N", "SAGDFN (NxM)", "dense (NxN)", "ratio");
    for n in [50usize, 100, 200, 400] {
        let data = sagdfn_repro::data::synth::TrafficConfig {
            nodes: n,
            steps: 200,
            ..Default::default()
        }
        .generate("scal");
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(6, 6));
        let batch = split.train.make_batch(&[0, 1, 2, 3]);

        // SAGDFN with M = max(5% N, 4).
        let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        cfg.m = (n / 20).max(4);
        cfg.top_k = (cfg.m * 3 / 4).max(1).min(cfg.m - 1);
        let mut sag = Sagdfn::new(n, cfg);
        let mut opt = Adam::new(1e-3);
        let sag_time = time_iters(3, || {
            sag.maybe_resample();
            let tape = Tape::new();
            let bind = sag.params.bind(&tape);
            let pred = sag.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
            let mask = Sagdfn::loss_mask(&batch.y);
            let grads = masked_mae(pred, &batch.y, &mask).backward();
            opt.step(&mut sag.params, &bind, &grads);
            sag.tick();
        });

        // AGCRN-lite: dense adaptive N×N adjacency, same GRU substrate.
        let mut dense = RecurrentGraphNet::agcrn(n, DeepConfig::for_scale(Scale::Tiny));
        let mut opt2 = Adam::new(1e-3);
        let dense_time = time_iters(3, || {
            let tape = Tape::new();
            let bind = dense.params().bind(&tape);
            let pred = dense.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
            let mask = Sagdfn::loss_mask(&batch.y);
            let grads = masked_mae(pred, &batch.y, &mask).backward();
            opt2.step(dense.params_mut(), &bind, &grads);
        });
        println!(
            "{n:>6} {sag_time:>13.3}s {dense_time:>13.3}s {:>7.2}x",
            dense_time / sag_time
        );
    }

    println!("\n== predicted: training memory at paper scale (32 GB V100) ==");
    println!("{:>14} {:>10} {:>12} {:>8}", "model", "N", "memory", "fits?");
    for (family, n) in [
        (ModelFamily::Sagdfn, 2000usize),
        (ModelFamily::Sagdfn, 5000),
        (ModelFamily::Agcrn, 1750),
        (ModelFamily::Agcrn, 2000),
        (ModelFamily::Gts, 1000),
        (ModelFamily::Gts, 2000),
    ] {
        let dims = WorkloadDims::paper(n, 64);
        let gib = family.training_bytes(&dims) as f64 / (1u64 << 30) as f64;
        println!(
            "{:>14} {:>10} {:>10.1}Gi {:>8}",
            family.name(),
            n,
            gib,
            if family.would_oom(&dims, &V100_32GB) {
                "OOM"
            } else {
                "yes"
            }
        );
    }
}

fn time_iters(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup, then the timed average.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}
