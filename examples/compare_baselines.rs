//! Baseline shoot-out on one dataset: trains a representative roster
//! (classical, temporal, predefined-graph, adaptive-graph, SAGDFN) and
//! prints a mini leaderboard — the workflow behind the paper's Table III.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use sagdfn_repro::baselines::registry::{build, build_extra, BuildContext};
use sagdfn_repro::baselines::Forecaster;
use sagdfn_repro::data::{average, metr_la_like, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::memsim::ModelFamily;

fn main() {
    let data = metr_la_like(Scale::Tiny);
    let n = data.dataset.nodes();
    let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));
    let ctx = BuildContext {
        n,
        h: 12,
        f: 12,
        scale: Scale::Tiny,
        topology: data.graph.adj.topk_rows(6).weights().clone(),
    };

    let mut roster: Vec<Box<dyn Forecaster>> = vec![
        build_extra("HA", &ctx).unwrap(),
        build(ModelFamily::Arima, &ctx),
        build(ModelFamily::Lstm, &ctx),
        build(ModelFamily::Dcrnn, &ctx),
        build(ModelFamily::Agcrn, &ctx),
        build(ModelFamily::Gts, &ctx),
        build(ModelFamily::Sagdfn, &ctx),
    ];

    println!("training {} models on metr-la-like ({n} nodes)...\n", roster.len());
    let mut rows = Vec::new();
    for model in roster.iter_mut() {
        let summary = model.fit(&split);
        let avg = average(&model.evaluate(&split.test));
        println!(
            "{:>8}: avg MAE {:.3}  RMSE {:.3}  MAPE {:.1}%  ({} params, {:.1}s train)",
            model.name(),
            avg.mae,
            avg.rmse,
            avg.mape * 100.0,
            summary.param_count,
            summary.train_seconds
        );
        rows.push((model.name().to_string(), avg.mae));
    }

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("\nleaderboard (avg MAE over horizons):");
    for (rank, (name, mae)) in rows.iter().enumerate() {
        println!("  {}. {name} ({mae:.3})", rank + 1);
    }
}
