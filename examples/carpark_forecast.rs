//! Domain scenario: carpark-availability forecasting (the paper's
//! CARPARK1918 workload). Trains SAGDFN on bounded occupancy counts,
//! prints a one-day forecast strip for a few carparks, and inspects the
//! learned sparse spatial structure.
//!
//! ```sh
//! cargo run --release --example carpark_forecast
//! ```

use sagdfn_repro::data::{carpark_like, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_repro::sagdfn::{trainer, Sagdfn, SagdfnConfig};

fn main() {
    let data = carpark_like(Scale::Tiny);
    let n = data.dataset.nodes();
    println!(
        "{} carparks; capacities {}..{} lots",
        n,
        data.capacities.iter().min().unwrap(),
        data.capacities.iter().max().unwrap()
    );

    // CARPARK protocol: 2 h of history (24 steps) -> 1 h ahead (12 steps).
    let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(24, 12));
    let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
    cfg.epochs = 4;
    let mut model = Sagdfn::new(n, cfg);
    let report = trainer::fit(&mut model, &split);
    println!(
        "trained {} epochs; test MAE at horizons 3/6/12: {:.2} / {:.2} / {:.2} lots",
        report.epochs.len(),
        report.at_horizon(3).mae,
        report.at_horizon(6).mae,
        report.at_horizon(12).mae,
    );

    // Forecast strip: horizon-3 predictions vs truth for three carparks.
    let (pred, truth) = trainer::predict(&model, &split.test, 16);
    println!("\ncarpark  type         truth -> predicted (available lots, horizon 3)");
    for &park in &[0usize, n / 3, 2 * n / 3] {
        let ty = format!("{:?}", data.types[park]);
        print!("{park:>7}  {ty:<12}");
        for w in (0..pred.dim(1).min(40)).step_by(8) {
            print!(
                " {:>4.0}->{:<4.0}",
                truth.at(&[2, w, park]),
                pred.at(&[2, w, park])
            );
        }
        println!();
    }

    // The learned sparse structure: who are the significant neighbors?
    let idx = model.significant_index();
    println!("\nsignificant neighbor set I ({} of {} carparks):", idx.len(), n);
    let mut by_type = std::collections::HashMap::new();
    for &i in idx {
        *by_type.entry(format!("{:?}", data.types[i])).or_insert(0usize) += 1;
    }
    for (ty, count) in by_type {
        println!("  {ty}: {count}");
    }
}
