//! Table I: asymptotic computation / memory complexity per family, plus
//! numeric FLOP estimates for the scaling benchmarks.

use crate::model::{ModelFamily, WorkloadDims};

/// One row of the paper's Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComplexityRow {
    /// Model name.
    pub model: &'static str,
    /// Big-O computation complexity, as printed in the paper.
    pub computation: &'static str,
    /// Big-O memory complexity, as printed in the paper.
    pub memory: &'static str,
}

/// The Table I row for a family, for the four families the paper lists.
/// Returns `None` for families not in Table I.
pub fn complexity_row(family: ModelFamily) -> Option<ComplexityRow> {
    match family {
        ModelFamily::Agcrn => Some(ComplexityRow {
            model: "AGCRN",
            computation: "O(N^2 d + N^2 D)",
            memory: "O(N^2 + N d)",
        }),
        ModelFamily::Gts => Some(ComplexityRow {
            model: "GTS",
            computation: "O(N^2 d^2 + N^2 D)",
            memory: "O(N^2 + N^2 d)",
        }),
        ModelFamily::Step => Some(ComplexityRow {
            model: "STEP",
            computation: "O(N^2 d^2 + N^2 D)",
            memory: "O(N^2 + N^2 d)",
        }),
        ModelFamily::Sagdfn => Some(ComplexityRow {
            model: "SAGDFN",
            computation: "O(N M d^2 + N M D)",
            memory: "O(N M + N M d)",
        }),
        _ => None,
    }
}

/// Numeric FLOP estimate of the graph-learning + graph-convolution work
/// per training step, following the Table I formulas.
pub fn flops_estimate(family: ModelFamily, dims: &WorkloadDims) -> u64 {
    let n = dims.n as u64;
    let d = dims.embed as u64;
    let dd = dims.hidden as u64;
    let m = dims.m as u64;
    match family {
        ModelFamily::Agcrn => n * n * d + n * n * dd,
        ModelFamily::Gts | ModelFamily::Step => n * n * d * d + n * n * dd,
        ModelFamily::Sagdfn => n * m * d * d + n * m * dd,
        // Not in Table I; approximate with the dense-graph term.
        _ => n * n * dd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_exactly_four_rows() {
        let rows: Vec<_> = ModelFamily::ALL
            .iter()
            .filter_map(|&f| complexity_row(f))
            .collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].model, "AGCRN");
        assert_eq!(rows[3].model, "SAGDFN");
    }

    #[test]
    fn sagdfn_flops_linear_in_n_quadratic_for_others() {
        let a = WorkloadDims::paper(1000, 32);
        let b = WorkloadDims::paper(2000, 32);
        let sag = flops_estimate(ModelFamily::Sagdfn, &b) as f64
            / flops_estimate(ModelFamily::Sagdfn, &a) as f64;
        let gts = flops_estimate(ModelFamily::Gts, &b) as f64
            / flops_estimate(ModelFamily::Gts, &a) as f64;
        assert!((sag - 2.0).abs() < 1e-9, "SAGDFN ratio {sag}");
        assert!((gts - 4.0).abs() < 1e-9, "GTS ratio {gts}");
    }

    #[test]
    fn sagdfn_cheaper_than_pairwise_baselines_at_2000() {
        // At N=2000, SAGDFN's NMd² term already beats GTS/STEP's N²d² by
        // N/M = 20x. (Against AGCRN the *compute* crossover is only at
        // N ≈ Md²/(d+D) ≈ 6100 — SAGDFN's win over AGCRN is memory.)
        let dims = WorkloadDims::paper(2000, 32);
        let sag = flops_estimate(ModelFamily::Sagdfn, &dims);
        for fam in [ModelFamily::Gts, ModelFamily::Step] {
            assert!(
                sag < flops_estimate(fam, &dims) / 2,
                "SAGDFN should be at least 2x cheaper than {}",
                fam.name()
            );
        }
    }

    #[test]
    fn sagdfn_compute_overtakes_agcrn_at_very_large_n() {
        let small = WorkloadDims::paper(2000, 32);
        let large = WorkloadDims::paper(10_000, 32);
        assert!(
            flops_estimate(ModelFamily::Sagdfn, &small)
                > flops_estimate(ModelFamily::Agcrn, &small),
            "below the crossover AGCRN's N²(d+D) is smaller than NMd²"
        );
        assert!(
            flops_estimate(ModelFamily::Sagdfn, &large)
                < flops_estimate(ModelFamily::Agcrn, &large),
            "beyond N ≈ 6100 SAGDFN is cheaper"
        );
    }
}
