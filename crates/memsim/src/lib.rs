//! # sagdfn-memsim
//!
//! Analytic GPU-memory and compute cost model for every forecasting model
//! family the paper evaluates.
//!
//! The paper's Tables V–VII mark most baselines '×' (out-of-memory on a
//! 32 GB Tesla V100) at N ≈ 2000, and Table IV reports the *maximum
//! processable graph size* per baseline (AGCRN 1750, GTS 1000, D2STGNN 200
//! at batch 64). This crate reproduces those outcomes deterministically:
//! each family gets a memory formula of the shape
//!
//! ```text
//! total = weights + activations(B, N, T, D) + graph_structures(N, M, d)
//! ```
//!
//! whose *asymptotics* follow the paper's Table I and whose constants are
//! calibrated against the three anchors the paper publishes:
//!
//! * Example 1 — a `B×N×T×D` hidden-state variable costs ≈ 1.57 GB at
//!   `(64, 2000, 24, 64)`, and GTS-style `N×N×d` node-embedding workspace
//!   dominates;
//! * Example 2 — SAGDFN's embedding workspace at `M = 100` is ≈ 3.2 GB,
//!   and its per-state cost drops below 0.1 GB;
//! * Table IV — max processable N at batch 64: AGCRN 1750, GTS 1000,
//!   D2STGNN 200.
//!
//! See `DESIGN.md` §2 for why an analytic model (rather than exhausting
//! host RAM) is the right substitution for real OOM behaviour.

pub mod complexity;
pub mod model;
pub mod shards;

pub use complexity::{complexity_row, flops_estimate, ComplexityRow};
pub use model::{Gpu, ModelFamily, WorkloadDims, A100_40GB, A100_80GB, V100_16GB, V100_32GB};
pub use shards::{plan_shards, ShardPlan};
