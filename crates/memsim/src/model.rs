//! Per-family memory formulas and the OOM predicate.

/// Bytes per f32 element.
const F32: u64 = 4;
/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// A GPU with a fixed memory capacity.
#[derive(Clone, Copy, Debug)]
pub struct Gpu {
    /// Usable device memory in bytes.
    pub capacity_bytes: u64,
    /// Human-readable name for reports.
    pub name: &'static str,
}

/// The paper's evaluation device: a 32 GB Tesla V100.
pub const V100_32GB: Gpu = Gpu {
    capacity_bytes: 32 * GIB,
    name: "Tesla V100 32GB",
};

/// The smaller V100 variant — several baselines already OOM on METR-LA
/// scale workloads here.
pub const V100_16GB: Gpu = Gpu {
    capacity_bytes: 16 * GIB,
    name: "Tesla V100 16GB",
};

/// A100 40 GB — the obvious "just buy a bigger GPU" rebuttal; the
/// quadratic baselines gain only ~12 % more N from 25 % more memory.
pub const A100_40GB: Gpu = Gpu {
    capacity_bytes: 40 * GIB,
    name: "A100 40GB",
};

/// A100 80 GB.
pub const A100_80GB: Gpu = Gpu {
    capacity_bytes: 80 * GIB,
    name: "A100 80GB",
};

/// The dimensions that drive training memory.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadDims {
    /// Number of nodes / time series `N`.
    pub n: usize,
    /// Batch size `B`.
    pub batch: usize,
    /// Input window `h` plus horizon `f` (total unrolled steps `T`).
    pub t: usize,
    /// Hidden width `D`.
    pub hidden: usize,
    /// Node-embedding width `d`.
    pub embed: usize,
    /// Significant-neighbor count `M` (SAGDFN only).
    pub m: usize,
}

impl WorkloadDims {
    /// The paper's standard configuration at a given node count and batch:
    /// `T = h + f = 24`, `D = 64`, `d = 100`, `M = 100`.
    pub fn paper(n: usize, batch: usize) -> Self {
        WorkloadDims {
            n,
            batch,
            t: 24,
            hidden: 64,
            embed: 100,
            m: 100,
        }
    }

    /// Bytes of one `B×N×T×D` hidden-state variable (paper Example 1).
    pub fn state_variable_bytes(&self) -> u64 {
        F32 * 2 * (self.batch * self.n * self.t * self.hidden) as u64
        // ×2: value + gradient, matching the paper's 8-bytes-per-element
        // accounting in Example 1.
    }
}

/// Every model family the paper evaluates, including SAGDFN itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Seasonal ARIMA (CPU, no GPU memory).
    Arima,
    /// Vector autoregression (CPU).
    Var,
    /// Support vector regression (CPU).
    Svr,
    /// LSTM seq2seq, no graph.
    Lstm,
    /// DCRNN: predefined sparse adjacency + diffusion GRU.
    Dcrnn,
    /// STGCN: Chebyshev graph conv + temporal conv.
    Stgcn,
    /// Graph WaveNet: adaptive inner-product adjacency + TCN.
    GraphWaveNet,
    /// GMAN: spatial/temporal attention.
    Gman,
    /// AGCRN: adaptive inner-product adjacency + recurrent GCN.
    Agcrn,
    /// MTGNN: bidirectional embedding adjacency + mixhop/TCN.
    Mtgnn,
    /// ASTGCN: spatial-temporal attention GCN.
    Astgcn,
    /// STSGCN: localized spatial-temporal synchronous graphs.
    Stsgcn,
    /// GTS: pairwise FFN discrete graph learner.
    Gts,
    /// STEP: pretraining-enhanced pairwise graph learner.
    Step,
    /// D2STGNN: decoupled dynamic spatial-temporal GNN.
    D2stgnn,
    /// The paper's model: slim N×M adjacency.
    Sagdfn,
}

impl ModelFamily {
    /// All families, in the ordering of the paper's tables.
    pub const ALL: [ModelFamily; 16] = [
        ModelFamily::Arima,
        ModelFamily::Var,
        ModelFamily::Svr,
        ModelFamily::Lstm,
        ModelFamily::Dcrnn,
        ModelFamily::Stgcn,
        ModelFamily::GraphWaveNet,
        ModelFamily::Gman,
        ModelFamily::Agcrn,
        ModelFamily::Mtgnn,
        ModelFamily::Astgcn,
        ModelFamily::Stsgcn,
        ModelFamily::Gts,
        ModelFamily::Step,
        ModelFamily::D2stgnn,
        ModelFamily::Sagdfn,
    ];

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::Arima => "ARIMA",
            ModelFamily::Var => "VAR",
            ModelFamily::Svr => "SVR",
            ModelFamily::Lstm => "LSTM",
            ModelFamily::Dcrnn => "DCRNN",
            ModelFamily::Stgcn => "STGCN",
            ModelFamily::GraphWaveNet => "GRAPH WaveNet",
            ModelFamily::Gman => "GMAN",
            ModelFamily::Agcrn => "AGCRN",
            ModelFamily::Mtgnn => "MTGNN",
            ModelFamily::Astgcn => "ASTGCN",
            ModelFamily::Stsgcn => "STSGCN",
            ModelFamily::Gts => "GTS",
            ModelFamily::Step => "STEP",
            ModelFamily::D2stgnn => "D2STGNN(c)",
            ModelFamily::Sagdfn => "SAGDFN",
        }
    }

    /// True for the classical (non-GPU) methods that never OOM.
    pub fn is_classical(&self) -> bool {
        matches!(
            self,
            ModelFamily::Arima | ModelFamily::Var | ModelFamily::Svr
        )
    }

    /// Stored activation tensors per unrolled step (forward values kept for
    /// backward). Deeper / wider-stack models keep more.
    fn activation_tensors_per_step(&self) -> u64 {
        match self {
            ModelFamily::Arima | ModelFamily::Var | ModelFamily::Svr => 0,
            ModelFamily::Lstm => 8,
            ModelFamily::Dcrnn => 12,
            ModelFamily::Stgcn => 8,
            ModelFamily::GraphWaveNet => 10,
            ModelFamily::Gman => 10,
            ModelFamily::Agcrn => 6,
            ModelFamily::Mtgnn => 10,
            ModelFamily::Astgcn => 10,
            ModelFamily::Stsgcn => 10,
            ModelFamily::Gts => 12,
            ModelFamily::Step => 14,
            ModelFamily::D2stgnn => 14,
            // SAGDFN's diffusion intermediates are M-sized (paper Example
            // 2); only the GRU hidden states remain N-sized.
            ModelFamily::Sagdfn => 6,
        }
    }

    /// Activation memory: stored per-step states across the unrolled
    /// sequence, value + gradient.
    pub fn activation_bytes(&self, dims: &WorkloadDims) -> u64 {
        let per_state = F32 * 2 * (dims.batch * dims.n * dims.hidden) as u64;
        per_state * dims.t as u64 * self.activation_tensors_per_step()
    }

    /// Graph-structure memory: the term that separates the quadratic
    /// baselines from SAGDFN. Constants are calibrated against the paper's
    /// published anchors (see crate docs); asymptotics follow Table I.
    pub fn graph_bytes(&self, dims: &WorkloadDims) -> u64 {
        let n = dims.n as u64;
        let b = dims.batch as u64;
        let t = dims.t as u64;
        let d = dims.embed as u64;
        let m = dims.m as u64;
        match self {
            ModelFamily::Arima | ModelFamily::Var | ModelFamily::Svr | ModelFamily::Lstm => 0,
            // Sparse predefined adjacency: ~knn entries per row.
            ModelFamily::Dcrnn => F32 * n * 32,
            // Dense N×N Chebyshev supports stored per step for backward.
            ModelFamily::Stgcn => F32 * b * n * n * t * 8,
            // Adaptive N×N adjacency, shared across batch (not per step).
            ModelFamily::GraphWaveNet => F32 * (n * n * 8 + n * d * 6),
            // Per-step per-head spatial attention maps.
            ModelFamily::Gman => F32 * b * n * n * t * 8,
            // O(N² + Nd) per Table I: N×N adaptive-adjacency workspace with
            // ≈ 20.8·d floats of live copies (value/grad/Adam moments across
            // the cheb-conv stack). Calibrated: max processable N at B=64
            // is ≈ 1770 (paper Table IV: 1750).
            ModelFamily::Agcrn => F32 * n * n * 2075,
            // Bidirectional embedding adjacency; batch-shared like GWNet.
            ModelFamily::Mtgnn => F32 * (n * n * 10 + n * d * 8),
            // Spatial AND temporal attention stored per block.
            ModelFamily::Astgcn => F32 * b * n * n * t * 12,
            // Localized (3N)×(3N) synchronous graphs per window.
            ModelFamily::Stsgcn => F32 * b * (3 * n) * (3 * n) * t,
            // O(N²d) pairwise concat features (Table I row 2). Calibrated:
            // max processable N at B=64 is ≈ 1000 (paper Table IV).
            ModelFamily::Gts => F32 * n * n * d * 56,
            ModelFamily::Step => F32 * n * n * d * 60,
            // Decoupled stacks materialize N×N dynamic graphs per layer,
            // per step. Calibrated: max processable N at B=64 is ≈ 220
            // (paper Table IV: 200).
            ModelFamily::D2stgnn => F32 * n * n * d * 1500,
            // Slim N×M embedding workspace: N·M·d floats × 40 live copies
            // = 3.2 GB at (N=2000, M=100, d=100) — paper Example 2.
            ModelFamily::Sagdfn => F32 * (n * m * d * 40 + n * m * 8),
        }
    }

    /// Total training-time memory estimate.
    pub fn training_bytes(&self, dims: &WorkloadDims) -> u64 {
        self.activation_bytes(dims) + self.graph_bytes(dims)
    }

    /// Would training this family at `dims` exceed `gpu`'s capacity?
    /// Classical methods run on CPU and never OOM.
    pub fn would_oom(&self, dims: &WorkloadDims, gpu: &Gpu) -> bool {
        if self.is_classical() {
            return false;
        }
        self.training_bytes(dims) > gpu.capacity_bytes
    }

    /// Largest `N` (to a 10-node granularity) that fits on `gpu` at the
    /// given batch size under the paper's standard dims — the Table IV
    /// "# nodes in training set" limit.
    pub fn max_processable_n(&self, batch: usize, gpu: &Gpu) -> usize {
        if self.is_classical() {
            return usize::MAX;
        }
        let mut lo = 10usize;
        let mut hi = 1_000_000usize;
        if self.would_oom(&WorkloadDims::paper(lo, batch), gpu) {
            return 0;
        }
        if !self.would_oom(&WorkloadDims::paper(hi, batch), gpu) {
            return usize::MAX;
        }
        while hi - lo > 10 {
            let mid = (lo + hi) / 2;
            if self.would_oom(&WorkloadDims::paper(mid, batch), gpu) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo / 10 * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The '×' rows of Tables V–VII at paper scale (N ≈ 2000, batch 32).
    const OOM_AT_2000: [ModelFamily; 8] = [
        ModelFamily::Stgcn,
        ModelFamily::Gman,
        ModelFamily::Agcrn,
        ModelFamily::Astgcn,
        ModelFamily::Stsgcn,
        ModelFamily::Gts,
        ModelFamily::Step,
        ModelFamily::D2stgnn,
    ];

    /// The rows that still run at N ≈ 2000.
    const RUNS_AT_2000: [ModelFamily; 7] = [
        ModelFamily::Arima,
        ModelFamily::Var,
        ModelFamily::Svr,
        ModelFamily::Lstm,
        ModelFamily::Dcrnn,
        ModelFamily::GraphWaveNet,
        ModelFamily::Mtgnn,
    ];

    #[test]
    fn example1_state_variable_is_about_1_57_gb() {
        // Paper Example 1: 64 × 2000 × 24 × 64 × 8 bytes ≈ 1.57 GB.
        let dims = WorkloadDims::paper(2000, 64);
        let gb = dims.state_variable_bytes() as f64 / 1e9;
        assert!((gb - 1.57).abs() < 0.05, "state variable {gb} GB");
    }

    #[test]
    fn example2_sagdfn_embedding_about_3_2_gb() {
        let dims = WorkloadDims::paper(2000, 64);
        let gb = ModelFamily::Sagdfn.graph_bytes(&dims) as f64 / 1e9;
        assert!((gb - 3.2).abs() < 0.2, "sagdfn graph memory {gb} GB");
    }

    #[test]
    fn tables_5_to_7_oom_pattern_at_batch_32() {
        let dims = WorkloadDims::paper(2000, 32);
        for fam in OOM_AT_2000 {
            assert!(
                fam.would_oom(&dims, &V100_32GB),
                "{} should OOM at N=2000 B=32 ({} GB)",
                fam.name(),
                fam.training_bytes(&dims) / GIB
            );
        }
        for fam in RUNS_AT_2000 {
            assert!(
                !fam.would_oom(&dims, &V100_32GB),
                "{} should fit at N=2000 B=32 ({} GB)",
                fam.name(),
                fam.training_bytes(&dims) / GIB
            );
        }
        assert!(!ModelFamily::Sagdfn.would_oom(&dims, &V100_32GB));
    }

    #[test]
    fn carpark_1918_oom_pattern() {
        let dims = WorkloadDims::paper(1918, 32);
        for fam in OOM_AT_2000 {
            assert!(fam.would_oom(&dims, &V100_32GB), "{}", fam.name());
        }
        assert!(!ModelFamily::Sagdfn.would_oom(&dims, &V100_32GB));
        assert!(!ModelFamily::Dcrnn.would_oom(&dims, &V100_32GB));
    }

    #[test]
    fn everything_fits_at_metr_la_scale() {
        // Table III: all 16 models run at N = 207.
        let dims = WorkloadDims::paper(207, 64);
        for fam in ModelFamily::ALL {
            assert!(
                !fam.would_oom(&dims, &V100_32GB),
                "{} OOM at N=207?! ({} GB)",
                fam.name(),
                fam.training_bytes(&dims) / GIB
            );
        }
    }

    #[test]
    fn table4_max_processable_sizes() {
        // Table IV at batch 64: AGCRN 1750, GTS 1000, D2STGNN 200.
        let agcrn = ModelFamily::Agcrn.max_processable_n(64, &V100_32GB);
        let gts = ModelFamily::Gts.max_processable_n(64, &V100_32GB);
        let d2 = ModelFamily::D2stgnn.max_processable_n(64, &V100_32GB);
        assert!(
            (1600..=1900).contains(&agcrn),
            "AGCRN max N {agcrn}, paper says 1750"
        );
        assert!((900..=1100).contains(&gts), "GTS max N {gts}, paper says 1000");
        assert!((150..=280).contains(&d2), "D2STGNN max N {d2}, paper says 200");
    }

    #[test]
    fn sagdfn_scales_far_beyond_2000() {
        let max = ModelFamily::Sagdfn.max_processable_n(64, &V100_32GB);
        assert!(max >= 5000, "SAGDFN max N {max} — Table IV trains on 5000");
    }

    #[test]
    fn sagdfn_memory_linear_in_n() {
        // Doubling N must roughly double SAGDFN memory (O(NM)), while
        // quadrupling GTS memory (O(N²d)).
        let a = WorkloadDims::paper(1000, 32);
        let b = WorkloadDims::paper(2000, 32);
        let s_ratio = ModelFamily::Sagdfn.training_bytes(&b) as f64
            / ModelFamily::Sagdfn.training_bytes(&a) as f64;
        let g_ratio = ModelFamily::Gts.training_bytes(&b) as f64
            / ModelFamily::Gts.training_bytes(&a) as f64;
        assert!((s_ratio - 2.0).abs() < 0.2, "SAGDFN ratio {s_ratio}");
        assert!(g_ratio > 3.3, "GTS ratio {g_ratio}");
    }

    #[test]
    fn bigger_gpus_barely_move_the_quadratic_frontier() {
        // sqrt scaling: 2.5x memory buys GTS only ~sqrt(2.5) = 1.6x nodes,
        // while SAGDFN's linear memory buys ~2.5x.
        let gts_32 = ModelFamily::Gts.max_processable_n(64, &V100_32GB);
        let gts_80 = ModelFamily::Gts.max_processable_n(64, &A100_80GB);
        let sag_32 = ModelFamily::Sagdfn.max_processable_n(64, &V100_32GB);
        let sag_80 = ModelFamily::Sagdfn.max_processable_n(64, &A100_80GB);
        let gts_gain = gts_80 as f64 / gts_32 as f64;
        let sag_gain = sag_80 as f64 / sag_32 as f64;
        assert!(gts_gain < 1.8, "GTS gain {gts_gain}");
        assert!(sag_gain > 2.0, "SAGDFN gain {sag_gain}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberately checks preset constants
    fn gpu_presets_ordered() {
        assert!(V100_16GB.capacity_bytes < V100_32GB.capacity_bytes);
        assert!(V100_32GB.capacity_bytes < A100_40GB.capacity_bytes);
        assert!(A100_40GB.capacity_bytes < A100_80GB.capacity_bytes);
    }

    #[test]
    fn classical_methods_never_oom() {
        let dims = WorkloadDims::paper(1_000_000, 64);
        assert!(!ModelFamily::Arima.would_oom(&dims, &V100_32GB));
        assert_eq!(
            ModelFamily::Var.max_processable_n(64, &V100_32GB),
            usize::MAX
        );
    }
}
