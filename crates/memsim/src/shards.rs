//! Shard planning: pick a node-shard count against a memory budget.
//!
//! The node-sharded diffusion stack (DESIGN.md §14) splits the adjacency
//! and attention working set into `k` contiguous row shards, shrinking
//! the graph-proportional peak from `O(n·m·d)` to `O(n·m·d / k)` while
//! leaving the recurrent activations — which every shard's output feeds
//! into — whole. [`plan_shards`] inverts that relation: given `n`,
//! `batch` and a byte budget, it returns the smallest shard count whose
//! modeled peak fits, mirroring how [`ModelFamily`](crate::ModelFamily)
//! models the paper's Table IV–VII OOM '×' entries.

use crate::model::{ModelFamily, WorkloadDims};

/// The shard count chosen by [`plan_shards`] for one workload, plus the
/// modeled memory split backing the decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Chosen shard count (≥ 1).
    pub shards: usize,
    /// Rows per shard, rounded up to a multiple of 4 (the sharded CSR
    /// kernels require 4-aligned shard boundaries; the last shard may be
    /// shorter).
    pub shard_rows: usize,
    /// Modeled graph/attention bytes per shard (the shardable term).
    pub bytes_per_shard: u64,
    /// Modeled peak bytes at this shard count: unshardable activations
    /// plus one shard's graph/attention working set.
    pub total_bytes: u64,
    /// Whether `total_bytes` fits the budget. `false` means even the
    /// maximum shard count (one 4-row shard at a time) overflows —
    /// the activations alone are too large.
    pub fits: bool,
}

/// Picks the smallest node-shard count whose modeled training peak fits
/// `budget_bytes` for a SAGDFN workload over `n` nodes at batch size
/// `batch` (paper-shaped dims otherwise, see [`WorkloadDims::paper`]).
///
/// The model splits the SAGDFN training peak into:
///
/// * **activations** — recurrent states across the horizon, proportional
///   to `batch·n·hidden·t`; these feed the loss for every node and are
///   *not* divided by sharding;
/// * **graph working set** — slim adjacency, attention pair tables and
///   diffusion scratch, proportional to `n·m`; sharding divides this
///   by `k` (each shard's rows are built, used, and released in turn).
///
/// `peak(k) = activations + graph/k` is monotone nonincreasing in `k`,
/// so the smallest fitting count is found by binary search; when even
/// the per-4-rows maximum overflows, the plan reports that max shard
/// count with `fits = false`.
pub fn plan_shards(n: usize, batch: usize, budget_bytes: u64) -> ShardPlan {
    let dims = WorkloadDims::paper(n, batch);
    let fixed = ModelFamily::Sagdfn.activation_bytes(&dims);
    let graph = ModelFamily::Sagdfn.graph_bytes(&dims);
    // Max useful shard count: one minimal 4-row shard in flight.
    let k_max = n.div_ceil(4).max(1) as u64;
    let peak = |k: u64| fixed + graph.div_ceil(k);
    let k = if peak(k_max) > budget_bytes {
        k_max
    } else {
        let (mut lo, mut hi) = (1u64, k_max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if peak(mid) <= budget_bytes {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    };
    let shards = k as usize;
    let shard_rows = n.div_ceil(shards).div_ceil(4).max(1) * 4;
    ShardPlan {
        shards,
        shard_rows,
        bytes_per_shard: graph.div_ceil(k),
        total_bytes: peak(k),
        fits: peak(k) <= budget_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::V100_32GB;

    #[test]
    fn small_workloads_stay_unsharded() {
        // METR-LA-sized graphs fit a V100 outright: no sharding.
        let plan = plan_shards(207, 64, V100_32GB.capacity_bytes);
        assert_eq!(plan.shards, 1);
        assert!(plan.fits);
    }

    #[test]
    fn shard_rows_are_4_aligned_and_cover_n() {
        for n in [207, 2000, 8000, 20000] {
            for budget in [1u64 << 28, 1 << 30, 1 << 33] {
                let plan = plan_shards(n, 32, budget);
                assert_eq!(plan.shard_rows % 4, 0, "n={n}");
                assert!(plan.shard_rows * plan.shards >= n, "n={n} budget={budget}");
            }
        }
    }

    #[test]
    fn tighter_budgets_never_pick_fewer_shards() {
        let n = 20000;
        let mut last = usize::MAX;
        for budget in [1u64 << 36, 1 << 34, 1 << 32, 1 << 30] {
            let plan = plan_shards(n, 64, budget);
            assert!(plan.shards <= last, "budget={budget}");
            last = plan.shards;
        }
    }

    #[test]
    fn chosen_count_is_minimal() {
        let n = 20000;
        let budget = 1u64 << 31; // 2 GiB: forces sharding at paper dims.
        let plan = plan_shards(n, 1, budget);
        assert!(plan.shards > 1, "2 GiB must not fit the whole graph");
        assert!(plan.fits);
        // One fewer shard must overflow (minimality).
        let dims = WorkloadDims::paper(n, 1);
        let fixed = ModelFamily::Sagdfn.activation_bytes(&dims);
        let graph = ModelFamily::Sagdfn.graph_bytes(&dims);
        assert!(fixed + graph.div_ceil(plan.shards as u64 - 1) > budget);
    }

    #[test]
    fn impossible_budgets_report_unfit() {
        // Activations alone exceed a 1 MiB budget: no k can fit.
        let plan = plan_shards(20000, 64, 1 << 20);
        assert!(!plan.fits);
        assert!(plan.shards >= 1);
    }
}
