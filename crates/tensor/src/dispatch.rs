//! Runtime SIMD dispatch: one cached CPU-feature probe, one mode flag.
//!
//! Every vectorized kernel in [`simd`](crate::simd) asks [`simd_tier`]
//! which instruction-set variant to run. The answer combines two inputs:
//!
//! * a **feature probe** run once per process (`is_x86_feature_detected!`
//!   / `is_aarch64_feature_detected!`, cached in a `OnceLock`), and
//! * a **mode flag** read once from `SAGDFN_SIMD`
//!   (`auto`/`avx512`/`avx2`/`neon`/`scalar`, default `auto`) and
//!   adjustable in-process via [`set_simd_mode`] so tests and benches can
//!   A/B the variants without re-exec'ing.
//!
//! A requested tier the hardware lacks clamps down to the best supported
//! one (ultimately the scalar reference), never up — forcing `scalar` is
//! always honored, which is what the determinism matrix relies on. The
//! clamp makes `SAGDFN_SIMD=avx2` safe on any machine and keeps the
//! variants interchangeable: every tier is bit-identical to scalar (see
//! DESIGN.md §12), so dispatch is purely a performance decision.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Requested dispatch policy (`SAGDFN_SIMD`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Probe the CPU and pick the widest supported tier.
    Auto,
    /// Request the AVX-512 kernels (x86_64 with avx512f).
    Avx512,
    /// Request the AVX2 kernels (x86_64).
    Avx2,
    /// Request the NEON kernels (aarch64).
    Neon,
    /// Always run the scalar reference loops.
    Scalar,
}

/// The kernel variant that will actually run, after clamping the mode to
/// what the hardware supports. Discriminants index the per-variant obs
/// counter ([`sagdfn_obs::tally_simd`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdTier {
    /// Portable scalar reference loops.
    Scalar = 0,
    /// aarch64 NEON (128-bit).
    Neon = 1,
    /// x86_64 AVX2 (256-bit).
    Avx2 = 2,
    /// x86_64 AVX-512 (512-bit).
    Avx512 = 3,
}

impl SimdTier {
    /// Stable lowercase name, matching the `SAGDFN_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Neon => "neon",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Index into the obs per-variant counter table.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What the one-time probe found on this CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuFeatures {
    /// x86_64 AVX2 available.
    pub avx2: bool,
    /// x86_64 AVX-512 Foundation available.
    pub avx512f: bool,
    /// aarch64 Advanced SIMD available.
    pub neon: bool,
}

/// The cached feature probe (run at most once per process).
pub fn cpu_features() -> CpuFeatures {
    static PROBE: OnceLock<CpuFeatures> = OnceLock::new();
    *PROBE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                neon: false,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            CpuFeatures {
                avx2: false,
                avx512f: false,
                neon: std::arch::is_aarch64_feature_detected!("neon"),
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            CpuFeatures {
                avx2: false,
                avx512f: false,
                neon: false,
            }
        }
    })
}

fn mode_flag() -> &'static AtomicU8 {
    static FLAG: OnceLock<AtomicU8> = OnceLock::new();
    FLAG.get_or_init(|| {
        let mode = match std::env::var("SAGDFN_SIMD").as_deref() {
            Ok("scalar") | Ok("off") | Ok("0") => SimdMode::Scalar,
            Ok("avx512") => SimdMode::Avx512,
            Ok("avx2") => SimdMode::Avx2,
            Ok("neon") => SimdMode::Neon,
            _ => SimdMode::Auto,
        };
        AtomicU8::new(mode as u8)
    })
}

fn mode_from_u8(v: u8) -> SimdMode {
    match v {
        1 => SimdMode::Avx512,
        2 => SimdMode::Avx2,
        3 => SimdMode::Neon,
        4 => SimdMode::Scalar,
        _ => SimdMode::Auto,
    }
}

/// The current dispatch mode (`SAGDFN_SIMD`, default `auto`).
pub fn simd_mode() -> SimdMode {
    mode_from_u8(mode_flag().load(Ordering::Relaxed))
}

/// Sets the dispatch mode programmatically (benches and tests run
/// in-process A/B comparisons), returning the previous mode.
pub fn set_simd_mode(mode: SimdMode) -> SimdMode {
    mode_from_u8(mode_flag().swap(mode as u8, Ordering::SeqCst))
}

/// The kernel variant the current mode resolves to on this CPU: the
/// widest *supported* tier no wider than the requested one.
pub fn simd_tier() -> SimdTier {
    let f = cpu_features();
    let supported = |t: SimdTier| match t {
        SimdTier::Scalar => true,
        SimdTier::Neon => f.neon,
        SimdTier::Avx2 => f.avx2,
        SimdTier::Avx512 => f.avx512f,
    };
    let cap = match simd_mode() {
        SimdMode::Auto => SimdTier::Avx512,
        SimdMode::Avx512 => SimdTier::Avx512,
        SimdMode::Avx2 => SimdTier::Avx2,
        SimdMode::Neon => SimdTier::Neon,
        SimdMode::Scalar => SimdTier::Scalar,
    };
    [SimdTier::Avx512, SimdTier::Avx2, SimdTier::Neon]
        .into_iter()
        .find(|&t| t <= cap && supported(t))
        .unwrap_or(SimdTier::Scalar)
}

/// `true` when a vectorized (non-scalar) tier is active.
pub fn simd_active() -> bool {
    simd_tier() != SimdTier::Scalar
}

/// One-line description of the probe and the resolved dispatch, for the
/// `sagdfn profile` header (perf reports must say which kernels ran).
pub fn description() -> String {
    let f = cpu_features();
    format!(
        "simd dispatch: {} (mode={:?}, arch={}, detected: avx2={} avx512f={} neon={})",
        simd_tier().name(),
        simd_mode(),
        std::env::consts::ARCH,
        f.avx2,
        f.avx512f,
        f.neon,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_scalar_is_always_honored() {
        let prev = set_simd_mode(SimdMode::Scalar);
        assert_eq!(simd_tier(), SimdTier::Scalar);
        assert!(!simd_active());
        set_simd_mode(prev);
    }

    #[test]
    fn mode_swap_round_trips() {
        let prev = set_simd_mode(SimdMode::Auto);
        assert_eq!(set_simd_mode(SimdMode::Avx2), SimdMode::Auto);
        assert_eq!(set_simd_mode(prev), SimdMode::Avx2);
    }

    #[test]
    fn requested_tier_never_exceeds_probe() {
        let f = cpu_features();
        let prev = set_simd_mode(SimdMode::Avx512);
        if !f.avx512f {
            assert_ne!(simd_tier(), SimdTier::Avx512);
        }
        set_simd_mode(SimdMode::Neon);
        if !f.neon {
            assert_eq!(simd_tier(), SimdTier::Scalar);
        }
        set_simd_mode(prev);
    }

    #[test]
    fn description_names_the_tier() {
        assert!(description().contains(simd_tier().name()));
    }
}
