//! Tensor shapes and broadcasting rules.
//!
//! A [`Shape`] is an ordered list of dimension sizes. Rank 0 (a scalar) is
//! represented by an empty dimension list and has one element. Broadcasting
//! follows the NumPy/PyTorch convention: shapes are right-aligned and a
//! dimension of size 1 stretches to match its counterpart.

use std::fmt;

/// Maximum rank we ever need: `(batch, time, node, channel)` plus one spare.
pub const MAX_RANK: usize = 5;

/// An ordered list of dimension sizes, stored inline to avoid a heap
/// allocation per tensor.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Panics
    /// Panics if `dims.len() > MAX_RANK` or any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        for (i, &d) in dims.iter().enumerate() {
            assert!(d > 0, "dimension {i} is zero in shape {dims:?}");
        }
        let mut arr = [1usize; MAX_RANK];
        arr[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: arr,
            rank: dims.len(),
        }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape {
            dims: [1; MAX_RANK],
            rank: 0,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.rank, "dim index {i} out of range for {self}");
        self.dims[i]
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims[..self.rank].iter().product()
    }

    /// Row-major strides (in elements) of a contiguous tensor of this shape.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [0usize; MAX_RANK];
        let mut acc = 1usize;
        for i in (0..self.rank).rev() {
            s[i] = acc;
            acc *= self.dims[i];
        }
        s
    }

    /// Returns the broadcast result of `self` and `other` under NumPy
    /// right-aligned broadcasting, or `None` if incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank.max(other.rank);
        let mut out = [1usize; MAX_RANK];
        for i in 0..rank {
            // Right-aligned: compare trailing dimensions.
            let a = if i < self.rank {
                self.dims[self.rank - 1 - i]
            } else {
                1
            };
            let b = if i < other.rank {
                other.dims[other.rank - 1 - i]
            } else {
                1
            };
            let d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
            out[rank - 1 - i] = d;
        }
        Some(Shape {
            dims: {
                let mut arr = [1usize; MAX_RANK];
                arr[..rank].copy_from_slice(&out[..rank]);
                arr
            },
            rank,
        })
    }

    /// True if a tensor of this shape can broadcast to `target` without
    /// shrinking any dimension.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Some(b) => &b == target,
            None => false,
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.dims(), &[] as &[usize]);
    }

    #[test]
    fn numel_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::new(&[7]).numel(), 7);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(&s.strides()[..3], &[12, 4, 1]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&a), Some(a.clone()));
    }

    #[test]
    fn broadcast_stretches_ones() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[3, 1]);
        assert_eq!(a.broadcast(&b), Some(Shape::new(&[2, 3, 4])));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(&[5, 6]);
        assert_eq!(a.broadcast(&Shape::scalar()), Some(a.clone()));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[4, 3]);
        assert_eq!(a.broadcast(&b), None);
    }

    #[test]
    fn broadcasts_to_target() {
        assert!(Shape::new(&[1, 4]).broadcasts_to(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[3, 4]).broadcasts_to(&Shape::new(&[1, 4])));
    }

    #[test]
    #[should_panic(expected = "dimension 1 is zero")]
    fn zero_dim_panics() {
        Shape::new(&[2, 0]);
    }
}
