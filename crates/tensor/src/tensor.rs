//! The dense tensor type.

use crate::alloc;
use crate::rng::Rng64;
use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// Cloning copies the buffer; the model layers treat tensors as values.
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = alloc::acquire(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor::from_vec(data, self.shape.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        alloc::record_free(self.data.capacity() * std::mem::size_of::<f32>());
        alloc::release(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Wraps an existing buffer. `data.len()` must equal `shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        alloc::record_alloc(data.capacity() * std::mem::size_of::<f32>());
        Tensor { data, shape }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let mut data = alloc::acquire(shape.numel());
        data.fill(value);
        Tensor::from_vec(data, shape)
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::full(Shape::scalar(), value)
    }

    /// The `n`-dimensional identity matrix (rank 2).
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Uniform random values in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let shape = shape.into();
        let mut data = alloc::acquire(shape.numel());
        for v in data.iter_mut() {
            *v = lo + (hi - lo) * rng.next_f32();
        }
        Tensor::from_vec(data, shape)
    }

    /// Standard-normal random values scaled by `std` around `mean`.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let shape = shape.into();
        let mut data = alloc::acquire(shape.numel());
        for v in data.iter_mut() {
            *v = mean + std * rng.next_gaussian();
        }
        Tensor::from_vec(data, shape)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        let bytes = self.data.capacity() * std::mem::size_of::<f32>();
        alloc::record_free(bytes);
        alloc::unrecord_request(bytes);
        let data = std::mem::take(&mut self.data);
        std::mem::forget(self);
        data
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() called on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.rank(),
            "index rank {} does not match tensor rank {}",
            idx.len(),
            self.rank()
        );
        let strides = self.shape.strides();
        let mut flat = 0;
        for (i, &x) in idx.iter().enumerate() {
            assert!(
                x < self.shape.dim(i),
                "index {x} out of bounds for dimension {i} of {}",
                self.shape
            );
            flat += x * strides[i];
        }
        flat
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        let mut data = alloc::acquire(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor::from_vec(data, shape)
    }

    /// Like [`reshape`](Self::reshape) but consumes `self`, avoiding a copy.
    pub fn into_reshape(self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(self.numel(), shape.numel(), "reshape element count mismatch");
        Tensor::from_vec(self.into_vec(), shape)
    }

    /// True when all elements are finite (no NaN/±inf). Useful as a training
    /// invariant check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, ... {} more]",
                &self.data[..8],
                self.numel() - 8
            )
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_length_panics() {
        Tensor::from_vec(vec![1.0, 2.0, 3.0], [2, 2]);
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 1]), 1.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.as_slice()[12 + 2 * 4 + 3], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.at(&[2, 1]), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_numel_panics() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn rand_uniform_in_range() {
        let mut rng = Rng64::new(42);
        let t = Tensor::rand_uniform([100], -1.0, 1.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn rand_normal_roughly_centered() {
        let mut rng = Rng64::new(7);
        let t = Tensor::rand_normal([10_000], 0.0, 1.0, &mut rng);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "sample mean {mean} too far from 0");
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros([3]);
        assert!(t.all_finite());
        t.set(&[1], f32::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn into_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(t.into_vec(), vec![1.0, 2.0]);
    }
}
