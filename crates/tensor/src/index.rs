//! Indexing, gathering, concatenation, stacking and slicing.
//!
//! The SAGDFN model leans on two of these heavily: `index_select` along the
//! node axis implements the E_I / X_I gathers of the slim adjacency, and
//! `scatter_add` is its adjoint in the backward pass.

use crate::alloc;
use crate::tensor::Tensor;

impl Tensor {
    /// Gathers slices along `axis` at the given `indices` (PyTorch
    /// `index_select`). The output's `axis` dimension is `indices.len()`.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Tensor {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for {}", self.shape());
        let dims = self.dims();
        let axis_len = dims[axis];
        for &i in indices {
            assert!(
                i < axis_len,
                "index {i} out of bounds for axis {axis} of {}",
                self.shape()
            );
        }
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        // Recycled buffer: the gather writes every output slice.
        let mut out = alloc::acquire(outer * indices.len() * inner);
        let src = self.as_slice();
        let mut at = 0;
        for o in 0..outer {
            for &i in indices {
                let base = (o * axis_len + i) * inner;
                out[at..at + inner].copy_from_slice(&src[base..base + inner]);
                at += inner;
            }
        }
        let mut out_dims = dims.to_vec();
        out_dims[axis] = indices.len();
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// Adjoint of [`index_select`](Self::index_select): accumulates the
    /// slices of `src` back into `self` at `indices` along `axis`. Repeated
    /// indices accumulate.
    pub fn scatter_add(&mut self, axis: usize, indices: &[usize], src: &Tensor) {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for {}", self.shape());
        assert_eq!(src.rank(), rank, "scatter_add rank mismatch");
        assert_eq!(
            src.dim(axis),
            indices.len(),
            "src axis dim {} must equal indices len {}",
            src.dim(axis),
            indices.len()
        );
        let dims = self.dims().to_vec();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let s = src.as_slice();
        let d = self.as_mut_slice();
        for o in 0..outer {
            for (pos, &i) in indices.iter().enumerate() {
                assert!(i < axis_len, "scatter index {i} out of bounds");
                let src_base = (o * indices.len() + pos) * inner;
                let dst_base = (o * axis_len + i) * inner;
                for x in 0..inner {
                    d[dst_base + x] += s[src_base + x];
                }
            }
        }
    }

    /// Concatenates tensors along `axis`. All other dimensions must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].rank();
        assert!(axis < rank, "axis {axis} out of range");
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(
                        p.dim(d),
                        parts[0].dim(d),
                        "concat non-axis dim {d} mismatch: {} vs {}",
                        p.shape(),
                        parts[0].shape()
                    );
                }
            }
        }
        let dims = parts[0].dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let total_axis: usize = parts.iter().map(|p| p.dim(axis)).sum();
        // Recycled buffer: the segment copies cover every output element.
        let mut out = alloc::acquire(outer * total_axis * inner);
        let mut at = 0;
        for o in 0..outer {
            for p in parts {
                let a = p.dim(axis);
                let src = &p.as_slice()[o * a * inner..(o + 1) * a * inner];
                out[at..at + src.len()].copy_from_slice(src);
                at += src.len();
            }
        }
        let mut out_dims = dims.to_vec();
        out_dims[axis] = total_axis;
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// Splits `self` along `axis` into pieces of the given sizes
    /// (inverse of [`concat`](Self::concat)).
    pub fn split(&self, axis: usize, sizes: &[usize]) -> Vec<Tensor> {
        let rank = self.rank();
        assert!(axis < rank);
        assert_eq!(
            sizes.iter().sum::<usize>(),
            self.dim(axis),
            "split sizes {:?} do not sum to axis dim {}",
            sizes,
            self.dim(axis)
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for &s in sizes {
            out.push(self.slice_axis(axis, start, start + s));
            start += s;
        }
        out
    }

    /// Copies the half-open range `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Tensor {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for {}", self.shape());
        assert!(
            start < end && end <= self.dim(axis),
            "invalid slice [{start}, {end}) on axis {axis} of {}",
            self.shape()
        );
        let dims = self.dims();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let len = end - start;
        // Recycled buffer: the range copies cover every output element.
        let mut out = alloc::acquire(outer * len * inner);
        let src = self.as_slice();
        for o in 0..outer {
            let base = (o * axis_len + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&src[base..base + len * inner]);
        }
        let mut out_dims = dims.to_vec();
        out_dims[axis] = len;
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// Stacks equally-shaped tensors along a new leading `axis`.
    pub fn stack(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let rank = parts[0].rank();
        assert!(axis <= rank, "stack axis {axis} out of range");
        for p in parts {
            assert_eq!(
                p.shape(),
                parts[0].shape(),
                "stack requires identical shapes"
            );
        }
        // Stack = unsqueeze each then concat.
        let mut new_dims = parts[0].dims().to_vec();
        new_dims.insert(axis, 1);
        let unsqueezed: Vec<Tensor> = parts
            .iter()
            .map(|p| p.reshape(new_dims.as_slice()))
            .collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, axis)
    }

    /// Repeats the whole tensor `times` along a new leading dimension,
    /// i.e. `(d0, ..) -> (times, d0, ..)`.
    pub fn repeat_leading(&self, times: usize) -> Tensor {
        assert!(times > 0, "repeat_leading(0)");
        let numel = self.numel();
        // Recycled buffer: every repetition is copied in.
        let mut out = alloc::acquire(numel * times);
        for r in 0..times {
            out[r * numel..(r + 1) * numel].copy_from_slice(self.as_slice());
        }
        let mut dims = vec![times];
        dims.extend_from_slice(self.dims());
        Tensor::from_vec(out, dims.as_slice())
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires rank 2");
        self.slice_axis(0, i, i + 1).into_reshape([self.dim(1)])
    }

    /// General axis permutation, materialized: output axis `i` is input
    /// axis `perm[i]` (NumPy `transpose` semantics). `perm` must be a
    /// permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.rank();
        assert_eq!(perm.len(), rank, "permute needs one entry per axis");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let in_dims = self.dims();
        let in_strides = self.shape().strides();
        let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
        let src = self.as_slice();
        // Recycled buffer: the odometer walk writes every position in order.
        let mut out = alloc::acquire(self.numel());
        // Odometer over the output index space, reading via permuted strides.
        let mut idx = vec![0usize; rank];
        let read_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let mut offset = 0usize;
        let mut w = 0usize;
        'walk: loop {
            out[w] = src[offset];
            w += 1;
            let mut d = rank;
            loop {
                if d == 0 {
                    break 'walk; // walked off the end of the output
                }
                d -= 1;
                idx[d] += 1;
                offset += read_strides[d];
                if idx[d] < out_dims[d] {
                    break;
                }
                offset -= read_strides[d] * idx[d];
                idx[d] = 0;
            }
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }
}

/// Inverse of a permutation: `inverse[perm[i]] = i`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn index_select_rows() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[3, 2]);
        let g = a.index_select(0, &[2, 0]);
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn index_select_with_repeats() {
        let a = t(&[1., 2., 3.], &[3]);
        let g = a.index_select(0, &[1, 1, 1]);
        assert_eq!(g.as_slice(), &[2., 2., 2.]);
    }

    #[test]
    fn index_select_middle_axis() {
        // (2,3,2): select along axis 1.
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 2]);
        let g = a.index_select(1, &[2, 0]);
        assert_eq!(g.dims(), &[2, 2, 2]);
        assert_eq!(g.as_slice(), &[4., 5., 0., 1., 10., 11., 6., 7.]);
    }

    #[test]
    fn scatter_add_is_adjoint_of_select() {
        let mut acc = Tensor::zeros([4, 2]);
        let src = t(&[1., 1., 2., 2.], &[2, 2]);
        acc.scatter_add(0, &[3, 1], &src);
        assert_eq!(
            acc.as_slice(),
            &[0., 0., 2., 2., 0., 0., 1., 1.]
        );
    }

    #[test]
    fn scatter_add_accumulates_repeats() {
        let mut acc = Tensor::zeros([2]);
        let src = t(&[5., 7.], &[2]);
        acc.scatter_add(0, &[0, 0], &src);
        assert_eq!(acc.as_slice(), &[12., 0.]);
    }

    #[test]
    fn concat_axis0() {
        let a = t(&[1., 2.], &[1, 2]);
        let b = t(&[3., 4., 5., 6.], &[2, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn concat_axis1() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = t(&[9., 10.], &[2, 1]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[1., 2., 9., 3., 4., 10.]);
    }

    #[test]
    fn split_inverts_concat() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = t(&[9., 10.], &[2, 1]);
        let c = Tensor::concat(&[&a, &b], 1);
        let parts = c.split(1, &[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn slice_axis_copies_range() {
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[3, 4]);
        let s = a.slice_axis(1, 1, 3);
        assert_eq!(s.dims(), &[3, 2]);
        assert_eq!(s.as_slice(), &[1., 2., 5., 6., 9., 10.]);
    }

    #[test]
    fn stack_new_axis() {
        let a = t(&[1., 2.], &[2]);
        let b = t(&[3., 4.], &[2]);
        let s = Tensor::stack(&[&a, &b], 0);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1., 2., 3., 4.]);
        let s1 = Tensor::stack(&[&a, &b], 1);
        assert_eq!(s1.dims(), &[2, 2]);
        assert_eq!(s1.as_slice(), &[1., 3., 2., 4.]);
    }

    #[test]
    fn repeat_leading_tiles() {
        let a = t(&[1., 2.], &[2]);
        let r = a.repeat_leading(3);
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.as_slice(), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn row_extraction() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.row(1).as_slice(), &[3., 4.]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_select_oob_panics() {
        t(&[1., 2.], &[2]).index_select(0, &[2]);
    }

    #[test]
    fn permute_matches_transpose_on_rank2() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(a.permute(&[1, 0]), a.t());
        assert_eq!(a.permute(&[0, 1]), a);
    }

    #[test]
    fn permute_rank3_axes_rotation() {
        // (2,3,4) -> (4,2,3): out[i,j,k] = in[j,k,i].
        let a = t(&(0..24).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        for i in 0..4 {
            for j in 0..2 {
                for k in 0..3 {
                    assert_eq!(p.at(&[i, j, k]), a.at(&[j, k, i]));
                }
            }
        }
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        let a = t(&(0..24).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let perm = [2usize, 0, 1];
        let inv = inverse_permutation(&perm);
        assert_eq!(a.permute(&perm).permute(&inv), a);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_duplicates() {
        t(&[1., 2., 3., 4.], &[2, 2]).permute(&[0, 0]);
    }
}
