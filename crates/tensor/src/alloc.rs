//! Allocation bookkeeping for tensors.
//!
//! `sagdfn-memsim` predicts GPU memory use analytically; this module lets
//! tests cross-check those predictions against the bytes a real (CPU) run
//! actually touches. Counters are global atomics — cheap enough to leave on
//! permanently — and track both currently-live and peak bytes attributed to
//! tensor buffers.

use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Records `bytes` of tensor buffer coming alive.
pub(crate) fn record_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Records `bytes` of tensor buffer being dropped.
pub(crate) fn record_free(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes of tensor buffers currently alive.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live byte count, so a subsequent
/// [`peak_bytes`] reflects only allocations made after this call.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn live_and_peak_track_tensor_buffers() {
        // Other tests run concurrently, so assert deltas with slack rather
        // than absolute values: allocate, check growth, drop, check release.
        let before = super::live_bytes();
        let t = Tensor::zeros([256, 256]);
        let after = super::live_bytes();
        assert!(
            after >= before + 256 * 256 * 4,
            "live bytes should grow by at least the buffer size"
        );
        drop(t);
        // Dropping must return those bytes.
        assert!(super::live_bytes() <= after - 256 * 256 * 4 + 1024);
    }

    #[test]
    fn peak_never_below_live() {
        let _t = Tensor::zeros([64, 64]);
        assert!(super::peak_bytes() >= super::live_bytes());
    }
}
