//! Allocation bookkeeping and the recycling buffer pool for tensors.
//!
//! `sagdfn-memsim` predicts GPU memory use analytically; this module lets
//! tests cross-check those predictions against the bytes a real (CPU) run
//! actually touches. Counters are global atomics — cheap enough to leave on
//! permanently — and track both currently-live and peak bytes attributed to
//! tensor buffers.
//!
//! On top of the counters sits a size-bucketed free list: buffers from
//! dropped tensors are retained (exact capacity as the bucket key) and
//! handed back out by [`acquire`] instead of hitting the system allocator.
//! Because training repeats the same shapes every step, the steady-state hit
//! rate is essentially 100% and per-step heap churn collapses to zero.
//!
//! Accounting semantics are unchanged by recycling: a buffer counts as live
//! exactly while it is owned by a `Tensor`. Buffers parked in the free list
//! are *not* live, so `live_bytes`/`peak_bytes` report identical values with
//! the pool on or off (see `tests/memory_scaling.rs`).
//!
//! Churn is measured separately: [`requested_bytes`] accumulates every byte
//! a tensor buffer was asked for, [`pool_hit_bytes`] the portion served from
//! the free list, and [`churn_bytes`] the difference — bytes that actually
//! reached the heap allocator through [`acquire`]. `bench_train_step` reads
//! deltas of this counter to report bytes-allocated-per-step.
//!
//! Recycling defaults to on and can be disabled with `SAGDFN_RECYCLE=0` or
//! programmatically via [`set_recycling`] (used by benches for in-process
//! A/B comparisons).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static REQUESTED: AtomicUsize = AtomicUsize::new(0);
static POOL_HIT: AtomicUsize = AtomicUsize::new(0);

/// Stop retaining freed buffers once the pool holds this many bytes. The cap
/// only bounds *idle* buffers; a training step's working set cycles through
/// the pool without ever counting against live bytes.
const MAX_RETAINED_BYTES: usize = 4 << 30;

struct FreeList {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    retained_bytes: usize,
}

fn free_list() -> &'static Mutex<FreeList> {
    static FREE: OnceLock<Mutex<FreeList>> = OnceLock::new();
    FREE.get_or_init(|| {
        Mutex::new(FreeList {
            buckets: HashMap::new(),
            retained_bytes: 0,
        })
    })
}

fn recycling_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("SAGDFN_RECYCLE").map(|v| v != "0").unwrap_or(true);
        AtomicBool::new(on)
    })
}

/// Whether freed buffers are currently being recycled.
pub fn recycling_enabled() -> bool {
    recycling_flag().load(Ordering::Relaxed)
}

/// Enables or disables buffer recycling, returning the previous setting.
/// Disabling drains the free list so retained buffers go back to the heap.
pub fn set_recycling(on: bool) -> bool {
    let prev = recycling_flag().swap(on, Ordering::SeqCst);
    if !on {
        trim_pool();
    }
    prev
}

/// Drops every buffer parked in the free list.
pub fn trim_pool() {
    let mut fl = free_list().lock().unwrap();
    fl.buckets.clear();
    fl.retained_bytes = 0;
}

/// Bytes currently parked in the free list (idle, not live).
pub fn pool_retained_bytes() -> usize {
    free_list().lock().unwrap().retained_bytes
}

fn try_pop(len: usize) -> Option<Vec<f32>> {
    if len == 0 || !recycling_enabled() {
        return None;
    }
    let mut fl = free_list().lock().unwrap();
    let buf = fl.buckets.get_mut(&len)?.pop()?;
    fl.retained_bytes -= len * std::mem::size_of::<f32>();
    Some(buf)
}

/// Hands out a buffer of exactly `len` elements, recycled when possible.
///
/// The contents are *unspecified*: zeros when freshly allocated, stale data
/// when served from the free list. Callers must overwrite every element (or
/// use [`acquire_zeroed`]); kernels in this crate are audited for that.
pub fn acquire(len: usize) -> Vec<f32> {
    sagdfn_obs::tally_alloc_acquire((len * std::mem::size_of::<f32>()) as u64);
    match try_pop(len) {
        Some(buf) => {
            POOL_HIT.fetch_add(len * std::mem::size_of::<f32>(), Ordering::Relaxed);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Like [`acquire`] but guarantees all-zero contents, for kernels that
/// accumulate into their output.
pub fn acquire_zeroed(len: usize) -> Vec<f32> {
    sagdfn_obs::tally_alloc_acquire((len * std::mem::size_of::<f32>()) as u64);
    match try_pop(len) {
        Some(mut buf) => {
            POOL_HIT.fetch_add(len * std::mem::size_of::<f32>(), Ordering::Relaxed);
            buf.fill(0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Returns a dropped tensor's buffer to the free list. Buffers whose
/// capacity differs from their length (externally built with slack) are not
/// poolable — bucket keys must equal both — and fall through to the heap.
pub(crate) fn release(buf: Vec<f32>) {
    let len = buf.len();
    sagdfn_obs::tally_alloc_release((len * std::mem::size_of::<f32>()) as u64);
    if len == 0 || buf.capacity() != len || !recycling_enabled() {
        return;
    }
    let bytes = len * std::mem::size_of::<f32>();
    let mut fl = free_list().lock().unwrap();
    if fl.retained_bytes + bytes > MAX_RETAINED_BYTES {
        return;
    }
    fl.retained_bytes += bytes;
    fl.buckets.entry(len).or_default().push(buf);
}

/// Records `bytes` of tensor buffer coming alive.
pub(crate) fn record_alloc(bytes: usize) {
    REQUESTED.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Records `bytes` of tensor buffer being dropped.
pub(crate) fn record_free(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Undoes the `requested` accounting for a buffer leaving tensor ownership
/// with its storage intact (`Tensor::into_vec`): re-wrapping the same buffer
/// via `from_vec` must not count as fresh churn.
pub(crate) fn unrecord_request(bytes: usize) {
    REQUESTED.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes of tensor buffers currently alive.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes of tensor buffer storage requested since process start
/// (fresh or recycled).
pub fn requested_bytes() -> usize {
    REQUESTED.load(Ordering::Relaxed)
}

/// Cumulative bytes served from the free list instead of the heap.
pub fn pool_hit_bytes() -> usize {
    POOL_HIT.load(Ordering::Relaxed)
}

/// Cumulative bytes of tensor buffers that reached the heap allocator: the
/// churn counter. Steady-state training should move this barely at all —
/// benches take deltas across steps to report bytes-allocated-per-step.
pub fn churn_bytes() -> usize {
    requested_bytes().saturating_sub(pool_hit_bytes())
}

/// Resets the peak to the current live byte count, so a subsequent
/// [`peak_bytes`] reflects only allocations made after this call.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn live_and_peak_track_tensor_buffers() {
        // Other tests run concurrently, so assert deltas with slack rather
        // than absolute values: allocate, check growth, drop, check release.
        let before = super::live_bytes();
        let t = Tensor::zeros([256, 256]);
        let after = super::live_bytes();
        assert!(
            after >= before + 256 * 256 * 4,
            "live bytes should grow by at least the buffer size"
        );
        drop(t);
        // Dropping must return those bytes.
        assert!(super::live_bytes() <= after - 256 * 256 * 4 + 1024);
    }

    #[test]
    fn peak_never_below_live() {
        let _t = Tensor::zeros([64, 64]);
        assert!(super::peak_bytes() >= super::live_bytes());
    }

    #[test]
    fn acquire_recycles_freed_buffers() {
        if !super::recycling_enabled() {
            return; // respect SAGDFN_RECYCLE=0 runs
        }
        // Use a size no other test allocates so concurrent tests cannot
        // steal the freed buffer out of the bucket between drop and acquire.
        const LEN: usize = 12_347;
        drop(Tensor::zeros([LEN]));
        let hits_before = super::pool_hit_bytes();
        let buf = super::acquire(LEN);
        assert_eq!(buf.len(), LEN);
        assert_eq!(buf.capacity(), LEN);
        assert!(
            super::pool_hit_bytes() >= hits_before + LEN * 4,
            "acquire should have been served from the free list"
        );
    }

    #[test]
    fn acquire_zeroed_clears_stale_contents() {
        const LEN: usize = 9_973;
        drop(Tensor::full([LEN], 3.5));
        let buf = super::acquire_zeroed(LEN);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn churn_counts_fresh_bytes_only() {
        let req = super::requested_bytes();
        let hit = super::pool_hit_bytes();
        assert!(super::churn_bytes() <= req);
        assert_eq!(super::churn_bytes(), req.saturating_sub(hit));
    }
}
