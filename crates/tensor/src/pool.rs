//! Process-wide persistent worker pool for tensor kernels.
//!
//! Every parallel kernel in the workspace (matmul, batched matmul,
//! broadcast elementwise, axis reductions, transpose, per-row entmax)
//! routes through this one pool instead of spawning scoped threads per
//! call. The pool is created lazily on first use and lives for the rest
//! of the process; workers block on a condvar-backed job queue between
//! jobs, so an idle pool costs nothing but the parked threads. The queue
//! is built on `std::sync` only — the workspace is fully self-contained
//! and compiles with no external crates.
//!
//! ## Determinism
//!
//! The primitives here guarantee a **deterministic chunk-to-output
//! mapping**: task index `i` always covers the same output range, no
//! matter which worker executes it or in what order tasks are grabbed.
//! Kernels built on top therefore produce **bit-identical** results to
//! their serial paths — parallelism only changes *who* computes an
//! output element, never the sequence of float operations that produce
//! it. (Kernels that need an accumulation order, e.g. global sums, fix
//! their chunk boundaries independently of the thread count for the same
//! reason.)
//!
//! ## Sizing
//!
//! The pool size is read once from the `SAGDFN_THREADS` environment
//! variable; when unset (or unparsable) it defaults to
//! `std::thread::available_parallelism()`. `SAGDFN_THREADS=1` disables
//! parallelism entirely — no worker threads are ever spawned and every
//! kernel takes its serial path.
//!
//! ## Re-entrancy
//!
//! Pool worker threads, and the calling thread while it participates in
//! a parallel region, are flagged thread-locally. Any pooled primitive
//! invoked from inside a pool task (e.g. a 2-D matmul called from a
//! batched-matmul task) sees the flag and runs serially instead of
//! re-submitting to the pool, so nesting can never deadlock.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// True on pool workers (always) and on caller threads while they
    /// execute tasks of a parallel region they submitted.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Minimal MPMC job queue: a locked deque plus a condvar workers park on.
/// Workers live for the whole process, so there is no close/shutdown path.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().expect("pool queue poisoned").push_back(job);
        self.available.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.available.wait(jobs).expect("pool queue poisoned");
        }
    }
}

struct Pool {
    queue: Arc<JobQueue>,
    /// Worker threads (excludes the calling thread, which participates).
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Number of threads the pool is configured for (workers + the caller).
///
/// Read once from `SAGDFN_THREADS`; defaults to
/// `available_parallelism()`. Always >= 1.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("SAGDFN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = num_threads() - 1;
        let queue = Arc::new(JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..workers {
            let q = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("sagdfn-pool-{i}"))
                .spawn(move || {
                    // Workers only ever run pool tasks, so the re-entrancy
                    // flag stays set for the life of the thread.
                    IN_POOL_TASK.with(|f| f.set(true));
                    loop {
                        q.pop()();
                    }
                })
                .expect("failed to spawn sagdfn pool worker");
        }
        Pool { queue, workers }
    })
}

/// True when the current context must not re-submit work to the pool:
/// either this thread is already inside a pool task, or the pool is
/// configured single-threaded. Kernels use this to pick their serial
/// path.
pub fn is_serial() -> bool {
    num_threads() == 1 || IN_POOL_TASK.with(|f| f.get())
}

/// Runs `f` with all pooled kernels forced onto their serial paths on
/// this thread. Used by determinism tests and benchmarks to obtain the
/// serial reference result without touching the environment.
pub fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL_TASK.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(IN_POOL_TASK.with(|c| c.replace(true)));
    f()
}

/// Shared state of one parallel region. Tasks are claimed via an atomic
/// counter (dynamic scheduling), but task index -> output range is fixed
/// by the caller, so scheduling order never affects results.
struct TaskSet {
    /// Lifetime-erased pointer to the caller's task body. Only valid
    /// while the submitting call is blocked in [`par_for`]; the
    /// `pending` latch guarantees every job entry has returned before
    /// `par_for` does.
    f: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    next: AtomicUsize,
    panicked: AtomicBool,
    /// Job entries (one per enlisted worker) still running.
    pending: Mutex<usize>,
    done: Condvar,
}

// SAFETY: `f` points at a `Sync` closure and is only dereferenced while
// the owning `par_for` frame is alive (enforced by the `pending` latch).
unsafe impl Send for TaskSet {}
unsafe impl Sync for TaskSet {}

impl TaskSet {
    /// Claims and runs tasks until none remain. Panics in the task body
    /// are caught and recorded so a worker never unwinds into its
    /// channel loop; the submitting thread re-raises.
    fn run_tasks(&self) {
        // SAFETY: see field invariant on `f`.
        let f = unsafe { &*self.f };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }

    fn run_as_worker(&self) {
        self.run_tasks();
        let mut pending = self.pending.lock().expect("pool latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().expect("pool latch poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("pool latch poisoned");
        }
    }
}

/// Runs `f(0), f(1), …, f(n_tasks - 1)` across the pool (the calling
/// thread participates) and returns once all tasks have finished.
///
/// Falls back to a plain serial loop when the pool is single-threaded,
/// when `n_tasks <= 1`, or when called from inside a pool task (see
/// module docs on re-entrancy). Task-to-worker assignment is dynamic,
/// but `f(i)` must derive its output location purely from `i`, which
/// every caller in this crate does — that is the determinism contract.
///
/// # Panics
/// Re-raises (as a single panic) if any task panicked.
pub fn par_for(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    if n_tasks == 1 || is_serial() {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    let p = pool();
    if p.workers == 0 {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    // Enlist at most (n_tasks - 1) workers; the caller runs tasks too.
    // Counted here — past every serial fallback — so the tally reflects
    // regions that actually fanned out.
    sagdfn_obs::tally_pool_region(n_tasks as u64);
    let entries = p.workers.min(n_tasks - 1);
    let set = Arc::new(TaskSet {
        f: unsafe {
            // SAFETY: erases the borrow lifetime; `set.wait()` below keeps
            // this frame alive until every dereference has completed.
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        },
        n_tasks,
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        pending: Mutex::new(entries),
        done: Condvar::new(),
    });
    for _ in 0..entries {
        let s = Arc::clone(&set);
        p.queue.push(Box::new(move || s.run_as_worker()));
    }
    // The caller participates with the re-entrancy flag raised so nested
    // kernels inside `f` run serial rather than re-submitting.
    run_serial(|| set.run_tasks());
    set.wait();
    if set.panicked.load(Ordering::Relaxed) {
        panic!("sagdfn pool task panicked");
    }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and runs `f(chunk_index, chunk)` for each across
/// the pool. Chunk boundaries depend only on `chunk_len`, never on the
/// thread count, so the output mapping is deterministic.
///
/// # Panics
/// Panics if `chunk_len == 0`, or re-raises a task panic.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut requires chunk_len > 0");
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    if n_chunks <= 1 || is_serial() {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = data.as_mut_ptr() as usize;
    par_for(n_chunks, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunks [start, end) are pairwise disjoint across task
        // indices and in-bounds of `data`, which outlives this call.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
        f(i, chunk);
    });
}

/// Picks a chunk length that spreads `total` elements over the pool with
/// a few tasks per thread (for load balance under dynamic scheduling)
/// while keeping every chunk a multiple of `unit` (e.g. a row) and at
/// least `min_units` units long.
pub fn chunk_len(total: usize, unit: usize, min_units: usize) -> usize {
    debug_assert!(unit > 0);
    let units = total / unit.max(1);
    let per_task = units.div_ceil(num_threads() * 4).max(min_units.max(1));
    per_task * unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn par_for_covers_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_for(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_maps_chunks_deterministically() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn nested_par_for_runs_serial_not_deadlocked() {
        let outer = 16;
        let inner = 64;
        let count = AtomicUsize::new(0);
        par_for(outer, &|_| {
            // Inside a pool task this must take the serial fallback.
            assert!(is_serial());
            par_for(inner, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), outer * inner);
    }

    #[test]
    fn run_serial_restores_flag() {
        let before = is_serial();
        run_serial(|| assert!(is_serial()));
        assert_eq!(is_serial(), before);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        let r = std::panic::catch_unwind(|| {
            par_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn chunk_len_respects_unit_and_minimum() {
        let c = chunk_len(1000, 7, 2);
        assert_eq!(c % 7, 0);
        assert!(c >= 14);
    }
}
