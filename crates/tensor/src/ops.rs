//! Elementwise and broadcast arithmetic.
//!
//! Binary ops broadcast under NumPy rules via [`Shape::broadcast`]. The
//! implementation has three tiers: same-shape (single fused loop), scalar
//! operand (fused loop with a constant), and the general right-aligned
//! strided walk. All tiers produce a fresh contiguous tensor, and all
//! tiers split large outputs across the persistent worker
//! [`pool`](crate::pool). Every element is a pure function of its input
//! elements, so chunking cannot change results: parallel output is
//! bit-identical to serial.

use crate::alloc;
use crate::pool;
use crate::shape::{Shape, MAX_RANK};
use crate::simd;
use crate::tensor::Tensor;

/// Below this many output elements an elementwise kernel stays serial —
/// these ops are memory-bound, so the pool only pays off on buffers well
/// past L2.
const ELEMWISE_PARALLEL_THRESHOLD: usize = 32 * 1024;

/// The four basic arithmetic ops routed through the [`simd`] dispatch
/// layer on the two hot tiers (same shape, scalar operand); the general
/// strided walk falls back to [`broadcast_binary`]. Same thresholds and
/// chunking as the closure path, and the scalar SIMD tier is the exact
/// loop the closures compiled to — results are unchanged.
fn broadcast_binary_op(a: &Tensor, b: &Tensor, op: simd::BinOp) -> Tensor {
    // Tier 1: identical shapes — one fused vectorized loop.
    if a.shape() == b.shape() {
        let (da, db) = (a.as_slice(), b.as_slice());
        let numel = da.len();
        // Recycled buffer: every element is written below.
        let mut out = alloc::acquire(numel);
        if numel >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
            let chunk = pool::chunk_len(numel, 1, 4096);
            pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
                let start = ci * chunk;
                let end = start + out_chunk.len();
                simd::binary(op, &da[start..end], &db[start..end], out_chunk);
            });
        } else {
            simd::binary(op, da, db, &mut out);
        }
        return Tensor::from_vec(out, a.shape().clone());
    }
    // Tier 2: one side is a single element.
    if b.numel() == 1 {
        return map_binary_scalar(a, op, b.as_slice()[0], false);
    }
    if a.numel() == 1 {
        return map_binary_scalar(b, op, a.as_slice()[0], true);
    }
    // Tier 3: general strided walk (not vectorized — gather-bound).
    match op {
        simd::BinOp::Add => broadcast_binary(a, b, |x, y| x + y),
        simd::BinOp::Sub => broadcast_binary(a, b, |x, y| x - y),
        simd::BinOp::Mul => broadcast_binary(a, b, |x, y| x * y),
        simd::BinOp::Div => broadcast_binary(a, b, |x, y| x / y),
    }
}

/// `src ⊕ s` (or `s ⊕ src` when `scalar_lhs`) through the SIMD layer,
/// with [`map`]'s threshold and chunking.
fn map_binary_scalar(t: &Tensor, op: simd::BinOp, s: f32, scalar_lhs: bool) -> Tensor {
    let src = t.as_slice();
    let numel = src.len();
    // Recycled buffer: every element is written below.
    let mut out = alloc::acquire(numel);
    if numel >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
        let chunk = pool::chunk_len(numel, 1, 4096);
        pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
            let start = ci * chunk;
            let end = start + out_chunk.len();
            simd::binary_scalar(op, &src[start..end], s, out_chunk, scalar_lhs);
        });
    } else {
        simd::binary_scalar(op, src, s, &mut out, scalar_lhs);
    }
    Tensor::from_vec(out, t.shape().clone())
}

/// Unary elementwise op through the SIMD layer, with [`map`]'s threshold
/// and chunking.
fn map_unary(t: &Tensor, op: simd::UnOp) -> Tensor {
    let src = t.as_slice();
    let numel = src.len();
    // Recycled buffer: every element is written below.
    let mut out = alloc::acquire(numel);
    if numel >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
        let chunk = pool::chunk_len(numel, 1, 4096);
        pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
            let start = ci * chunk;
            simd::unary(op, &src[start..start + out_chunk.len()], out_chunk);
        });
    } else {
        simd::unary(op, src, &mut out);
    }
    Tensor::from_vec(out, t.shape().clone())
}

/// Applies `f` elementwise over the broadcast of `a` and `b`.
pub fn broadcast_binary(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let numel = out_shape.numel();
    let parallel = numel >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial();

    // Tier 1: identical shapes.
    if a.shape() == b.shape() {
        let (da, db) = (a.as_slice(), b.as_slice());
        // Recycled buffer: every element is written below.
        let mut out = alloc::acquire(numel);
        if parallel {
            let chunk_len = pool::chunk_len(numel, 1, 4096);
            pool::par_chunks_mut(&mut out, chunk_len, |ci, chunk| {
                let start = ci * chunk_len;
                for (o, (x, y)) in chunk
                    .iter_mut()
                    .zip(da[start..].iter().zip(&db[start..]))
                {
                    *o = f(*x, *y);
                }
            });
        } else {
            for (o, (&x, &y)) in out.iter_mut().zip(da.iter().zip(db)) {
                *o = f(x, y);
            }
        }
        return Tensor::from_vec(out, out_shape);
    }
    // Tier 2: one side is a single element.
    if b.numel() == 1 {
        let y = b.as_slice()[0];
        return map(a, move |x| f(x, y));
    }
    if a.numel() == 1 {
        let x = a.as_slice()[0];
        return map(b, move |y| f(x, y));
    }

    // Tier 3: general broadcast walk with per-operand strides (stride 0 on
    // broadcast dimensions).
    let rank = out_shape.rank();
    let strides_for = |t: &Tensor| -> [usize; MAX_RANK] {
        let mut s = [0usize; MAX_RANK];
        let tdims = t.shape().dims();
        let tstrides = t.shape().strides();
        let offset = rank - tdims.len();
        for i in 0..tdims.len() {
            s[offset + i] = if tdims[i] == 1 { 0 } else { tstrides[i] };
        }
        s
    };
    let sa = strides_for(a);
    let sb = strides_for(b);
    let odims = out_shape.dims().to_vec();
    let (da, db) = (a.as_slice(), b.as_slice());
    // Recycled buffer: the broadcast walk writes every output position.
    let mut out = alloc::acquire(numel);
    if parallel {
        let chunk = pool::chunk_len(numel, 1, 4096);
        pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
            broadcast_walk(out_chunk, ci * chunk, da, db, &sa, &sb, &odims, rank, &f);
        });
    } else {
        broadcast_walk(&mut out, 0, da, db, &sa, &sb, &odims, rank, &f);
    }
    Tensor::from_vec(out, out_shape)
}

/// Fills `out` with `f(a[..], b[..])` for the linear output positions
/// `[start, start + out.len())` of the broadcast walk. The starting
/// multi-index is recovered from `start`, then the odometer runs exactly
/// as the serial walk does — the chunk boundary never changes which
/// source elements feed which output element.
#[allow(clippy::too_many_arguments)]
fn broadcast_walk(
    out: &mut [f32],
    start: usize,
    da: &[f32],
    db: &[f32],
    sa: &[usize; MAX_RANK],
    sb: &[usize; MAX_RANK],
    odims: &[usize],
    rank: usize,
    f: &(impl Fn(f32, f32) -> f32 + Sync),
) {
    // Decompose `start` into a multi-index and the two source offsets.
    let mut idx = [0usize; MAX_RANK];
    let mut off_a = 0usize;
    let mut off_b = 0usize;
    let mut rem = start;
    for d in (0..rank).rev() {
        let i = rem % odims[d];
        rem /= odims[d];
        idx[d] = i;
        off_a += sa[d] * i;
        off_b += sb[d] * i;
    }
    for o in out.iter_mut() {
        *o = f(da[off_a], db[off_b]);
        // Odometer increment.
        let mut d = rank;
        loop {
            if d == 0 {
                return; // walked off the end of the full output
            }
            d -= 1;
            idx[d] += 1;
            off_a += sa[d];
            off_b += sb[d];
            if idx[d] < odims[d] {
                break;
            }
            off_a -= sa[d] * idx[d];
            off_b -= sb[d] * idx[d];
            idx[d] = 0;
        }
    }
}

/// Applies `f` elementwise, producing a new tensor.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let src = a.as_slice();
    let numel = src.len();
    // Recycled buffer: every element is written below.
    let mut out = alloc::acquire(numel);
    if numel >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
        let chunk = pool::chunk_len(numel, 1, 4096);
        pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
            let start = ci * chunk;
            for (o, &x) in out_chunk.iter_mut().zip(&src[start..]) {
                *o = f(x);
            }
        });
    } else {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = f(x);
        }
    }
    Tensor::from_vec(out, a.shape().clone())
}

/// Applies `f` elementwise in place.
pub fn map_inplace(a: &mut Tensor, f: impl Fn(f32) -> f32 + Sync) {
    let data = a.as_mut_slice();
    if data.len() >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
        let chunk = pool::chunk_len(data.len(), 1, 4096);
        pool::par_chunks_mut(data, chunk, |_, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
        return;
    }
    for v in data {
        *v = f(*v);
    }
}

impl Tensor {
    /// Elementwise sum with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        broadcast_binary_op(self, other, simd::BinOp::Add)
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        broadcast_binary_op(self, other, simd::BinOp::Sub)
    }

    /// Elementwise (Hadamard) product with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        broadcast_binary_op(self, other, simd::BinOp::Mul)
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        broadcast_binary_op(self, other, simd::BinOp::Div)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, f32::min)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        map_binary_scalar(self, simd::BinOp::Add, s, false)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        map_binary_scalar(self, simd::BinOp::Mul, s, false)
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        map_unary(self, simd::UnOp::Neg)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        map_unary(self, simd::UnOp::Abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        map(self, f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        map(self, f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        map_unary(self, simd::UnOp::Sqrt)
    }

    /// Elementwise power with a float exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        map(self, |x| x.powf(p))
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        map_unary(self, simd::UnOp::Square)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        map_binary_scalar(self, simd::BinOp::Div, 1.0, true)
    }

    /// Logistic sigmoid, numerically stable for large |x|.
    pub fn sigmoid(&self) -> Tensor {
        map(self, |x| {
            if x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            }
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        map(self, f32::tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        map(self, |x| x.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        map(self, |x| x.clamp(lo, hi))
    }

    /// In-place scaled accumulate: `self += alpha * other` (same shape only —
    /// this is the optimizer hot path, no broadcasting).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy requires identical shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        if dst.len() >= ELEMWISE_PARALLEL_THRESHOLD && !pool::is_serial() {
            let chunk = pool::chunk_len(dst.len(), 1, 4096);
            pool::par_chunks_mut(dst, chunk, |ci, chunk_dst| {
                let start = ci * chunk;
                simd::axpy(alpha, &src[start..start + chunk_dst.len()], chunk_dst);
            });
            return;
        }
        simd::axpy(alpha, src, dst);
    }

    /// Materializes `self` broadcast to `target`.
    pub fn broadcast_to(&self, target: &Shape) -> Tensor {
        assert!(
            self.shape().broadcasts_to(target),
            "{} does not broadcast to {}",
            self.shape(),
            target
        );
        // Reuse the general binary walk against a virtual zeros tensor by
        // adding zero; cheap and correct, though it allocates one extra
        // buffer only when shapes differ.
        if self.shape() == target {
            return self.clone();
        }
        broadcast_binary(self, &Tensor::zeros(target.clone()), |x, _| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0, 30.0, 40.0], &[2, 2]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn add_scalar_tensor_broadcast() {
        let a = t(&[1.0, 2.0], &[2]);
        let s = Tensor::scalar(5.0);
        assert_eq!(a.add(&s).as_slice(), &[6.0, 7.0]);
        assert_eq!(s.sub(&a).as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        // (2,3) + (3,) adds the row to each row.
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[10., 20., 30.], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn broadcast_column_vector() {
        // (2,3) * (2,1) scales each row.
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[2., 10.], &[2, 1]);
        assert_eq!(a.mul(&b).as_slice(), &[2., 4., 6., 40., 50., 60.]);
    }

    #[test]
    fn broadcast_both_sides() {
        // (2,1) + (1,3) -> (2,3) outer sum.
        let a = t(&[1., 2.], &[2, 1]);
        let b = t(&[10., 20., 30.], &[1, 3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 21., 31., 12., 22., 32.]);
    }

    #[test]
    fn broadcast_3d() {
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(&[1., 2., 3.], &[3]);
        let c = a.add(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c.at(&[1, 1, 2]), 11.0 + 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_broadcast_panics() {
        t(&[1., 2.], &[2]).add(&t(&[1., 2., 3.], &[3]));
    }

    #[test]
    fn sigmoid_stable_extremes() {
        let a = t(&[-100.0, 0.0, 100.0], &[3]);
        let s = a.sigmoid();
        assert!(s.as_slice()[0].abs() < 1e-30);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-7);
        assert!((s.as_slice()[2] - 1.0).abs() < 1e-7);
        assert!(s.all_finite());
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(t(&[-1.0, 0.0, 2.0], &[3]).relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.axpy(0.5, &t(&[4.0, 8.0], &[2]));
        assert_eq!(a.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn broadcast_to_materializes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = a.broadcast_to(&Shape::new(&[3, 2]));
        assert_eq!(b.as_slice(), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn div_by_tensor() {
        let a = t(&[2.0, 9.0], &[2]);
        let b = t(&[2.0, 3.0], &[2]);
        assert_eq!(a.div(&b).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn maximum_minimum() {
        let a = t(&[1.0, 5.0], &[2]);
        let b = t(&[3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).as_slice(), &[1.0, 2.0]);
    }
}
