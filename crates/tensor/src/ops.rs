//! Elementwise and broadcast arithmetic.
//!
//! Binary ops broadcast under NumPy rules via [`Shape::broadcast`]. The
//! implementation has three tiers: same-shape (single fused loop), scalar
//! operand (fused loop with a constant), and the general right-aligned
//! strided walk. All tiers produce a fresh contiguous tensor.

use crate::shape::{Shape, MAX_RANK};
use crate::tensor::Tensor;

/// Applies `f` elementwise over the broadcast of `a` and `b`.
pub fn broadcast_binary(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));

    // Tier 1: identical shapes.
    if a.shape() == b.shape() {
        let data = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| f(x, y))
            .collect();
        return Tensor::from_vec(data, out_shape);
    }
    // Tier 2: one side is a single element.
    if b.numel() == 1 {
        let y = b.as_slice()[0];
        let data = a.as_slice().iter().map(|&x| f(x, y)).collect();
        return Tensor::from_vec(data, out_shape);
    }
    if a.numel() == 1 {
        let x = a.as_slice()[0];
        let data = b.as_slice().iter().map(|&y| f(x, y)).collect();
        return Tensor::from_vec(data, out_shape);
    }

    // Tier 3: general broadcast walk with per-operand strides (stride 0 on
    // broadcast dimensions).
    let rank = out_shape.rank();
    let strides_for = |t: &Tensor| -> [usize; MAX_RANK] {
        let mut s = [0usize; MAX_RANK];
        let tdims = t.shape().dims();
        let tstrides = t.shape().strides();
        let offset = rank - tdims.len();
        for i in 0..tdims.len() {
            s[offset + i] = if tdims[i] == 1 { 0 } else { tstrides[i] };
        }
        s
    };
    let sa = strides_for(a);
    let sb = strides_for(b);
    let odims = out_shape.dims().to_vec();
    let mut out = Vec::with_capacity(out_shape.numel());
    let mut idx = [0usize; MAX_RANK];
    let (da, db) = (a.as_slice(), b.as_slice());
    let mut off_a = 0usize;
    let mut off_b = 0usize;
    loop {
        out.push(f(da[off_a], db[off_b]));
        // Odometer increment.
        let mut d = rank;
        loop {
            if d == 0 {
                return Tensor::from_vec(out, out_shape);
            }
            d -= 1;
            idx[d] += 1;
            off_a += sa[d];
            off_b += sb[d];
            if idx[d] < odims[d] {
                break;
            }
            off_a -= sa[d] * idx[d];
            off_b -= sb[d] * idx[d];
            idx[d] = 0;
        }
    }
}

/// Applies `f` elementwise, producing a new tensor.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = a.as_slice().iter().map(|&x| f(x)).collect();
    Tensor::from_vec(data, a.shape().clone())
}

/// Applies `f` elementwise in place.
pub fn map_inplace(a: &mut Tensor, f: impl Fn(f32) -> f32) {
    for v in a.as_mut_slice() {
        *v = f(*v);
    }
}

impl Tensor {
    /// Elementwise sum with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, |x, y| x + y)
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, |x, y| x - y)
    }

    /// Elementwise (Hadamard) product with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, |x, y| x * y)
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, |x, y| x / y)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        broadcast_binary(self, other, f32::min)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        map(self, |x| x + s)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        map(self, |x| x * s)
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        map(self, |x| -x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        map(self, f32::abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        map(self, f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        map(self, f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        map(self, f32::sqrt)
    }

    /// Elementwise power with a float exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        map(self, |x| x.powf(p))
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        map(self, |x| x * x)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        map(self, |x| 1.0 / x)
    }

    /// Logistic sigmoid, numerically stable for large |x|.
    pub fn sigmoid(&self) -> Tensor {
        map(self, |x| {
            if x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            }
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        map(self, f32::tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        map(self, |x| x.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        map(self, |x| x.clamp(lo, hi))
    }

    /// In-place scaled accumulate: `self += alpha * other` (same shape only —
    /// this is the optimizer hot path, no broadcasting).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy requires identical shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Materializes `self` broadcast to `target`.
    pub fn broadcast_to(&self, target: &Shape) -> Tensor {
        assert!(
            self.shape().broadcasts_to(target),
            "{} does not broadcast to {}",
            self.shape(),
            target
        );
        // Reuse the general binary walk against a virtual zeros tensor by
        // adding zero; cheap and correct, though it allocates one extra
        // buffer only when shapes differ.
        if self.shape() == target {
            return self.clone();
        }
        broadcast_binary(self, &Tensor::zeros(target.clone()), |x, _| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0, 30.0, 40.0], &[2, 2]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn add_scalar_tensor_broadcast() {
        let a = t(&[1.0, 2.0], &[2]);
        let s = Tensor::scalar(5.0);
        assert_eq!(a.add(&s).as_slice(), &[6.0, 7.0]);
        assert_eq!(s.sub(&a).as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        // (2,3) + (3,) adds the row to each row.
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[10., 20., 30.], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn broadcast_column_vector() {
        // (2,3) * (2,1) scales each row.
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[2., 10.], &[2, 1]);
        assert_eq!(a.mul(&b).as_slice(), &[2., 4., 6., 40., 50., 60.]);
    }

    #[test]
    fn broadcast_both_sides() {
        // (2,1) + (1,3) -> (2,3) outer sum.
        let a = t(&[1., 2.], &[2, 1]);
        let b = t(&[10., 20., 30.], &[1, 3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 21., 31., 12., 22., 32.]);
    }

    #[test]
    fn broadcast_3d() {
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(&[1., 2., 3.], &[3]);
        let c = a.add(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c.at(&[1, 1, 2]), 11.0 + 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_broadcast_panics() {
        t(&[1., 2.], &[2]).add(&t(&[1., 2., 3.], &[3]));
    }

    #[test]
    fn sigmoid_stable_extremes() {
        let a = t(&[-100.0, 0.0, 100.0], &[3]);
        let s = a.sigmoid();
        assert!(s.as_slice()[0].abs() < 1e-30);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-7);
        assert!((s.as_slice()[2] - 1.0).abs() < 1e-7);
        assert!(s.all_finite());
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(t(&[-1.0, 0.0, 2.0], &[3]).relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.axpy(0.5, &t(&[4.0, 8.0], &[2]));
        assert_eq!(a.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn broadcast_to_materializes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = a.broadcast_to(&Shape::new(&[3, 2]));
        assert_eq!(b.as_slice(), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn div_by_tensor() {
        let a = t(&[2.0, 9.0], &[2]);
        let b = t(&[2.0, 3.0], &[2]);
        assert_eq!(a.div(&b).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn maximum_minimum() {
        let a = t(&[1.0, 5.0], &[2]);
        let b = t(&[3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).as_slice(), &[1.0, 2.0]);
    }
}
