//! Reductions: sum, mean, max, and axis-wise variants.
//!
//! Full reductions (`sum`, norms) accumulate per fixed-size chunk in f64
//! and combine the partials in chunk order. The chunk grid depends only
//! on [`REDUCE_CHUNK`] — never on the thread count — and the serial path
//! walks the identical grid, so pooled results are bit-identical to
//! serial ones at every `SAGDFN_THREADS` setting. Axis reductions
//! parallelize over independent output slices, which preserves the exact
//! per-element accumulation order by construction.

use crate::alloc;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;
use sagdfn_obs as obs;

/// Fixed accumulation-chunk size of the full reductions. Also the serial
/// path's chunk size — the grid must not depend on the thread count or
/// parallel and serial results could differ in rounding.
const REDUCE_CHUNK: usize = 8 * 1024;

/// Below this many elements a full reduction stays serial.
const REDUCE_PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Below this many elements an axis reduction stays serial.
const AXIS_PARALLEL_THRESHOLD: usize = 32 * 1024;

/// Vectorized whole-row accumulator (`fast(dst, src_row)`): applies an
/// axis reduction's combining function element-by-element over a row.
type RowAccum = fn(&mut [f32], &[f32]);

/// Chunked f64 accumulation of `per(v)` over `data`: partial sums per
/// [`REDUCE_CHUNK`] block (parallel when large), combined left-to-right.
fn chunked_reduce(data: &[f32], per: impl Fn(f32) -> f64 + Sync) -> f64 {
    // One f64 out; flops = one op per element.
    let _g = obs::kernel(obs::Kernel::Reduce, data.len() as u64, 4 * data.len() as u64, 8);
    let n_chunks = data.len().div_ceil(REDUCE_CHUNK).max(1);
    if data.len() >= REDUCE_PARALLEL_THRESHOLD && !pool::is_serial() {
        let mut partials = vec![0.0f64; n_chunks];
        pool::par_chunks_mut(&mut partials, 1, |ci, p| {
            let start = ci * REDUCE_CHUNK;
            let end = (start + REDUCE_CHUNK).min(data.len());
            p[0] = data[start..end].iter().map(|&v| per(v)).sum::<f64>();
        });
        partials.into_iter().sum()
    } else {
        data.chunks(REDUCE_CHUNK)
            .map(|c| c.iter().map(|&v| per(v)).sum::<f64>())
            .sum()
    }
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Chunked accumulation in f64 keeps error small for the large
        // loss sums the training loop computes.
        chunked_reduce(self.as_slice(), |v| v as f64) as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum along `axis`, removing that dimension.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        // The vectorized row accumulator performs the identical `+=` per
        // element (the SIMD tiers are bit-identical to this closure).
        self.reduce_axis(axis, 0.0, |acc, v| acc + v, Some(simd::add_assign))
    }

    /// Mean along `axis`, removing that dimension.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dim(axis) as f32;
        self.sum_axis(axis).scale(1.0 / n)
    }

    /// Max along `axis`, removing that dimension.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        // No vectorized fast path: `f32::max` keeps Rust's NaN semantics.
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max, None)
    }

    /// Axis reduction by `f`, with an optional vectorized row accumulator
    /// `fast(dst, src_row)` that must apply `f` element-by-element (used
    /// for whole contiguous rows; partial columns keep the scalar loop).
    fn reduce_axis(
        &self,
        axis: usize,
        init: f32,
        f: impl Fn(f32, f32) -> f32 + Sync,
        fast: Option<RowAccum>,
    ) -> Tensor {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for {}", self.shape());
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let axis_len = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let _g = obs::kernel(
            obs::Kernel::Reduce,
            self.numel() as u64,
            4 * self.numel() as u64,
            4 * (outer * inner) as u64,
        );
        // Recycled buffer; seeded with `init` because accumulation below
        // reads the previous value of every output element.
        let mut out = alloc::acquire(outer * inner);
        out.fill(init);
        let src = self.as_slice();
        // Accumulates output columns [i0, i0+dst.len()) of outer slice `o`
        // in the same a-ascending order as the serial triple loop — every
        // output element sees the identical f-application sequence no
        // matter how the work is chunked.
        let accumulate = |o: usize, i0: usize, dst: &mut [f32]| {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner + i0;
                match fast {
                    Some(g) => g(dst, &src[base..base + dst.len()]),
                    None => {
                        for (i, d) in dst.iter_mut().enumerate() {
                            *d = f(*d, src[base + i]);
                        }
                    }
                }
            }
        };
        let parallel = self.numel() >= AXIS_PARALLEL_THRESHOLD && !pool::is_serial();
        if parallel && outer > 1 {
            // Independent outer slices: one or more whole slices per task.
            // (All dims are >= 1 here — numel cleared the threshold.)
            let chunk = pool::chunk_len(outer * inner, inner, 1);
            pool::par_chunks_mut(&mut out, chunk, |ci, dst| {
                let o0 = ci * chunk / inner;
                for (oo, dst_o) in dst.chunks_mut(inner).enumerate() {
                    accumulate(o0 + oo, 0, dst_o);
                }
            });
        } else if parallel && inner > 1 {
            // Single outer slice (e.g. axis 0 of a matrix): split columns.
            let chunk = pool::chunk_len(inner, 1, 1024);
            pool::par_chunks_mut(&mut out, chunk, |ci, dst| {
                accumulate(0, ci * chunk, dst);
            });
        } else {
            for o in 0..outer {
                accumulate(o, 0, &mut out[o * inner..(o + 1) * inner]);
            }
        }
        let mut out_dims: Vec<usize> = dims[..axis].to_vec();
        out_dims.extend_from_slice(&dims[axis + 1..]);
        if out_dims.is_empty() {
            return Tensor::from_vec(out, crate::Shape::scalar());
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// Index of the maximum element along the last axis, one per row.
    pub fn argmax_last(&self) -> Vec<usize> {
        let rank = self.rank();
        assert!(rank >= 1);
        let n = self.dim(rank - 1);
        self.as_slice()
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .expect("empty row")
            })
            .collect()
    }

    /// Frobenius / L2 norm of all elements.
    pub fn norm_l2(&self) -> f32 {
        chunked_reduce(self.as_slice(), |v| (v as f64) * (v as f64)).sqrt() as f32
    }

    /// Sum of absolute values.
    pub fn norm_l1(&self) -> f32 {
        chunked_reduce(self.as_slice(), |v| v.abs() as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn total_reductions() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn sum_axis0_collapses_rows() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let s = a.sum_axis(0);
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.as_slice(), &[5., 7., 9.]);
    }

    #[test]
    fn sum_axis1_collapses_cols() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let s = a.sum_axis(1);
        assert_eq!(s.dims(), &[2]);
        assert_eq!(s.as_slice(), &[6., 15.]);
    }

    #[test]
    fn mean_axis_divides() {
        let a = t(&[2., 4., 6., 8.], &[2, 2]);
        assert_eq!(a.mean_axis(0).as_slice(), &[4., 6.]);
    }

    #[test]
    fn max_axis_middle_of_3d() {
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 2]);
        let m = a.max_axis(1);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[4., 5., 10., 11.]);
    }

    #[test]
    fn reduce_to_scalar_shape() {
        let a = t(&[1., 2., 3.], &[3]);
        let s = a.sum_axis(0);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 6.0);
    }

    #[test]
    fn argmax_last_per_row() {
        let a = t(&[1., 9., 2., 8., 0., 3.], &[2, 3]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn norms() {
        let a = t(&[3., -4.], &[2]);
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        assert!((a.norm_l1() - 7.0).abs() < 1e-6);
    }
}
