//! Reductions: sum, mean, max, and axis-wise variants.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Pairwise-ish accumulation in f64 keeps error small for the large
        // loss sums the training loop computes.
        self.as_slice().iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum along `axis`, removing that dimension.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// Mean along `axis`, removing that dimension.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dim(axis) as f32;
        self.sum_axis(axis).scale(1.0 / n)
    }

    /// Max along `axis`, removing that dimension.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for {}", self.shape());
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let axis_len = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for i in 0..inner {
                    dst[i] = f(dst[i], src[base + i]);
                }
            }
        }
        let mut out_dims: Vec<usize> = dims[..axis].to_vec();
        out_dims.extend_from_slice(&dims[axis + 1..]);
        if out_dims.is_empty() {
            return Tensor::from_vec(out, crate::Shape::scalar());
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// Index of the maximum element along the last axis, one per row.
    pub fn argmax_last(&self) -> Vec<usize> {
        let rank = self.rank();
        assert!(rank >= 1);
        let n = self.dim(rank - 1);
        self.as_slice()
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .expect("empty row")
            })
            .collect()
    }

    /// Frobenius / L2 norm of all elements.
    pub fn norm_l2(&self) -> f32 {
        (self
            .as_slice()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Sum of absolute values.
    pub fn norm_l1(&self) -> f32 {
        self.as_slice().iter().map(|&v| v.abs() as f64).sum::<f64>() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn total_reductions() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn sum_axis0_collapses_rows() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let s = a.sum_axis(0);
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.as_slice(), &[5., 7., 9.]);
    }

    #[test]
    fn sum_axis1_collapses_cols() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let s = a.sum_axis(1);
        assert_eq!(s.dims(), &[2]);
        assert_eq!(s.as_slice(), &[6., 15.]);
    }

    #[test]
    fn mean_axis_divides() {
        let a = t(&[2., 4., 6., 8.], &[2, 2]);
        assert_eq!(a.mean_axis(0).as_slice(), &[4., 6.]);
    }

    #[test]
    fn max_axis_middle_of_3d() {
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 2]);
        let m = a.max_axis(1);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[4., 5., 10., 11.]);
    }

    #[test]
    fn reduce_to_scalar_shape() {
        let a = t(&[1., 2., 3.], &[3]);
        let s = a.sum_axis(0);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 6.0);
    }

    #[test]
    fn argmax_last_per_row() {
        let a = t(&[1., 9., 2., 8., 0., 3.], &[2, 3]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn norms() {
        let a = t(&[3., -4.], &[2]);
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        assert!((a.norm_l1() - 7.0).abs() < 1e-6);
    }
}
