//! SIMD microkernels behind the [`dispatch`](crate::dispatch) layer.
//!
//! Every public function here is a safe wrapper that consults
//! [`simd_tier`](crate::dispatch::simd_tier) once and runs one of four
//! variants: `scalar` (the portable reference — the exact loops the repo
//! shipped before this module existed), `neon`, `avx2` or `avx512`. Two
//! vectorization strategies are used, both **bit-identical to scalar**:
//!
//! 1. **Feature-scoped auto-vectorization** for the elementwise, axpy,
//!    axis-sum, spmm-row and entmax helper loops: the same plain-Rust
//!    body is compiled once per tier under `#[target_feature(...)]`, so
//!    the compiler may use 256/512-bit registers. The loops are written
//!    so every output element is a pure function of its own inputs (no
//!    cross-lane reduction), and LLVM only vectorizes when the lowering
//!    is semantically exact — identical results are guaranteed by
//!    construction, on every input including NaN and signed zeros.
//! 2. **Hand-written register-blocked GEMM microkernels** (`std::arch`
//!    intrinsics on x86_64, a blocked auto-vectorized body on NEON) for
//!    `matmul`: MR×NR accumulator tiles held in registers, loaded from
//!    and stored back to `C` once per tile. These keep the repo-wide
//!    4-wide k-grouping contract — each group is summed as
//!    `((a0·b0 + a1·b1) + a2·b2) + a3·b3` and added to the accumulator
//!    with one add, remainder terms one at a time — which is exactly the
//!    scalar kernel's association, applied lane-wise over the contiguous
//!    `j` axis. No FMA is used anywhere: a fused multiply-add rounds
//!    once where `mul`+`add` rounds twice, which would break bit
//!    equality with the scalar path.
//!
//! What deliberately **stays scalar** (see DESIGN.md §12): the chunked
//! f64 full reductions and the dot-shaped `pair_dot`/`matmul_nt` inner
//! loops (horizontal sums would need re-association), and the libm-based
//! transcendentals (`exp`/`ln`/`tanh`/`powf`), whose polynomial
//! vectorization is not bit-compatible with libm. The big `matmul_nt` /
//! `matmul_tn` products reach the blocked kernel anyway by packing the
//! transposed operand first (see `matmul.rs`).

use crate::dispatch::{simd_tier, SimdTier};

/// The repo's canonical numerically-stable sigmoid (the exact body
/// `Tensor::sigmoid` maps per element). The fused chain kernels call
/// this same function so their outputs are bit-identical to the unfused
/// `sigmoid` → `mul` → … sequences they replace. `exp` stays a libm
/// call on every tier (see the module docs).
#[inline(always)]
fn sigmoid_exact(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary elementwise operation selector for [`binary`] /
/// [`binary_scalar`]. Only ops whose vector lowering is IEEE-exact per
/// lane belong here — max/min keep Rust's NaN semantics on the closure
/// path in `ops.rs` instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `x + y`
    Add,
    /// `x - y`
    Sub,
    /// `x * y`
    Mul,
    /// `x / y`
    Div,
}

/// Unary elementwise operation selector for [`unary`]. All four are
/// bit-exact under vectorization (`neg`/`abs` are sign-bit ops, `sqrt`
/// is correctly rounded, `square` is one multiply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `|x|`
    Abs,
    /// `√x`
    Sqrt,
    /// `x · x`
    Square,
}

/// Scalar edge kernel shared by every blocked matmul variant: the
/// original serial i-k-j loop restricted to rows `[i0, i1)` and columns
/// `[j0, j1)` of `C += A·B`. Running the full range *is* the scalar
/// reference kernel.
#[allow(clippy::too_many_arguments)]
fn scalar_block(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for j in j0..j1 {
                c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        while kk < k {
            let av = a_row[kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            for j in j0..j1 {
                c_row[j] += av * b_row[j];
            }
            kk += 1;
        }
    }
}

/// Generates the per-tier loop bodies. One instantiation per tier with
/// that tier's `#[target_feature]` attribute: the *same* source compiles
/// to scalar, NEON, AVX2 or AVX-512 code, so all four variants are
/// semantically the same function — bit-identical results for free.
///
/// The functions are `unsafe fn` because the attributed variants may
/// only run on CPUs with the feature; the safe dispatch wrappers below
/// guarantee that via the cached probe.
macro_rules! simd_impls {
    ($(#[$attr:meta])*) => {
        $(#[$attr])*
        pub unsafe fn binary(op: super::BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
            use super::BinOp;
            match op {
                BinOp::Add => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o = x + y;
                    }
                }
                BinOp::Sub => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o = x - y;
                    }
                }
                BinOp::Mul => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o = x * y;
                    }
                }
                BinOp::Div => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o = x / y;
                    }
                }
            }
        }

        /// `out = src ⊕ s` (or `s ⊕ src` when `scalar_lhs`), preserving
        /// the operand order of the closure tiers it replaces.
        $(#[$attr])*
        pub unsafe fn binary_scalar(
            op: super::BinOp,
            src: &[f32],
            s: f32,
            out: &mut [f32],
            scalar_lhs: bool,
        ) {
            use super::BinOp;
            match (op, scalar_lhs) {
                (BinOp::Add, false) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x + s;
                    }
                }
                (BinOp::Add, true) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = s + x;
                    }
                }
                (BinOp::Sub, false) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x - s;
                    }
                }
                (BinOp::Sub, true) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = s - x;
                    }
                }
                (BinOp::Mul, false) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x * s;
                    }
                }
                (BinOp::Mul, true) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = s * x;
                    }
                }
                (BinOp::Div, false) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x / s;
                    }
                }
                (BinOp::Div, true) => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = s / x;
                    }
                }
            }
        }

        $(#[$attr])*
        pub unsafe fn unary(op: super::UnOp, src: &[f32], out: &mut [f32]) {
            use super::UnOp;
            match op {
                UnOp::Neg => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = -x;
                    }
                }
                UnOp::Abs => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x.abs();
                    }
                }
                UnOp::Sqrt => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x.sqrt();
                    }
                }
                UnOp::Square => {
                    for (o, &x) in out.iter_mut().zip(src) {
                        *o = x * x;
                    }
                }
            }
        }

        /// `dst += alpha · src` — the optimizer hot loop.
        $(#[$attr])*
        pub unsafe fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d += alpha * x;
            }
        }

        /// `dst += src` — the axis-sum accumulation step.
        $(#[$attr])*
        pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d += x;
            }
        }

        /// `dst *= s` — softmax normalization.
        $(#[$attr])*
        pub unsafe fn scale_assign(dst: &mut [f32], s: f32) {
            for d in dst.iter_mut() {
                *d *= s;
            }
        }

        /// The entmax-1.5 output map `p_j = [(z_j/2 − shift − τ)]₊²`.
        $(#[$attr])*
        pub unsafe fn entmax15_map(z: &[f32], shift: f64, tau: f64, p: &mut [f64]) {
            for (o, &v) in p.iter_mut().zip(z) {
                let d = v as f64 / 2.0 - shift - tau;
                *o = if d > 0.0 { d * d } else { 0.0 };
            }
        }

        /// `p /= total` — the defensive simplex normalization.
        $(#[$attr])*
        pub unsafe fn div_assign_f64(p: &mut [f64], total: f64) {
            for v in p.iter_mut() {
                *v /= total;
            }
        }

        /// The entmax backward output map `dz_i = s_i · (g_i − mean)`.
        $(#[$attr])*
        pub unsafe fn entmax_backward_out(s: &[f64], grad_p: &[f32], mean: f64, out: &mut [f32]) {
            for ((o, &si), &gi) in out.iter_mut().zip(s).zip(grad_p) {
                *o = (si * (gi as f64 - mean)) as f32;
            }
        }

        /// Fused GRU reset-gate apply `out = σ(pre) · h`, replacing the
        /// unfused `sigmoid` → `mul` pair (one pass, no intermediate).
        /// `σ` is the shared libm-exact helper, so every tier matches
        /// the two-kernel sequence bit for bit.
        $(#[$attr])*
        pub unsafe fn sigmoid_mul(pre: &[f32], h: &[f32], out: &mut [f32]) {
            for ((o, &p), &hv) in out.iter_mut().zip(pre).zip(h) {
                *o = super::sigmoid_exact(p) * hv;
            }
        }

        /// Fused GRU output combine
        /// `out = z·h + ((−z) + 1)·tanh(hc)` with `z = σ(zp)`,
        /// replacing the six-kernel `sigmoid`/`tanh`/`mul`/`neg`/
        /// `add_scalar`/`mul`/`add` chain. The association mirrors the
        /// unfused sequence exactly: `(z·h) + (((−z)+1)·t)`.
        $(#[$attr])*
        pub unsafe fn gru_combine(zp: &[f32], hc: &[f32], h: &[f32], out: &mut [f32]) {
            for (((o, &zv), &hcv), &hv) in out.iter_mut().zip(zp).zip(hc).zip(h) {
                let z = super::sigmoid_exact(zv);
                let t = hcv.tanh();
                *o = z * hv + ((-z) + 1.0) * t;
            }
        }

        /// Fused diffusion epilogue `out[r,j] = (ax[r,j] + x[r,j]) · deg[r mod n]`
        /// over `rows = len/c` rows — the `add` → broadcast-`mul` pair
        /// of `Adjacency::diffuse` in one pass. `deg` holds the `n`
        /// per-node inverse degrees; rows cycle through it batch-major.
        $(#[$attr])*
        pub unsafe fn diffuse_epilogue(ax: &[f32], x: &[f32], deg: &[f32], out: &mut [f32], c: usize) {
            let n = deg.len();
            let rows = out.len() / c;
            for r in 0..rows {
                let s = deg[r % n];
                let o = &mut out[r * c..(r + 1) * c];
                let av = &ax[r * c..(r + 1) * c];
                let xv = &x[r * c..(r + 1) * c];
                for j in 0..c {
                    o[j] = (av[j] + xv[j]) * s;
                }
            }
        }

        /// In-place broadcast bias add `y[r,j] += bias[j]` — the linear
        /// layer's epilogue without materializing a broadcast operand.
        $(#[$attr])*
        pub unsafe fn bias_add(y: &mut [f32], bias: &[f32]) {
            let nb = bias.len();
            for row in y.chunks_exact_mut(nb) {
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
        }

        /// Fused affine `out = (src + a) · m` — the z-score normalize
        /// order (`add_scalar` then `scale`).
        $(#[$attr])*
        pub unsafe fn add_then_scale(src: &[f32], a: f32, m: f32, out: &mut [f32]) {
            for (o, &v) in out.iter_mut().zip(src) {
                *o = (v + a) * m;
            }
        }

        /// Fused affine `out = src · m + a` — the inverse-transform
        /// order (`scale` then `add_scalar`). Rust never contracts a
        /// `*`/`+` pair into an FMA, so this rounds twice like the
        /// two-kernel sequence it replaces.
        $(#[$attr])*
        pub unsafe fn scale_then_add(src: &[f32], m: f32, a: f32, out: &mut [f32]) {
            for (o, &v) in out.iter_mut().zip(src) {
                *o = v * m + a;
            }
        }

    };
}

/// Generates the portable CSR-row kernel (scalar and NEON tiers). The
/// x86 tiers get hand-written intrinsics instead: under wide target
/// features LLVM's auto-vectorization of this body is ~2× *slower* than
/// the baseline compile (measured on Emerald Rapids), so the shared
/// source is only stamped out where it is known to codegen well.
macro_rules! spmm_row_portable_impl {
    ($(#[$attr:meta])*) => {
        /// One CSR output row: nonzeros grouped by absolute ⌊col/4⌋
        /// within `[0, 4⌊inner/4⌋)`, single adds in the remainder —
        /// mirroring the dense kernel's unroll so each output element
        /// sees the same sequence of nonzero partial sums. The `j` loops
        /// over the contiguous feature axis vectorize.
        $(#[$attr])*
        pub unsafe fn spmm_row(
            cols: &[u32],
            vals: &[f32],
            x: &[f32],
            c_row: &mut [f32],
            inner: usize,
            c: usize,
        ) {
            let k4 = inner & !3;
            let end = cols.len();
            let mut p = 0;
            while p < end {
                let col = cols[p] as usize;
                if col >= k4 {
                    break;
                }
                let group_end = (col & !3) + 4;
                let mut q = p + 1;
                while q < end && (cols[q] as usize) < group_end {
                    q += 1;
                }
                match q - p {
                    1 => {
                        let a0 = vals[p];
                        let b0 = &x[col * c..(col + 1) * c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j];
                        }
                    }
                    2 => {
                        let (a0, a1) = (vals[p], vals[p + 1]);
                        let b0 = &x[col * c..(col + 1) * c];
                        let c1 = cols[p + 1] as usize;
                        let b1 = &x[c1 * c..(c1 + 1) * c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j];
                        }
                    }
                    3 => {
                        let (a0, a1, a2) = (vals[p], vals[p + 1], vals[p + 2]);
                        let b0 = &x[col * c..(col + 1) * c];
                        let c1 = cols[p + 1] as usize;
                        let b1 = &x[c1 * c..(c1 + 1) * c];
                        let c2 = cols[p + 2] as usize;
                        let b2 = &x[c2 * c..(c2 + 1) * c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j];
                        }
                    }
                    _ => {
                        let (a0, a1, a2, a3) =
                            (vals[p], vals[p + 1], vals[p + 2], vals[p + 3]);
                        let b0 = &x[col * c..(col + 1) * c];
                        let c1 = cols[p + 1] as usize;
                        let b1 = &x[c1 * c..(c1 + 1) * c];
                        let c2 = cols[p + 2] as usize;
                        let b2 = &x[c2 * c..(c2 + 1) * c];
                        let c3 = cols[p + 3] as usize;
                        let b3 = &x[c3 * c..(c3 + 1) * c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                        }
                    }
                }
                p = q;
            }
            // Remainder region: the dense kernel adds these one at a time.
            while p < end {
                let col = cols[p] as usize;
                let a0 = vals[p];
                let b0 = &x[col * c..(col + 1) * c];
                for j in 0..c {
                    c_row[j] += a0 * b0[j];
                }
                p += 1;
            }
        }
    };
}

/// Generates the portable pre-decoded CSR-row kernel (scalar and NEON
/// tiers). Each `groups` entry packs `(start << 3) | len` over the
/// caller's `cols`/`vals` slices — aligned-region groups carry 1–4
/// nonzeros sharing `⌊col/4⌋`, remainder nonzeros (`col ≥ 4⌊inner/4⌋`)
/// are singleton groups, exactly the decode [`spmm_row`] performs
/// inline. Pre-decoding lets the caller amortize the group scan across
/// batches; the accumulation per output element is identical.
macro_rules! spmm_row_grouped_portable_impl {
    ($(#[$attr:meta])*) => {
        /// One CSR output row from pre-decoded column groups; same
        /// per-element accumulation sequence as [`spmm_row`].
        $(#[$attr])*
        pub unsafe fn spmm_row_grouped(
            groups: &[u64],
            cols: &[u32],
            vals: &[f32],
            x: &[f32],
            c_row: &mut [f32],
            c: usize,
        ) {
            for &g in groups {
                let p = (g >> 3) as usize;
                match g & 7 {
                    1 => {
                        let a0 = vals[p];
                        let b0 = &x[cols[p] as usize * c..][..c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j];
                        }
                    }
                    2 => {
                        let (a0, a1) = (vals[p], vals[p + 1]);
                        let b0 = &x[cols[p] as usize * c..][..c];
                        let b1 = &x[cols[p + 1] as usize * c..][..c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j];
                        }
                    }
                    3 => {
                        let (a0, a1, a2) = (vals[p], vals[p + 1], vals[p + 2]);
                        let b0 = &x[cols[p] as usize * c..][..c];
                        let b1 = &x[cols[p + 1] as usize * c..][..c];
                        let b2 = &x[cols[p + 2] as usize * c..][..c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j];
                        }
                    }
                    _ => {
                        let (a0, a1, a2, a3) =
                            (vals[p], vals[p + 1], vals[p + 2], vals[p + 3]);
                        let b0 = &x[cols[p] as usize * c..][..c];
                        let b1 = &x[cols[p + 1] as usize * c..][..c];
                        let b2 = &x[cols[p + 2] as usize * c..][..c];
                        let b3 = &x[cols[p + 3] as usize * c..][..c];
                        for j in 0..c {
                            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                        }
                    }
                }
            }
        }
    };
}

/// Generates the hand-vectorized x86 pre-decoded CSR-row kernel for one
/// vector width. Unlike [`spmm_row_x86_impl`]'s per-group
/// load-accumulate-store, the output row is walked in register-width
/// chunks held across **all** groups: per chunk the accumulator is
/// loaded once, receives one add per group (each group's terms summed
/// left-to-right first), and is stored once. Per output element that is
/// the same add sequence as the per-group kernel — `((c₀+e₁)+e₂)+…` —
/// so results are bit-identical while the per-group output-row memory
/// traffic disappears.
#[cfg(target_arch = "x86_64")]
macro_rules! spmm_row_grouped_x86_impl {
    ($feat:literal, $w:expr, $loadu:ident, $set1:ident, $mul:ident, $add:ident, $storeu:ident) => {
        /// One CSR output row from pre-decoded column groups; grouping
        /// and accumulation contract as in the portable kernel.
        #[target_feature(enable = $feat)]
        pub unsafe fn spmm_row_grouped(
            groups: &[u64],
            cols: &[u32],
            vals: &[f32],
            x: &[f32],
            c_row: &mut [f32],
            c: usize,
        ) {
            let xp = x.as_ptr();
            let vp = vals.as_ptr();
            let ip = cols.as_ptr();
            let mut j = 0;
            while j + $w <= c {
                let crp = c_row.as_mut_ptr().add(j);
                let mut acc = $loadu(crp as *const f32);
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    let mut e = $mul(
                        $set1(*vp.add(p)),
                        $loadu(xp.add(*ip.add(p) as usize * c + j)),
                    );
                    for t in 1..len {
                        e = $add(
                            e,
                            $mul(
                                $set1(*vp.add(p + t)),
                                $loadu(xp.add(*ip.add(p + t) as usize * c + j)),
                            ),
                        );
                    }
                    acc = $add(acc, e);
                }
                $storeu(crp, acc);
                j += $w;
            }
            while j < c {
                let mut acc = *c_row.get_unchecked(j);
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    let mut e = *vp.add(p) * *xp.add(*ip.add(p) as usize * c + j);
                    for t in 1..len {
                        e += *vp.add(p + t) * *xp.add(*ip.add(p + t) as usize * c + j);
                    }
                    acc += e;
                }
                *c_row.get_unchecked_mut(j) = acc;
                j += 1;
            }
        }
    };
}

/// Generates the portable batched pre-decoded CSR-row kernel (scalar
/// and NEON tiers): per batch slab, each group's entries are accumulated
/// left-to-right with one `+=` per group — the exact
/// [`spmm_row_grouped`] sequence. The batch dimension only selects
/// independent output elements, so any batch walk is bit-identical.
macro_rules! spmm_row_grouped_batched_portable_impl {
    ($(#[$attr:meta])*) => {
        /// All batch slabs of one CSR output row from pre-decoded column
        /// groups. See the safety contract on the dispatch wrapper.
        #[allow(clippy::too_many_arguments)]
        $(#[$attr])*
        pub unsafe fn spmm_row_grouped_batched(
            groups: &[u64],
            cols: &[u32],
            vals: &[f32],
            x: *const f32,
            x_stride: usize,
            out: *mut f32,
            out_stride: usize,
            batch: usize,
            inner: usize,
            c: usize,
        ) {
            let _ = inner;
            for b in 0..batch {
                let xb = x.add(b * x_stride);
                let ob = out.add(b * out_stride);
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    for j in 0..c {
                        let mut e = *vals.get_unchecked(p)
                            * *xb.add(*cols.get_unchecked(p) as usize * c + j);
                        for t in 1..len {
                            e += *vals.get_unchecked(p + t)
                                * *xb.add(*cols.get_unchecked(p + t) as usize * c + j);
                        }
                        *ob.add(j) += e;
                    }
                }
            }
        }
    };
}

/// Generates the hand-vectorized x86 batched pre-decoded CSR-row kernel
/// for one vector width and batch-block size. The win over calling
/// [`spmm_row_grouped`] per batch: the group walk — including its
/// hard-to-predict per-group length dispatch — runs once per row block
/// while `BLK` batches' accumulators ride in registers (`BLK × 2`
/// vectors, j blocked two vector widths at a time), and each group's
/// value broadcasts are shared across the block. Per output element the
/// accumulation sequence is exactly [`spmm_row_grouped`]'s.
///
/// (A branch-free variant was tried: padding every group to a fixed
/// four-term schedule with hardware-masked adds. It lost — at 50 %
/// density the padding nearly doubles the flops and the extra group
/// bookkeeping outweighs the saved mispredicts, measuring ~45 % slower
/// than this branchy walk.)
#[cfg(target_arch = "x86_64")]
macro_rules! spmm_row_grouped_batched_x86_impl {
    ($feat:literal, $w:expr, $bb:expr, $loadu:ident, $set1:ident, $mul:ident, $add:ident, $storeu:ident) => {
        /// One batch block of `BLK` slabs; `x`/`out` point at the
        /// block's first slab.
        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        unsafe fn grouped_batched_blk<const BLK: usize>(
            groups: &[u64],
            cols: &[u32],
            vals: &[f32],
            x: *const f32,
            x_stride: usize,
            out: *mut f32,
            out_stride: usize,
            c: usize,
        ) {
            let vp = vals.as_ptr();
            let ip = cols.as_ptr();
            let mut j = 0;
            // Two vector widths of j per pass, all BLK batch
            // accumulators held in registers across the group walk.
            while j + 2 * $w <= c {
                let mut acc = [[$set1(0.0f32); 2]; BLK];
                for b in 0..BLK {
                    let op = out.add(b * out_stride + j);
                    acc[b][0] = $loadu(op as *const f32);
                    acc[b][1] = $loadu(op.add($w) as *const f32);
                }
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    let a0 = $set1(*vp.add(p));
                    let o0 = *ip.add(p) as usize * c + j;
                    let mut e = [[$set1(0.0f32); 2]; BLK];
                    for b in 0..BLK {
                        let xs = x.add(b * x_stride + o0);
                        e[b][0] = $mul(a0, $loadu(xs));
                        e[b][1] = $mul(a0, $loadu(xs.add($w)));
                    }
                    for t in 1..len {
                        let at = $set1(*vp.add(p + t));
                        let ot = *ip.add(p + t) as usize * c + j;
                        for b in 0..BLK {
                            let xs = x.add(b * x_stride + ot);
                            e[b][0] = $add(e[b][0], $mul(at, $loadu(xs)));
                            e[b][1] = $add(e[b][1], $mul(at, $loadu(xs.add($w))));
                        }
                    }
                    for b in 0..BLK {
                        acc[b][0] = $add(acc[b][0], e[b][0]);
                        acc[b][1] = $add(acc[b][1], e[b][1]);
                    }
                }
                for b in 0..BLK {
                    let op = out.add(b * out_stride + j);
                    $storeu(op, acc[b][0]);
                    $storeu(op.add($w), acc[b][1]);
                }
                j += 2 * $w;
            }
            // Single vector width of j.
            while j + $w <= c {
                let mut acc = [$set1(0.0f32); BLK];
                for b in 0..BLK {
                    acc[b] = $loadu(out.add(b * out_stride + j) as *const f32);
                }
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    let a0 = $set1(*vp.add(p));
                    let o0 = *ip.add(p) as usize * c + j;
                    let mut e = [$set1(0.0f32); BLK];
                    for b in 0..BLK {
                        e[b] = $mul(a0, $loadu(x.add(b * x_stride + o0)));
                    }
                    for t in 1..len {
                        let at = $set1(*vp.add(p + t));
                        let ot = *ip.add(p + t) as usize * c + j;
                        for b in 0..BLK {
                            e[b] = $add(e[b], $mul(at, $loadu(x.add(b * x_stride + ot))));
                        }
                    }
                    for b in 0..BLK {
                        acc[b] = $add(acc[b], e[b]);
                    }
                }
                for b in 0..BLK {
                    $storeu(out.add(b * out_stride + j), acc[b]);
                }
                j += $w;
            }
            // Scalar j tail.
            while j < c {
                let mut acc = [0.0f32; BLK];
                for b in 0..BLK {
                    acc[b] = *out.add(b * out_stride + j);
                }
                for &g in groups {
                    let p = (g >> 3) as usize;
                    let len = (g & 7) as usize;
                    let a0 = *vp.add(p);
                    let o0 = *ip.add(p) as usize * c + j;
                    let mut e = [0.0f32; BLK];
                    for b in 0..BLK {
                        e[b] = a0 * *x.add(b * x_stride + o0);
                    }
                    for t in 1..len {
                        let at = *vp.add(p + t);
                        let ot = *ip.add(p + t) as usize * c + j;
                        for b in 0..BLK {
                            e[b] += at * *x.add(b * x_stride + ot);
                        }
                    }
                    for b in 0..BLK {
                        acc[b] += e[b];
                    }
                }
                for b in 0..BLK {
                    *out.add(b * out_stride + j) = acc[b];
                }
                j += 1;
            }
        }

        /// All batch slabs of one CSR output row from pre-decoded
        /// column groups, processed in register-resident batch blocks.
        /// See the safety contract on the dispatch wrapper.
        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn spmm_row_grouped_batched(
            groups: &[u64],
            cols: &[u32],
            vals: &[f32],
            x: *const f32,
            x_stride: usize,
            out: *mut f32,
            out_stride: usize,
            batch: usize,
            inner: usize,
            c: usize,
        ) {
            let _ = inner;
            let mut b0 = 0;
            while b0 < batch {
                let xb = x.add(b0 * x_stride);
                let ob = out.add(b0 * out_stride);
                match ($bb as usize).min(batch - b0) {
                    1 => {
                        grouped_batched_blk::<1>(
                            groups, cols, vals, xb, x_stride, ob, out_stride, c,
                        );
                        b0 += 1;
                    }
                    2 | 3 => {
                        grouped_batched_blk::<2>(
                            groups, cols, vals, xb, x_stride, ob, out_stride, c,
                        );
                        b0 += 2;
                    }
                    _ => {
                        grouped_batched_blk::<4>(
                            groups, cols, vals, xb, x_stride, ob, out_stride, c,
                        );
                        b0 += 4;
                    }
                }
            }
        }
    };
}

/// `Σ_b Σ_k dy[b,i,k] · x[b,j,k]` with the feature axis unrolled in
/// 4-aligned groups (matching the dense GEMM accumulation order). The
/// single reference for both adjacency-gradient kernels: `dadj_dense`
/// calls it per entry, and every `dadj_row` tier reproduces it exactly.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn pair_dot(
    dy: &[f32],
    x: &[f32],
    i: usize,
    j: usize,
    batch: usize,
    n: usize,
    m: usize,
    c: usize,
) -> f32 {
    let mut acc = 0.0f32;
    for b in 0..batch {
        let g = &dy[(b * n + i) * c..(b * n + i + 1) * c];
        let v = &x[(b * m + j) * c..(b * m + j + 1) * c];
        let mut k = 0;
        while k + 4 <= c {
            acc += g[k] * v[k] + g[k + 1] * v[k + 1] + g[k + 2] * v[k + 2] + g[k + 3] * v[k + 3];
            k += 4;
        }
        while k < c {
            acc += g[k] * v[k];
            k += 1;
        }
    }
    acc
}

/// Generates the portable support-restricted adjacency-gradient row
/// kernel (scalar and NEON tiers): one [`pair_dot`] per stored column.
macro_rules! dadj_row_portable_impl {
    ($(#[$attr:meta])*) => {
        /// `out_row[j] = pair_dot(i, j)` for each stored column `j`.
        #[allow(clippy::too_many_arguments)]
        $(#[$attr])*
        pub unsafe fn dadj_row(
            dy: &[f32],
            x: &[f32],
            i: usize,
            cols: &[u32],
            out_row: &mut [f32],
            batch: usize,
            n: usize,
            m: usize,
            c: usize,
        ) {
            for &jc in cols {
                let j = jc as usize;
                out_row[j] = super::pair_dot(dy, x, i, j, batch, n, m, c);
            }
        }
    };
}

/// Generates the hand-vectorized x86 CSR-row kernel for one vector
/// width. The grouping driver is identical to the portable kernel; only
/// the per-group accumulation is intrinsics (the auto-vectorizer's
/// lowering of the same body under `avx2`/`avx512f` measures ~2× slower
/// than baseline, see [`spmm_row_portable_impl`]).
#[cfg(target_arch = "x86_64")]
macro_rules! spmm_row_x86_impl {
    ($feat:literal, $w:expr, $loadu:ident, $set1:ident, $mul:ident, $add:ident, $storeu:ident) => {
        /// Accumulates one column group (1–4 nonzeros) into `c_row`:
        /// vector `j` chunks evaluate the portable arm's exact
        /// expression — the group terms are summed left-to-right and
        /// added to `c_row[j]` with one add — then a scalar tail does
        /// the same per element.
        #[target_feature(enable = $feat)]
        #[inline]
        unsafe fn accum(vals: &[f32], rows: &[*const f32], c_row: &mut [f32], c: usize) {
            use core::arch::x86_64::*;
            let g = vals.len();
            let mut j = 0;
            while j + $w <= c {
                let mut e = $mul($set1(vals[0]), $loadu(rows[0].add(j)));
                for t in 1..g {
                    e = $add(e, $mul($set1(vals[t]), $loadu(rows[t].add(j))));
                }
                let cp = c_row.as_mut_ptr().add(j);
                $storeu(cp, $add($loadu(cp as *const f32), e));
                j += $w;
            }
            while j < c {
                let mut e = vals[0] * *rows[0].add(j);
                for t in 1..g {
                    e += vals[t] * *rows[t].add(j);
                }
                *c_row.get_unchecked_mut(j) += e;
                j += 1;
            }
        }

        /// Hand-vectorized CSR output row; grouping contract as in the
        /// portable kernel.
        #[target_feature(enable = $feat)]
        pub unsafe fn spmm_row(
            cols: &[u32],
            vals: &[f32],
            x: &[f32],
            c_row: &mut [f32],
            inner: usize,
            c: usize,
        ) {
            let k4 = inner & !3;
            let end = cols.len();
            let mut rows: [*const f32; 4] = [core::ptr::null(); 4];
            let mut p = 0;
            while p < end {
                let col = cols[p] as usize;
                if col >= k4 {
                    break;
                }
                let group_end = (col & !3) + 4;
                let mut q = p + 1;
                while q < end && (cols[q] as usize) < group_end {
                    q += 1;
                }
                for t in 0..(q - p) {
                    rows[t] = x.as_ptr().add(cols[p + t] as usize * c);
                }
                accum(&vals[p..q], &rows[..q - p], c_row, c);
                p = q;
            }
            // Remainder region: the dense kernel adds these one at a time.
            while p < end {
                rows[0] = x.as_ptr().add(cols[p] as usize * c);
                accum(&vals[p..p + 1], &rows[..1], c_row, c);
                p += 1;
            }
        }
    };
}

/// Hand-vectorized support-restricted adjacency-gradient row, shared by
/// the AVX2 and AVX-512 tiers (baseline SSE suffices: the win comes from
/// restructuring, not width). Four stored columns ride in the four lanes
/// of one `__m128`; a 4×4 transpose turns four contiguous `x` row chunks
/// into per-`k` column vectors, so each lane accumulates its pair dot
/// with [`pair_dot`]'s exact association: per 4-wide `k` group
/// `acc += ((g₀v₀ + g₁v₁) + g₂v₂) + g₃v₃`, remainder `k` one at a time,
/// batches outer-to-inner. Leftover columns (< 4) fall back to
/// [`pair_dot`] itself.
///
/// # Safety
/// Callers must uphold the [`dadj_row`] wrapper's shape contract:
/// `dy.len() == batch·n·c`, `x.len() == batch·m·c`, `out_row.len() == m`,
/// `i < n`, and every entry of `cols` below `m`. SSE2 is baseline on
/// x86_64, so no feature check is needed.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn dadj_row_x86(
    dy: &[f32],
    x: &[f32],
    i: usize,
    cols: &[u32],
    out_row: &mut [f32],
    batch: usize,
    n: usize,
    m: usize,
    c: usize,
) {
    use core::arch::x86_64::*;
    let mut p = 0;
    while p + 4 <= cols.len() {
        let j = [
            cols[p] as usize,
            cols[p + 1] as usize,
            cols[p + 2] as usize,
            cols[p + 3] as usize,
        ];
        let mut acc = _mm_setzero_ps();
        for b in 0..batch {
            let g = dy.as_ptr().add((b * n + i) * c);
            let xr = [
                x.as_ptr().add((b * m + j[0]) * c),
                x.as_ptr().add((b * m + j[1]) * c),
                x.as_ptr().add((b * m + j[2]) * c),
                x.as_ptr().add((b * m + j[3]) * c),
            ];
            let mut k = 0;
            while k + 4 <= c {
                let gv = _mm_loadu_ps(g.add(k));
                let r0 = _mm_loadu_ps(xr[0].add(k));
                let r1 = _mm_loadu_ps(xr[1].add(k));
                let r2 = _mm_loadu_ps(xr[2].add(k));
                let r3 = _mm_loadu_ps(xr[3].add(k));
                // 4×4 transpose: ck = [x_j0[k+t], x_j1[k+t], x_j2[k+t], x_j3[k+t]].
                let t0 = _mm_unpacklo_ps(r0, r1);
                let t1 = _mm_unpacklo_ps(r2, r3);
                let t2 = _mm_unpackhi_ps(r0, r1);
                let t3 = _mm_unpackhi_ps(r2, r3);
                let c0 = _mm_movelh_ps(t0, t1);
                let c1 = _mm_movehl_ps(t1, t0);
                let c2 = _mm_movelh_ps(t2, t3);
                let c3 = _mm_movehl_ps(t3, t2);
                let g0 = _mm_shuffle_ps(gv, gv, 0b00_00_00_00);
                let g1 = _mm_shuffle_ps(gv, gv, 0b01_01_01_01);
                let g2 = _mm_shuffle_ps(gv, gv, 0b10_10_10_10);
                let g3 = _mm_shuffle_ps(gv, gv, 0b11_11_11_11);
                let mut e = _mm_mul_ps(g0, c0);
                e = _mm_add_ps(e, _mm_mul_ps(g1, c1));
                e = _mm_add_ps(e, _mm_mul_ps(g2, c2));
                e = _mm_add_ps(e, _mm_mul_ps(g3, c3));
                acc = _mm_add_ps(acc, e);
                k += 4;
            }
            while k < c {
                let gk = _mm_set1_ps(*g.add(k));
                let xk = _mm_set_ps(*xr[3].add(k), *xr[2].add(k), *xr[1].add(k), *xr[0].add(k));
                acc = _mm_add_ps(acc, _mm_mul_ps(gk, xk));
                k += 1;
            }
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        for t in 0..4 {
            out_row[j[t]] = lanes[t];
        }
        p += 4;
    }
    while p < cols.len() {
        let j = cols[p] as usize;
        out_row[j] = pair_dot(dy, x, i, j, batch, n, m, c);
        p += 1;
    }
}

/// Generates the register-blocked plain-Rust GEMM body: 4×16 accumulator
/// tiles with the scalar association, auto-vectorized under the tier's
/// target feature. Used as the NEON tier's `matmul` (intrinsics-free so
/// it compiles — and is unit-tested — on every arch via the scalar
/// instantiation) .
macro_rules! blocked_matmul_impl {
    ($(#[$attr:meta])*) => {
        /// `C += A·B` with 4-row × 16-column register tiles; edges fall
        /// back to the scalar block kernel. Per element this performs the
        /// scalar kernel's exact operation sequence: the accumulator is
        /// initialized from `C`, each 4-wide k group is summed
        /// left-to-right and added with one add, remainder k single adds,
        /// one store at the end.
        #[allow(dead_code)]
        $(#[$attr])*
        pub unsafe fn matmul_blocked(
            a: &[f32],
            b: &[f32],
            c: &mut [f32],
            m: usize,
            k: usize,
            n: usize,
        ) {
            const MR: usize = 4;
            const NR: usize = 16;
            let mut i = 0;
            while i + MR <= m {
                let mut j = 0;
                while j + NR <= n {
                    let mut acc = [[0.0f32; NR]; MR];
                    for r in 0..MR {
                        acc[r].copy_from_slice(&c[(i + r) * n + j..(i + r) * n + j + NR]);
                    }
                    let mut kk = 0;
                    while kk + 4 <= k {
                        for r in 0..MR {
                            let a_row = &a[(i + r) * k..(i + r + 1) * k];
                            let (a0, a1, a2, a3) =
                                (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                            let b0 = &b[kk * n + j..kk * n + j + NR];
                            let b1 = &b[(kk + 1) * n + j..(kk + 1) * n + j + NR];
                            let b2 = &b[(kk + 2) * n + j..(kk + 2) * n + j + NR];
                            let b3 = &b[(kk + 3) * n + j..(kk + 3) * n + j + NR];
                            let ar = &mut acc[r];
                            for jj in 0..NR {
                                ar[jj] += a0 * b0[jj] + a1 * b1[jj] + a2 * b2[jj] + a3 * b3[jj];
                            }
                        }
                        kk += 4;
                    }
                    while kk < k {
                        for r in 0..MR {
                            let av = a[(i + r) * k + kk];
                            let b0 = &b[kk * n + j..kk * n + j + NR];
                            let ar = &mut acc[r];
                            for jj in 0..NR {
                                ar[jj] += av * b0[jj];
                            }
                        }
                        kk += 1;
                    }
                    for r in 0..MR {
                        c[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(&acc[r]);
                    }
                    j += NR;
                }
                if j < n {
                    super::scalar_block(a, b, c, k, n, i, i + MR, j, n);
                }
                i += MR;
            }
            if i < m {
                super::scalar_block(a, b, c, k, n, i, m, 0, n);
            }
        }
    };
}

/// The portable reference tier — the pre-SIMD loops, verbatim.
#[allow(clippy::missing_safety_doc)]
pub(crate) mod scalar {
    simd_impls!();
    spmm_row_portable_impl!();
    spmm_row_grouped_portable_impl!();
    spmm_row_grouped_batched_portable_impl!();
    dadj_row_portable_impl!();
    blocked_matmul_impl!();

    /// The original serial i-k-j kernel: `C += A·B` over the full range.
    pub unsafe fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        super::scalar_block(a, b, c, k, n, 0, m, 0, n);
    }
}

/// aarch64 NEON tier: the shared bodies compiled with 128-bit vectors.
#[cfg(target_arch = "aarch64")]
#[allow(clippy::missing_safety_doc)]
pub(crate) mod neon {
    simd_impls!(#[target_feature(enable = "neon")]);
    spmm_row_portable_impl!(#[target_feature(enable = "neon")]);
    spmm_row_grouped_portable_impl!(#[target_feature(enable = "neon")]);
    spmm_row_grouped_batched_portable_impl!(#[target_feature(enable = "neon")]);
    dadj_row_portable_impl!(#[target_feature(enable = "neon")]);
    blocked_matmul_impl!(#[target_feature(enable = "neon")]);
    pub use self::matmul_blocked as matmul;
}

/// x86_64 AVX2 tier: shared bodies under `avx2`, plus a hand-written
/// 4×16 intrinsics GEMM microkernel (two ymm accumulators per row).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::missing_safety_doc)]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    simd_impls!(#[target_feature(enable = "avx2")]);
    spmm_row_x86_impl!(
        "avx2",
        8,
        _mm256_loadu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps,
        _mm256_storeu_ps
    );
    spmm_row_grouped_x86_impl!(
        "avx2",
        8,
        _mm256_loadu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps,
        _mm256_storeu_ps
    );
    // Batch block of 2: 2 slabs × 2 ymm of j is 4 live accumulators,
    // leaving headroom in the 16 ymm registers for the group terms.
    spmm_row_grouped_batched_x86_impl!(
        "avx2",
        8,
        2,
        _mm256_loadu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps,
        _mm256_storeu_ps
    );
    pub use super::dadj_row_x86 as dadj_row;

    /// `C += A·B`, MR=4 rows × NR=16 columns of accumulators (2×__m256
    /// per row). Same association as scalar: per 4-wide k group,
    /// `g = ((a0·b0 + a1·b1) + a2·b2) + a3·b3; acc += g` lane-wise; no FMA.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        const MR: usize = 4;
        const NR: usize = 16;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for (r, ar) in acc.iter_mut().enumerate() {
                    ar[0] = _mm256_loadu_ps(cp.add((i + r) * n + j));
                    ar[1] = _mm256_loadu_ps(cp.add((i + r) * n + j + 8));
                }
                let mut kk = 0;
                while kk + 4 <= k {
                    let b00 = _mm256_loadu_ps(bp.add(kk * n + j));
                    let b01 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                    let b10 = _mm256_loadu_ps(bp.add((kk + 1) * n + j));
                    let b11 = _mm256_loadu_ps(bp.add((kk + 1) * n + j + 8));
                    let b20 = _mm256_loadu_ps(bp.add((kk + 2) * n + j));
                    let b21 = _mm256_loadu_ps(bp.add((kk + 2) * n + j + 8));
                    let b30 = _mm256_loadu_ps(bp.add((kk + 3) * n + j));
                    let b31 = _mm256_loadu_ps(bp.add((kk + 3) * n + j + 8));
                    for (r, ar) in acc.iter_mut().enumerate() {
                        let a0 = _mm256_set1_ps(*ap.add((i + r) * k + kk));
                        let a1 = _mm256_set1_ps(*ap.add((i + r) * k + kk + 1));
                        let a2 = _mm256_set1_ps(*ap.add((i + r) * k + kk + 2));
                        let a3 = _mm256_set1_ps(*ap.add((i + r) * k + kk + 3));
                        let mut g0 = _mm256_mul_ps(a0, b00);
                        g0 = _mm256_add_ps(g0, _mm256_mul_ps(a1, b10));
                        g0 = _mm256_add_ps(g0, _mm256_mul_ps(a2, b20));
                        g0 = _mm256_add_ps(g0, _mm256_mul_ps(a3, b30));
                        ar[0] = _mm256_add_ps(ar[0], g0);
                        let mut g1 = _mm256_mul_ps(a0, b01);
                        g1 = _mm256_add_ps(g1, _mm256_mul_ps(a1, b11));
                        g1 = _mm256_add_ps(g1, _mm256_mul_ps(a2, b21));
                        g1 = _mm256_add_ps(g1, _mm256_mul_ps(a3, b31));
                        ar[1] = _mm256_add_ps(ar[1], g1);
                    }
                    kk += 4;
                }
                while kk < k {
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j));
                    let b1 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                    for (r, ar) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add((i + r) * k + kk));
                        ar[0] = _mm256_add_ps(ar[0], _mm256_mul_ps(av, b0));
                        ar[1] = _mm256_add_ps(ar[1], _mm256_mul_ps(av, b1));
                    }
                    kk += 1;
                }
                for (r, ar) in acc.iter().enumerate() {
                    _mm256_storeu_ps(cp.add((i + r) * n + j), ar[0]);
                    _mm256_storeu_ps(cp.add((i + r) * n + j + 8), ar[1]);
                }
                j += NR;
            }
            if j < n {
                super::scalar_block(a, b, c, k, n, i, i + MR, j, n);
            }
            i += MR;
        }
        if i < m {
            super::scalar_block(a, b, c, k, n, i, m, 0, n);
        }
    }
}

/// x86_64 AVX-512 tier: shared bodies under `avx512f`, plus the 8×32
/// intrinsics GEMM microkernel (two zmm accumulators per row).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::missing_safety_doc)]
pub(crate) mod avx512 {
    use std::arch::x86_64::*;

    simd_impls!(#[target_feature(enable = "avx512f")]);
    spmm_row_x86_impl!(
        "avx512f",
        16,
        _mm512_loadu_ps,
        _mm512_set1_ps,
        _mm512_mul_ps,
        _mm512_add_ps,
        _mm512_storeu_ps
    );
    spmm_row_grouped_x86_impl!(
        "avx512f",
        16,
        _mm512_loadu_ps,
        _mm512_set1_ps,
        _mm512_mul_ps,
        _mm512_add_ps,
        _mm512_storeu_ps
    );
    // Batch block of 4: 4 slabs × 2 zmm of j is 8 live accumulators
    // plus 8 group terms — comfortable in the 32 zmm registers.
    spmm_row_grouped_batched_x86_impl!(
        "avx512f",
        16,
        4,
        _mm512_loadu_ps,
        _mm512_set1_ps,
        _mm512_mul_ps,
        _mm512_add_ps,
        _mm512_storeu_ps
    );
    pub use super::dadj_row_x86 as dadj_row;

    /// `C += A·B`, MR=8 rows × NR=32 columns of accumulators (2×__m512
    /// per row). Same association as scalar; no FMA.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        const MR: usize = 8;
        const NR: usize = 32;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                let mut acc = [[_mm512_setzero_ps(); 2]; MR];
                for (r, ar) in acc.iter_mut().enumerate() {
                    ar[0] = _mm512_loadu_ps(cp.add((i + r) * n + j));
                    ar[1] = _mm512_loadu_ps(cp.add((i + r) * n + j + 16));
                }
                let mut kk = 0;
                while kk + 4 <= k {
                    let b00 = _mm512_loadu_ps(bp.add(kk * n + j));
                    let b01 = _mm512_loadu_ps(bp.add(kk * n + j + 16));
                    let b10 = _mm512_loadu_ps(bp.add((kk + 1) * n + j));
                    let b11 = _mm512_loadu_ps(bp.add((kk + 1) * n + j + 16));
                    let b20 = _mm512_loadu_ps(bp.add((kk + 2) * n + j));
                    let b21 = _mm512_loadu_ps(bp.add((kk + 2) * n + j + 16));
                    let b30 = _mm512_loadu_ps(bp.add((kk + 3) * n + j));
                    let b31 = _mm512_loadu_ps(bp.add((kk + 3) * n + j + 16));
                    for (r, ar) in acc.iter_mut().enumerate() {
                        let a0 = _mm512_set1_ps(*ap.add((i + r) * k + kk));
                        let a1 = _mm512_set1_ps(*ap.add((i + r) * k + kk + 1));
                        let a2 = _mm512_set1_ps(*ap.add((i + r) * k + kk + 2));
                        let a3 = _mm512_set1_ps(*ap.add((i + r) * k + kk + 3));
                        let mut g0 = _mm512_mul_ps(a0, b00);
                        g0 = _mm512_add_ps(g0, _mm512_mul_ps(a1, b10));
                        g0 = _mm512_add_ps(g0, _mm512_mul_ps(a2, b20));
                        g0 = _mm512_add_ps(g0, _mm512_mul_ps(a3, b30));
                        ar[0] = _mm512_add_ps(ar[0], g0);
                        let mut g1 = _mm512_mul_ps(a0, b01);
                        g1 = _mm512_add_ps(g1, _mm512_mul_ps(a1, b11));
                        g1 = _mm512_add_ps(g1, _mm512_mul_ps(a2, b21));
                        g1 = _mm512_add_ps(g1, _mm512_mul_ps(a3, b31));
                        ar[1] = _mm512_add_ps(ar[1], g1);
                    }
                    kk += 4;
                }
                while kk < k {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j));
                    let b1 = _mm512_loadu_ps(bp.add(kk * n + j + 16));
                    for (r, ar) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i + r) * k + kk));
                        ar[0] = _mm512_add_ps(ar[0], _mm512_mul_ps(av, b0));
                        ar[1] = _mm512_add_ps(ar[1], _mm512_mul_ps(av, b1));
                    }
                    kk += 1;
                }
                for (r, ar) in acc.iter().enumerate() {
                    _mm512_storeu_ps(cp.add((i + r) * n + j), ar[0]);
                    _mm512_storeu_ps(cp.add((i + r) * n + j + 16), ar[1]);
                }
                j += NR;
            }
            if j < n {
                super::scalar_block(a, b, c, k, n, i, i + MR, j, n);
            }
            i += MR;
        }
        if i < m {
            super::scalar_block(a, b, c, k, n, i, m, 0, n);
        }
    }
}

/// Routes a call to the active tier's variant. Safety: a non-scalar arm
/// is only reachable when the cached probe confirmed the feature (the
/// dispatch clamp in [`simd_tier`]), which is exactly the contract the
/// `#[target_feature]` functions require.
macro_rules! tier_dispatch {
    ($fn:ident ( $($arg:expr),* )) => {{
        match simd_tier() {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => unsafe { avx512::$fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { avx2::$fn($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => unsafe { neon::$fn($($arg),*) },
            _ => unsafe { scalar::$fn($($arg),*) },
        }
    }};
}

/// `C[m×n] += A[m×k] · B[k×n]` through the active tier's blocked kernel.
/// Callers pass a zeroed (or partial-result) `c`; all tiers are
/// bit-identical to the scalar serial kernel.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    tier_dispatch!(matmul(a, b, c, m, k, n))
}

/// Elementwise `out = a ⊕ b` over equal-length slices.
pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    tier_dispatch!(binary(op, a, b, out))
}

/// Elementwise `out = src ⊕ s` (or `s ⊕ src` when `scalar_lhs`).
pub fn binary_scalar(op: BinOp, src: &[f32], s: f32, out: &mut [f32], scalar_lhs: bool) {
    debug_assert_eq!(src.len(), out.len());
    tier_dispatch!(binary_scalar(op, src, s, out, scalar_lhs))
}

/// Elementwise unary `out = op(src)`.
pub fn unary(op: UnOp, src: &[f32], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    tier_dispatch!(unary(op, src, out))
}

/// `dst += alpha · src`.
pub fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    tier_dispatch!(axpy(alpha, src, dst))
}

/// `dst += src` (the axis-sum accumulation step; fn-pointer compatible
/// with `reduce_axis`'s fast path).
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(src.len(), dst.len());
    tier_dispatch!(add_assign(dst, src))
}

/// `dst *= s`.
pub fn scale_assign(dst: &mut [f32], s: f32) {
    tier_dispatch!(scale_assign(dst, s))
}

/// Entmax-1.5 output map into an f64 buffer.
pub fn entmax15_map(z: &[f32], shift: f64, tau: f64, p: &mut [f64]) {
    debug_assert_eq!(z.len(), p.len());
    tier_dispatch!(entmax15_map(z, shift, tau, p))
}

/// `p /= total` over an f64 row.
pub fn div_assign_f64(p: &mut [f64], total: f64) {
    tier_dispatch!(div_assign_f64(p, total))
}

/// Entmax backward output map `out_i = (s_i · (g_i − mean)) as f32`.
pub fn entmax_backward_out(s: &[f64], grad_p: &[f32], mean: f64, out: &mut [f32]) {
    debug_assert_eq!(s.len(), out.len());
    debug_assert_eq!(grad_p.len(), out.len());
    tier_dispatch!(entmax_backward_out(s, grad_p, mean, out))
}

/// One CSR output row through the active tier (see the macro body for
/// the grouping contract).
pub fn spmm_row(cols: &[u32], vals: &[f32], x: &[f32], c_row: &mut [f32], inner: usize, c: usize) {
    debug_assert_eq!(cols.len(), vals.len());
    tier_dispatch!(spmm_row(cols, vals, x, c_row, inner, c))
}

/// One CSR output row from pre-decoded column groups through the active
/// tier. Each `groups` entry packs `(start << 3) | len` (`len` 1–4)
/// over `cols`/`vals`; encode aligned-region runs sharing `⌊col/4⌋` as
/// one group and remainder nonzeros as singletons — [`decode_groups`]
/// produces exactly this — and the result is bit-identical to
/// [`spmm_row`] on the same nonzeros. Callers amortize the decode
/// across batches; the x86 tiers additionally keep the output chunk in
/// a register across all groups.
pub fn spmm_row_grouped(
    groups: &[u64],
    cols: &[u32],
    vals: &[f32],
    x: &[f32],
    c_row: &mut [f32],
    c: usize,
) {
    debug_assert_eq!(cols.len(), vals.len());
    debug_assert!(groups
        .iter()
        .all(|&g| ((g >> 3) as usize) + ((g & 7) as usize).max(1) <= cols.len() && (g & 7) >= 1));
    tier_dispatch!(spmm_row_grouped(groups, cols, vals, x, c_row, c))
}

/// All batch slabs of one CSR output row from pre-decoded column groups
/// through the active tier: slab `b` of the output accumulates
/// `Σ_groups vals · x[b]` exactly as [`spmm_row_grouped`] would, but the
/// group walk and value broadcasts are amortized across batch blocks on
/// the x86 tiers (the batch axis only selects independent output
/// elements, so blocking cannot change any element's add sequence).
///
/// # Safety
/// `x` must be valid for reads at `b * x_stride + col * c + j` and `out`
/// valid for reads/writes at `b * out_stride + j` for all `b < batch`,
/// referenced `col`, and `j < c`; `out` must not alias `x`, `cols`,
/// `vals`, or `groups`. Callers running concurrently must own disjoint
/// `out` rows.
#[allow(clippy::too_many_arguments)]
pub unsafe fn spmm_row_grouped_batched(
    groups: &[u64],
    cols: &[u32],
    vals: &[f32],
    x: *const f32,
    x_stride: usize,
    out: *mut f32,
    out_stride: usize,
    batch: usize,
    inner: usize,
    c: usize,
) {
    debug_assert_eq!(cols.len(), vals.len());
    tier_dispatch!(spmm_row_grouped_batched(
        groups, cols, vals, x, x_stride, out, out_stride, batch, inner, c
    ))
}

/// Decodes the column groups of `cols[p0..p1]` for a contraction axis of
/// `inner` rows into `out` (appending): runs of nonzeros sharing
/// `⌊col/4⌋` within the 4-aligned region `[0, 4⌊inner/4⌋)` become one
/// packed `(start << 3) | len` entry, remainder columns one singleton
/// entry each — the exact grouping [`spmm_row`] decodes inline, in the
/// format [`spmm_row_grouped`] consumes. `start` is relative to the
/// same slice base as `cols` itself.
pub fn decode_groups(cols: &[u32], p0: usize, p1: usize, inner: usize, out: &mut Vec<u64>) {
    let k4 = inner & !3;
    let mut p = p0;
    while p < p1 {
        let col = cols[p] as usize;
        let len = if col < k4 {
            let group_end = (col & !3) + 4;
            let mut q = p + 1;
            while q < p1 && (cols[q] as usize) < group_end {
                q += 1;
            }
            q - p
        } else {
            1
        };
        out.push(((p as u64) << 3) | len as u64);
        p += len;
    }
}

/// Support-restricted adjacency-gradient row through the active tier:
/// `out_row[j] = Σ_b Σ_k dy[b,i,k] · x[b,j,k]` for each stored column
/// `j` in `cols`, with [`pair_dot`]'s exact association on every tier.
/// Columns not in `cols` are left untouched.
#[allow(clippy::too_many_arguments)]
pub fn dadj_row(
    dy: &[f32],
    x: &[f32],
    i: usize,
    cols: &[u32],
    out_row: &mut [f32],
    batch: usize,
    n: usize,
    m: usize,
    c: usize,
) {
    debug_assert_eq!(dy.len(), batch * n * c);
    debug_assert_eq!(x.len(), batch * m * c);
    debug_assert_eq!(out_row.len(), m);
    debug_assert!(i < n || batch == 0);
    tier_dispatch!(dadj_row(dy, x, i, cols, out_row, batch, n, m, c))
}

/// Fused GRU reset-gate apply `out = σ(pre) · h`.
pub fn sigmoid_mul(pre: &[f32], h: &[f32], out: &mut [f32]) {
    debug_assert_eq!(pre.len(), out.len());
    debug_assert_eq!(h.len(), out.len());
    tier_dispatch!(sigmoid_mul(pre, h, out))
}

/// Fused GRU output combine `out = σ(zp)·h + (1−σ(zp))·tanh(hc)`.
pub fn gru_combine(zp: &[f32], hc: &[f32], h: &[f32], out: &mut [f32]) {
    debug_assert_eq!(zp.len(), out.len());
    debug_assert_eq!(hc.len(), out.len());
    debug_assert_eq!(h.len(), out.len());
    tier_dispatch!(gru_combine(zp, hc, h, out))
}

/// Fused diffusion epilogue `out[r] = (ax[r] + x[r]) · deg[r mod n]`
/// over `out.len() / c` rows of `c` features.
pub fn diffuse_epilogue(ax: &[f32], x: &[f32], deg: &[f32], out: &mut [f32], c: usize) {
    debug_assert_eq!(ax.len(), out.len());
    debug_assert_eq!(x.len(), out.len());
    debug_assert!(c > 0 && out.len().is_multiple_of(c));
    debug_assert!(!deg.is_empty() && (out.len() / c).is_multiple_of(deg.len()));
    tier_dispatch!(diffuse_epilogue(ax, x, deg, out, c))
}

/// In-place broadcast bias add `y[r,j] += bias[j]`.
pub fn bias_add(y: &mut [f32], bias: &[f32]) {
    debug_assert!(!bias.is_empty() && y.len().is_multiple_of(bias.len()));
    tier_dispatch!(bias_add(y, bias))
}

/// Fused affine `out = (src + a) · m` (normalize order).
pub fn add_then_scale(src: &[f32], a: f32, m: f32, out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    tier_dispatch!(add_then_scale(src, a, m, out))
}

/// Fused affine `out = src · m + a` (inverse-transform order).
pub fn scale_then_add(src: &[f32], m: f32, a: f32, out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    tier_dispatch!(scale_then_add(src, m, a, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{set_simd_mode, SimdMode};
    use crate::rng::Rng64;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng64::new(seed);
        (0..len).map(|_| rng.next_f32() * 4.0 - 2.0).collect()
    }

    /// Runs `f` under every mode the hardware can express and asserts the
    /// outputs are bit-identical to the forced-scalar run.
    fn assert_all_tiers_match(mut f: impl FnMut() -> Vec<f32>, what: &str) {
        let prev = set_simd_mode(SimdMode::Scalar);
        let reference = f();
        for mode in [SimdMode::Neon, SimdMode::Avx2, SimdMode::Avx512, SimdMode::Auto] {
            set_simd_mode(mode);
            let got = f();
            assert_eq!(reference.len(), got.len(), "{what}: {mode:?} length");
            for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(
                    r.to_bits(),
                    g.to_bits(),
                    "{what}: {mode:?} diverged from scalar at {i} ({r} vs {g})"
                );
            }
        }
        set_simd_mode(prev);
    }

    #[test]
    fn matmul_tiers_bit_identical_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 17), (17, 63, 65), (65, 65, 63), (8, 4, 32)] {
            let a = rand_vec(m * k, 1 + m as u64);
            let b = rand_vec(k * n, 2 + n as u64);
            assert_all_tiers_match(
                || {
                    let mut c = vec![0.0f32; m * n];
                    matmul(&a, &b, &mut c, m, k, n);
                    c
                },
                &format!("matmul {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn blocked_matmul_matches_scalar_reference() {
        // The NEON tier's kernel body, instantiated without a target
        // feature, must agree with the original serial kernel everywhere.
        for &(m, k, n) in &[(1, 3, 5), (4, 4, 16), (7, 9, 33), (65, 17, 63)] {
            let a = rand_vec(m * k, 7 + k as u64);
            let b = rand_vec(k * n, 8 + m as u64);
            let mut c0 = vec![0.0f32; m * n];
            let mut c1 = vec![0.0f32; m * n];
            unsafe {
                scalar::matmul(&a, &b, &mut c0, m, k, n);
                scalar::matmul_blocked(&a, &b, &mut c1, m, k, n);
            }
            for (x, y) in c0.iter().zip(&c1) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn elementwise_tiers_bit_identical() {
        let a = rand_vec(1031, 3);
        let b = rand_vec(1031, 4);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
            assert_all_tiers_match(
                || {
                    let mut out = vec![0.0f32; a.len()];
                    binary(op, &a, &b, &mut out);
                    out
                },
                &format!("binary {op:?}"),
            );
            for lhs in [false, true] {
                assert_all_tiers_match(
                    || {
                        let mut out = vec![0.0f32; a.len()];
                        binary_scalar(op, &a, 0.37, &mut out, lhs);
                        out
                    },
                    &format!("binary_scalar {op:?} lhs={lhs}"),
                );
            }
        }
        for op in [UnOp::Neg, UnOp::Abs, UnOp::Sqrt, UnOp::Square] {
            assert_all_tiers_match(
                || {
                    let mut out = vec![0.0f32; a.len()];
                    unary(op, &a, &mut out);
                    out
                },
                &format!("unary {op:?}"),
            );
        }
        assert_all_tiers_match(
            || {
                let mut d = a.clone();
                axpy(0.731, &b, &mut d);
                d
            },
            "axpy",
        );
        assert_all_tiers_match(
            || {
                let mut d = a.clone();
                add_assign(&mut d, &b);
                d
            },
            "add_assign",
        );
        assert_all_tiers_match(
            || {
                let mut d = a.clone();
                scale_assign(&mut d, 1.0 / 3.0);
                d
            },
            "scale_assign",
        );
    }

    #[test]
    fn entmax_helpers_tiers_bit_identical() {
        let z = rand_vec(517, 9);
        assert_all_tiers_match(
            || {
                let mut p = vec![0.0f64; z.len()];
                entmax15_map(&z, 0.173, -0.062, &mut p);
                let total: f64 = p.iter().sum();
                div_assign_f64(&mut p, total);
                let mut out = vec![0.0f32; z.len()];
                entmax_backward_out(&p, &z, 0.021, &mut out);
                out
            },
            "entmax helpers",
        );
    }

    #[test]
    fn fused_chain_kernels_match_unfused_sequence_per_tier() {
        use crate::Tensor;
        // Odd length exercises every vector-width edge; values span both
        // sigmoid branches.
        let len = 1031usize;
        let pre = rand_vec(len, 31);
        let hc = rand_vec(len, 32);
        let h = rand_vec(len, 33);
        let t = |v: &[f32]| Tensor::from_vec(v.to_vec(), [len]);
        for mode in [
            SimdMode::Scalar,
            SimdMode::Neon,
            SimdMode::Avx2,
            SimdMode::Avx512,
            SimdMode::Auto,
        ] {
            let prev = set_simd_mode(mode);
            // σ(pre)·h vs the sigmoid → mul pair.
            let mut fused = vec![0.0f32; len];
            sigmoid_mul(&pre, &h, &mut fused);
            let unfused = t(&pre).sigmoid().mul(&t(&h));
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "sigmoid_mul {mode:?} [{i}]");
            }
            // z·h + (1−z)·tanh(hc) vs the full unfused gate chain.
            let mut fused = vec![0.0f32; len];
            gru_combine(&pre, &hc, &h, &mut fused);
            let z = t(&pre).sigmoid();
            let ht = t(&hc).tanh();
            let unfused = z.mul(&t(&h)).add(&z.neg().add_scalar(1.0).mul(&ht));
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "gru_combine {mode:?} [{i}]");
            }
            // (ax + x) · deg vs add → broadcast-mul (batch=2, n=7, c=?).
            let (b, n) = (2usize, 7usize);
            let c = len / (b * n);
            let rows = b * n * c;
            let deg = rand_vec(n, 34);
            let mut fused = vec![0.0f32; rows];
            diffuse_epilogue(&pre[..rows], &h[..rows], &deg, &mut fused, c);
            let ax_t = Tensor::from_vec(pre[..rows].to_vec(), [b, n, c]);
            let x_t = Tensor::from_vec(h[..rows].to_vec(), [b, n, c]);
            let deg_t = Tensor::from_vec(deg.clone(), [1, n, 1]);
            let unfused = ax_t.add(&x_t).mul(&deg_t);
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "diffuse_epilogue {mode:?} [{i}]");
            }
            // In-place bias add vs broadcast add (odd column count).
            let nb = 13usize;
            let bias = rand_vec(nb, 35);
            let elems = (len / nb) * nb;
            let mut fused = pre[..elems].to_vec();
            bias_add(&mut fused, &bias);
            let y_t = Tensor::from_vec(pre[..elems].to_vec(), [elems / nb, nb]);
            let b_t = Tensor::from_vec(bias.clone(), [1, nb]);
            let unfused = y_t.add(&b_t);
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "bias_add {mode:?} [{i}]");
            }
            // Affine pairs vs add_scalar/scale sequences.
            let mut fused = vec![0.0f32; len];
            add_then_scale(&pre, -0.37, 1.73, &mut fused);
            let unfused = t(&pre).add_scalar(-0.37).scale(1.73);
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "add_then_scale {mode:?} [{i}]");
            }
            let mut fused = vec![0.0f32; len];
            scale_then_add(&pre, 1.73, -0.37, &mut fused);
            let unfused = t(&pre).scale(1.73).add_scalar(-0.37);
            for (i, (f, u)) in fused.iter().zip(unfused.as_slice()).enumerate() {
                assert_eq!(f.to_bits(), u.to_bits(), "scale_then_add {mode:?} [{i}]");
            }
            set_simd_mode(prev);
        }
        // Cross-tier identity of the fused kernels themselves.
        assert_all_tiers_match(
            || {
                let mut out = vec![0.0f32; len];
                gru_combine(&pre, &hc, &h, &mut out);
                out
            },
            "gru_combine tiers",
        );
        assert_all_tiers_match(
            || {
                let mut out = vec![0.0f32; len];
                sigmoid_mul(&pre, &h, &mut out);
                out
            },
            "sigmoid_mul tiers",
        );
    }

    #[test]
    fn spmm_row_tiers_bit_identical() {
        // A row with group sizes 1..4, a straddle of the k4 boundary and
        // remainder columns (inner=17 -> k4=16).
        let inner = 17;
        let c = 33;
        let cols: Vec<u32> = vec![0, 1, 2, 3, 5, 7, 8, 11, 12, 13, 14, 16];
        let vals = rand_vec(cols.len(), 5);
        let x = rand_vec(inner * c, 6);
        assert_all_tiers_match(
            || {
                let mut row = vec![0.0f32; c];
                spmm_row(&cols, &vals, &x, &mut row, inner, c);
                row
            },
            "spmm_row",
        );
    }

    #[test]
    fn spmm_row_grouped_tiers_bit_identical() {
        // Same nonzero pattern family as `spmm_row_tiers_bit_identical`:
        // group sizes 1..4, a k4-boundary straddle, remainder singles.
        let inner = 17;
        let cols: Vec<u32> = vec![0, 1, 2, 3, 5, 7, 8, 11, 12, 13, 14, 16];
        let vals = rand_vec(cols.len(), 15);
        let mut groups = Vec::new();
        decode_groups(&cols, 0, cols.len(), inner, &mut groups);
        // c spans sub-lane, odd, and multi-register widths.
        for &c in &[1usize, 5, 33, 64] {
            let x = rand_vec(inner * c, 16 + c as u64);
            assert_all_tiers_match(
                || {
                    // The grouped walk must replay spmm_row's exact adds.
                    let mut want = vec![0.0f32; c];
                    spmm_row(&cols, &vals, &x, &mut want, inner, c);
                    let mut row = vec![0.0f32; c];
                    spmm_row_grouped(&groups, &cols, &vals, &x, &mut row, c);
                    for (r, w) in row.iter().zip(&want) {
                        assert_eq!(r.to_bits(), w.to_bits(), "grouped vs inline c={c}");
                    }
                    row
                },
                &format!("spmm_row_grouped c={c}"),
            );
        }
    }

    #[test]
    fn spmm_row_grouped_batched_tiers_bit_identical() {
        // Batch counts cross every batch-block width (1 / 2 / 4 / tail).
        let inner = 21;
        let cols: Vec<u32> = (0..inner as u32).filter(|j| j % 5 != 2).collect();
        let vals = rand_vec(cols.len(), 17);
        let mut groups = Vec::new();
        decode_groups(&cols, 0, cols.len(), inner, &mut groups);
        for &batch in &[1usize, 2, 3, 4, 7] {
            for &c in &[3usize, 32] {
                let x = rand_vec(batch * inner * c, 18 + (batch * c) as u64);
                assert_all_tiers_match(
                    || {
                        let mut out = vec![0.0f32; batch * c];
                        unsafe {
                            spmm_row_grouped_batched(
                                &groups,
                                &cols,
                                &vals,
                                x.as_ptr(),
                                inner * c,
                                out.as_mut_ptr(),
                                c,
                                batch,
                                inner,
                                c,
                            );
                        }
                        // Blocking over the batch axis must not change any
                        // slab's add sequence vs the single-slab kernel.
                        for b in 0..batch {
                            let mut want = vec![0.0f32; c];
                            spmm_row_grouped(
                                &groups,
                                &cols,
                                &vals,
                                &x[b * inner * c..(b + 1) * inner * c],
                                &mut want,
                                c,
                            );
                            for (j, w) in want.iter().enumerate() {
                                assert_eq!(
                                    out[b * c + j].to_bits(),
                                    w.to_bits(),
                                    "batched vs single b={b} j={j}"
                                );
                            }
                        }
                        out
                    },
                    &format!("spmm_row_grouped_batched batch={batch} c={c}"),
                );
            }
        }
    }

    #[test]
    fn decode_groups_packing_invariants() {
        // inner=14: aligned region [0,12), remainder columns 12..14.
        let cols: Vec<u32> = vec![0, 1, 2, 3, 4, 6, 7, 9, 12, 13];
        let mut groups = Vec::new();
        decode_groups(&cols, 0, cols.len(), 14, &mut groups);
        let decoded: Vec<(usize, usize)> = groups
            .iter()
            .map(|&g| ((g >> 3) as usize, (g & 7) as usize))
            .collect();
        // Runs sharing ⌊col/4⌋ fuse (max 4 per group); remainder columns
        // (≥ 12) always come out as singletons.
        assert_eq!(
            decoded,
            vec![(0, 4), (4, 3), (7, 1), (8, 1), (9, 1)],
            "groups must cover {cols:?} in order"
        );
        // Groups partition the nonzeros exactly.
        let covered: usize = decoded.iter().map(|&(_, len)| len).sum();
        assert_eq!(covered, cols.len());
        // Sub-range decode is relative to the same slice base.
        let mut tail = Vec::new();
        decode_groups(&cols, 7, cols.len(), 14, &mut tail);
        assert_eq!(tail, groups[2..].to_vec());
    }

    #[test]
    fn dadj_row_tiers_bit_identical() {
        // Shapes straddle both the 4-column lane grouping and the 4-wide
        // k chunks (c=5/7 leave k singles; c=32 is all full chunks).
        for &(batch, n, m, c) in &[(1, 3, 7, 5), (3, 5, 19, 7), (2, 4, 33, 32)] {
            let dy = rand_vec(batch * n * c, 11 + c as u64);
            let x = rand_vec(batch * m * c, 12 + m as u64);
            let cols: Vec<u32> = (0..m as u32).filter(|j| j % 3 != 1).collect();
            for i in [0usize, n - 1] {
                assert_all_tiers_match(
                    || {
                        let mut row = vec![0.0f32; m];
                        dadj_row(&dy, &x, i, &cols, &mut row, batch, n, m, c);
                        row
                    },
                    &format!("dadj_row b={batch} n={n} m={m} c={c} i={i}"),
                );
            }
        }
        // Support restriction: stored columns get exactly `pair_dot`,
        // everything else keeps its prior value on every tier.
        let (batch, n, m, c) = (2usize, 3usize, 9usize, 6usize);
        let dy = rand_vec(batch * n * c, 21);
        let x = rand_vec(batch * m * c, 22);
        let cols = [1u32, 4, 6, 7];
        for mode in [SimdMode::Scalar, SimdMode::Auto] {
            let prev = set_simd_mode(mode);
            let mut row = vec![9.0f32; m];
            dadj_row(&dy, &x, 1, &cols, &mut row, batch, n, m, c);
            set_simd_mode(prev);
            for (j, v) in row.iter().enumerate() {
                if cols.contains(&(j as u32)) {
                    let want = pair_dot(&dy, &x, 1, j, batch, n, m, c);
                    assert_eq!(v.to_bits(), want.to_bits(), "{mode:?} column {j}");
                } else {
                    assert_eq!(*v, 9.0, "{mode:?} wrote column {j} outside the support");
                }
            }
        }
    }
}
