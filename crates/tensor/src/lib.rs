//! # sagdfn-tensor
//!
//! Dense `f32` tensor math substrate for the SAGDFN reproduction.
//!
//! This crate stands in for the tensor runtime a deep-learning framework
//! (PyTorch) would normally provide. It deliberately keeps a small, strict
//! design that favors predictability over generality:
//!
//! * all tensors are **row-major and contiguous** — `transpose`,
//!   `permute` and friends materialize a new buffer instead of creating
//!   strided views, which keeps every kernel a straight loop over memory;
//! * the element type is fixed to `f32` (what the paper's models train in);
//! * shape errors are programming errors and **panic** with a precise
//!   message — forecasting model code should never construct mismatched
//!   shapes at runtime;
//! * every allocation is routed through [`alloc`] so the
//!   `sagdfn-memsim` crate can audit live/peak bytes of a real run.
//!
//! The API surface is what the autodiff tape (`sagdfn-autodiff`) and the
//! model crates need: broadcast elementwise arithmetic, blocked matrix
//! multiplication, reductions, row gather/scatter, concatenation, stacking
//! and random initialization.
//!
//! Hot kernels run on the process-wide persistent worker [`pool`]
//! (`SAGDFN_THREADS` controls its size) with a determinism guarantee:
//! parallel results are bit-identical to the serial paths.

pub mod alloc;
pub mod dispatch;
pub mod index;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod simd;
pub mod sparse;
pub mod tensor;

pub use alloc::{
    churn_bytes, live_bytes, peak_bytes, pool_hit_bytes, pool_retained_bytes, recycling_enabled,
    requested_bytes, reset_peak, set_recycling, trim_pool,
};
pub use dispatch::{
    cpu_features, set_simd_mode, simd_active, simd_mode, simd_tier, CpuFeatures, SimdMode, SimdTier,
};
pub use rng::Rng64;
pub use shape::Shape;
pub use sparse::{
    set_sparse_mode, should_use_sparse, sparse_mode, spmm_dispatch, Csr, DiffusePlan, ShardedCsr,
    SparseMode, SpmmDispatch,
};
pub use tensor::Tensor;
