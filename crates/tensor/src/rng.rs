//! A small, fast, seedable PRNG (xoshiro256**).
//!
//! The reproduction must be deterministic given a seed across platforms, so
//! we pin the generator algorithm here instead of relying on `rand`'s
//! default (which is allowed to change between versions). `rand` is still
//! used elsewhere for its distributions; this type is the workhorse for
//! weight init and data synthesis.

/// xoshiro256** generator. Deterministic, `Copy`-cheap, no dependencies.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second Gaussian from the Box–Muller pair.
    spare_gaussian: Option<f32>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
            spare_gaussian: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits -> exactly representable in f32.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift; bias is negligible for our bounds (< 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as usize
    }

    /// Standard normal variate via Box–Muller (pairs cached).
    pub fn next_gaussian(&mut self) -> f32 {
        if let Some(g) = self.spare_gaussian.take() {
            return g;
        }
        // Avoid ln(0).
        let u1 = (self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free, via partial
    /// shuffle of an index vector).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Forks a statistically independent child generator. Useful to give
    /// each data stream / layer its own deterministic source.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Rng64::new(9);
        for _ in 0..10_000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_all_values() {
        let mut rng = Rng64::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng64::new(77);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(3);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng64::new(10);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
