//! Sparse (CSR) kernels for the slim adjacency.
//!
//! α-entmax produces *exact* zeros (paper Section IV-B), so the learned
//! `A_s ∈ R^{N×M}` is mostly empty at α ≥ 1.5 and the dense diffusion
//! GEMM wastes most of its multiplies on zero rows of nothing. [`Csr`]
//! stores only the nonzero entries and provides the three products graph
//! diffusion needs:
//!
//! * [`Csr::spmm`] — `Y[b] = A · X[b]`, the forward diffusion step;
//! * [`Csr::spmm_t`] — `dX[b] = Aᵀ · dY[b]`, the input gradient;
//! * [`Csr::dadj`] — `dA = Σ_b dY[b] · X[b]ᵀ` restricted to the CSR
//!   support, the adjacency gradient (exact end-to-end because the
//!   entmax Jacobian vanishes outside the support — see DESIGN.md §9).
//!
//! Every kernel accumulates in the same order as its dense counterpart
//! in [`matmul`](crate::matmul): the dense kernels unroll the contraction
//! axis four-wide starting at index 0, so the sparse kernels walk each
//! row's nonzeros in groups aligned to the same absolute ⌊k/4⌋ boundaries
//! and add each group's partial sum with one `+=`. Skipping an exact-zero
//! term is exact in IEEE-754 (it only ever adds `±0.0`), so sparse and
//! dense results are identical under `f32` equality — the only tolerated
//! divergence is the sign of exact-zero outputs. Rows are parallelized on
//! the persistent worker [`pool`] with the usual contract: chunk
//! boundaries are a pure function of the sizes, each row is computed by
//! the identical serial routine, and outputs come from [`alloc`].
//!
//! Dispatch between the sparse and dense diffusion paths is controlled by
//! `SAGDFN_SPARSE` (`auto`/`on`/`off`, mirroring `SAGDFN_RECYCLE`) via
//! [`sparse_mode`] / [`set_sparse_mode`] and decided per matrix by
//! [`should_use_sparse`].

use crate::alloc;
use crate::dispatch;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;
use sagdfn_obs as obs;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Below this many output elements a sparse product stays serial (same
/// bar as the dense matmul kernels).
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Minimum rows before the pool round-trip pays for itself.
const ROWS_PARALLEL_THRESHOLD: usize = 8;

/// Column-tile budget for the SpMM rhs panel: when one batch element's
/// `x` slab (`inner · c · 4` bytes) overflows this, the contraction axis
/// is processed in ascending column tiles so the active `x` rows stay
/// cache-resident across output rows. Tile edges are multiples of 4, so
/// the ⌊col/4⌋ accumulation groups never straddle a tile and the tiled
/// walk performs the exact untiled nonzero sequence per output element.
const X_TILE_BYTES: usize = 32 * 1024;

// ---------------------------------------------------------------------
// Sparse/dense dispatch policy
// ---------------------------------------------------------------------

/// How the diffusion path chooses between CSR and dense kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseMode {
    /// Measure the density and use CSR only when it should win.
    Auto,
    /// Always convert to CSR (tests and benches).
    On,
    /// Never convert; always run the dense kernels.
    Off,
}

/// `Auto` only bothers with matrices at least this large: tiny adjacencies
/// finish in microseconds either way and the CSR build is pure overhead.
const AUTO_MIN_NUMEL: usize = 4096;

/// `Auto` requires at least this zero fraction before switching to CSR;
/// below it the grouped sparse kernel has no arithmetic advantage over
/// the dense unrolled GEMM.
const AUTO_MIN_ZERO_FRAC: f32 = 0.5;

fn mode_flag() -> &'static AtomicU8 {
    static FLAG: OnceLock<AtomicU8> = OnceLock::new();
    FLAG.get_or_init(|| {
        let mode = match std::env::var("SAGDFN_SPARSE").as_deref() {
            Ok("on") | Ok("1") => SparseMode::On,
            Ok("off") | Ok("0") => SparseMode::Off,
            _ => SparseMode::Auto,
        };
        AtomicU8::new(mode as u8)
    })
}

fn mode_from_u8(v: u8) -> SparseMode {
    match v {
        1 => SparseMode::On,
        2 => SparseMode::Off,
        _ => SparseMode::Auto,
    }
}

/// The current sparse-dispatch mode (`SAGDFN_SPARSE`, default `auto`).
pub fn sparse_mode() -> SparseMode {
    mode_from_u8(mode_flag().load(Ordering::Relaxed))
}

/// Sets the dispatch mode programmatically (benches and tests run
/// in-process A/B comparisons), returning the previous mode.
pub fn set_sparse_mode(mode: SparseMode) -> SparseMode {
    mode_from_u8(mode_flag().swap(mode as u8, Ordering::SeqCst))
}

/// Decides whether a matrix with `nnz` nonzeros out of `numel` entries
/// should take the CSR path under the current [`sparse_mode`].
pub fn should_use_sparse(nnz: usize, numel: usize) -> bool {
    let sparse = match sparse_mode() {
        SparseMode::On => true,
        SparseMode::Off => false,
        SparseMode::Auto => {
            numel >= AUTO_MIN_NUMEL
                && (numel - nnz) as f32 >= AUTO_MIN_ZERO_FRAC * numel as f32
        }
    };
    obs::tally_dispatch(sparse);
    sparse
}

// ---------------------------------------------------------------------
// The CSR matrix
// ---------------------------------------------------------------------

/// A compressed-sparse-row `f32` matrix with an eagerly built transpose.
///
/// Column indices within each row are strictly ascending. The transposed
/// arrays (`t_*`) store the same nonzeros as a CSR over columns — built
/// once at construction by a counting sort so [`spmm_t`](Csr::spmm_t)
/// never materializes `Aᵀ` at product time.
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    t_row_ptr: Vec<usize>,
    t_col_idx: Vec<u32>,
    t_values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR from a dense rank-2 tensor, dropping entries that are
    /// exactly `0.0` (both zero signs — entmax emits `+0.0`).
    ///
    /// # Panics
    /// Panics if `dense` is not rank 2.
    pub fn from_dense(dense: &Tensor) -> Csr {
        assert_eq!(dense.rank(), 2, "Csr::from_dense requires a rank-2 tensor");
        let (n_rows, n_cols) = (dense.dim(0), dense.dim(1));
        assert!(n_cols <= u32::MAX as usize, "column index overflows u32");
        let src = dense.as_slice();
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let nnz = src.iter().filter(|&&v| v != 0.0).count();
        // Both the forward and transposed value arrays count as output.
        let _g = obs::kernel(
            obs::Kernel::CsrBuild,
            0,
            4 * dense.numel() as u64,
            8 * nnz as u64,
        );
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for row in src.chunks(n_cols.max(1)) {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }

        // Counting-sort transpose: visiting rows in ascending order keeps
        // each transposed row's indices ascending too, which the aligned
        // grouping in `spmm_t` relies on.
        let mut t_row_ptr = vec![0usize; n_cols + 1];
        for &c in &col_idx {
            t_row_ptr[c as usize + 1] += 1;
        }
        for c in 0..n_cols {
            t_row_ptr[c + 1] += t_row_ptr[c];
        }
        let mut next = t_row_ptr[..n_cols].to_vec();
        let mut t_col_idx = vec![0u32; nnz];
        let mut t_values = vec![0.0f32; nnz];
        for i in 0..n_rows {
            for p in row_ptr[i]..row_ptr[i + 1] {
                let c = col_idx[p] as usize;
                let slot = next[c];
                next[c] += 1;
                t_col_idx[slot] = i as u32;
                t_values[slot] = values[p];
            }
        }

        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
            t_row_ptr,
            t_col_idx,
            t_values,
        }
    }

    /// Materializes the dense `(n_rows, n_cols)` tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = alloc::acquire_zeroed(self.n_rows * self.n_cols);
        for i in 0..self.n_rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i * self.n_cols + self.col_idx[p] as usize] = self.values[p];
            }
        }
        Tensor::from_vec(out, [self.n_rows, self.n_cols])
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Rows of the represented matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns of the represented matrix.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Fraction of entries stored: `nnz / (n_rows · n_cols)`.
    pub fn density(&self) -> f32 {
        let numel = self.n_rows * self.n_cols;
        if numel == 0 {
            0.0
        } else {
            self.nnz() as f32 / numel as f32
        }
    }

    /// `Y[b] = A · X[b]` for `x` of shape `(..b, n_cols, c)`, returning
    /// `(..b, n_rows, c)`. Bit-compatible with the dense shared-left
    /// batched [`Tensor::matmul`] (up to the sign of exact zeros).
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        spmm_arrays(
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            self.n_rows,
            self.n_cols,
            x,
            obs::Kernel::Spmm,
        )
    }

    /// `Y[b] = Aᵀ · X[b]` for `x` of shape `(..b, n_rows, c)`, returning
    /// `(..b, n_cols, c)`. Bit-compatible with [`Tensor::matmul_tn`]
    /// applied to the dense matrix (up to the sign of exact zeros).
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_rows`.
    pub fn spmm_t(&self, x: &Tensor) -> Tensor {
        spmm_arrays(
            &self.t_row_ptr,
            &self.t_col_idx,
            &self.t_values,
            self.n_cols,
            self.n_rows,
            x,
            obs::Kernel::SpmmT,
        )
    }

    /// `Y[b] = A · X[b]` over raw slices into a caller-provided buffer,
    /// with the pooled/serial decision made by the caller (see
    /// [`spmm_pooled_hint`]). Zero-fills `out` first (the row kernel
    /// accumulates), so steady-state plan executors reuse one slot with
    /// no allocator traffic. Bit-identical to [`Csr::spmm`]: the same
    /// row kernel runs over the same chunk boundaries.
    ///
    /// # Panics
    /// Panics when `x` / `out` lengths disagree with `(batch, c)`.
    pub fn spmm_into(&self, x: &[f32], batch: usize, c: usize, out: &mut [f32], pooled: bool) {
        assert_eq!(x.len(), batch * self.n_cols * c, "spmm_into x length");
        assert_eq!(out.len(), batch * self.n_rows * c, "spmm_into out length");
        let _g = obs::kernel(
            obs::Kernel::Spmm,
            2 * (batch * self.nnz() * c) as u64,
            4 * (self.nnz() + x.len()) as u64,
            4 * out.len() as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        out.fill(0.0);
        spmm_slices(
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            self.n_rows,
            self.n_cols,
            x,
            batch,
            c,
            out,
            pooled,
        );
    }

    /// Support-restricted adjacency gradient: for each stored entry
    /// `(i, j)`, `dA[i,j] = Σ_b Σ_k dY[b,i,k] · X[b,j,k]`; entries outside
    /// the support stay exactly `0.0`. Agrees bit-for-bit with
    /// [`dadj_dense`] at every stored position: every tier of the
    /// vectorized row kernel reproduces the shared pair-dot routine's
    /// exact association.
    ///
    /// # Panics
    /// Panics on rank/shape mismatches between `dy` and `x`.
    pub fn dadj(&self, dy: &Tensor, x: &Tensor) -> Tensor {
        let (batch, c) = dadj_check(dy, x, self.n_rows, self.n_cols);
        let (n, m) = (self.n_rows, self.n_cols);
        let _g = obs::kernel(
            obs::Kernel::Dadj,
            2 * (batch * self.nnz() * c) as u64,
            4 * (dy.numel() + x.numel() + self.nnz()) as u64,
            4 * (n * m) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        let dy_s = dy.as_slice();
        let x_s = x.as_slice();
        let mut out = alloc::acquire_zeroed(n * m);
        let fill_rows = |row0: usize, out_rows: &mut [f32]| {
            for (rr, out_row) in out_rows.chunks_mut(m).enumerate() {
                let i = row0 + rr;
                let cols = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
                simd::dadj_row(dy_s, x_s, i, cols, out_row, batch, n, m, c);
            }
        };
        if n * m >= PARALLEL_THRESHOLD && n >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial() {
            let rows_per = n.div_ceil(pool::num_threads().min(n));
            pool::par_chunks_mut(&mut out, rows_per * m, |ci, chunk| {
                fill_rows(ci * rows_per, chunk);
            });
        } else {
            fill_rows(0, &mut out);
        }
        Tensor::from_vec(out, [n, m])
    }
}

/// Dense twin of [`Csr::dadj`]: the full `(n, m)` adjacency gradient
/// `dA = Σ_b dY[b] · X[b]ᵀ` for `dy: (..b, n, c)` and `x: (..b, m, c)`,
/// computed entry-wise by the same pair-dot routine (no `(b, n, m)`
/// intermediate is materialized).
///
/// # Panics
/// Panics on rank/shape mismatches between `dy` and `x`.
pub fn dadj_dense(dy: &Tensor, x: &Tensor) -> Tensor {
    let r = dy.rank();
    let n = dy.dim(r - 2);
    let m = x.dim(x.rank() - 2);
    let (batch, c) = dadj_check(dy, x, n, m);
    let _g = obs::kernel(
        obs::Kernel::Dadj,
        2 * (batch * n * m * c) as u64,
        4 * (dy.numel() + x.numel()) as u64,
        4 * (n * m) as u64,
    );
    let dy_s = dy.as_slice();
    let x_s = x.as_slice();
    let mut out = alloc::acquire_zeroed(n * m);
    let fill_rows = |row0: usize, out_rows: &mut [f32]| {
        for (rr, out_row) in out_rows.chunks_mut(m).enumerate() {
            let i = row0 + rr;
            for (j, slot) in out_row.iter_mut().enumerate() {
                *slot = simd::pair_dot(dy_s, x_s, i, j, batch, n, m, c);
            }
        }
    };
    if n * m >= PARALLEL_THRESHOLD && n >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial() {
        let rows_per = n.div_ceil(pool::num_threads().min(n));
        pool::par_chunks_mut(&mut out, rows_per * m, |ci, chunk| {
            fill_rows(ci * rows_per, chunk);
        });
    } else {
        fill_rows(0, &mut out);
    }
    Tensor::from_vec(out, [n, m])
}

/// Shape checks shared by the two `dadj` kernels; returns `(batch, c)`.
fn dadj_check(dy: &Tensor, x: &Tensor, n: usize, m: usize) -> (usize, usize) {
    let (rd, rx) = (dy.rank(), x.rank());
    assert!(rd >= 2 && rx >= 2, "dadj requires rank >= 2 operands");
    assert_eq!(
        dy.dims()[..rd - 2],
        x.dims()[..rx - 2],
        "dadj batch dims differ: {} vs {}",
        dy.shape(),
        x.shape()
    );
    assert_eq!(dy.dim(rd - 2), n, "dadj dy rows mismatch");
    assert_eq!(x.dim(rx - 2), m, "dadj x rows mismatch");
    let c = dy.dim(rd - 1);
    assert_eq!(x.dim(rx - 1), c, "dadj feature dims differ");
    (dy.dims()[..rd - 2].iter().product(), c)
}


/// Row-parallel CSR·dense product over the given CSR arrays:
/// `out[b, i, :] = Σ_p vals[p] · x[b, cols[p], :]` with the nonzeros of
/// each row processed in groups aligned to absolute ⌊col/4⌋ boundaries
/// ([`simd::spmm_row`]) — the exact accumulation structure of the dense
/// GEMM kernel, so results match the dense product under `f32` equality.
#[allow(clippy::too_many_arguments)]
fn spmm_arrays(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f32],
    out_rows: usize,
    inner: usize,
    x: &Tensor,
    kind: obs::Kernel,
) -> Tensor {
    let r = x.rank();
    assert!(r >= 2, "spmm requires a rank >= 2 rhs");
    assert_eq!(
        x.dim(r - 2),
        inner,
        "spmm inner dimension mismatch: lhs has {} columns, rhs {}",
        inner,
        x.shape()
    );
    let c = x.dim(r - 1);
    let batch: usize = x.dims()[..r - 2].iter().product();
    let _g = obs::kernel(
        kind,
        2 * (batch * values.len() * c) as u64,
        4 * (values.len() + x.numel()) as u64,
        4 * (batch * out_rows * c) as u64,
    );
    obs::tally_simd(dispatch::simd_tier().index());
    let xs = x.as_slice();
    // Accumulating kernel (and rows without nonzeros must stay zero), so
    // the recycled buffer has to come back zeroed.
    let mut out = alloc::acquire_zeroed(batch * out_rows * c);
    let pooled = spmm_pooled_hint(out.len(), batch * out_rows);
    spmm_slices(
        row_ptr, col_idx, values, out_rows, inner, xs, batch, c, &mut out, pooled,
    );
    let mut dims = x.dims().to_vec();
    dims[r - 2] = out_rows;
    Tensor::from_vec(out, dims.as_slice())
}

/// Whether [`spmm_slices`] would row-split `total_rows` rows of an
/// `out_len`-element product across the worker pool right now. Plan
/// builders pin this decision at compile time (the pool size is fixed
/// for the process lifetime).
pub fn spmm_pooled_hint(out_len: usize, total_rows: usize) -> bool {
    out_len >= PARALLEL_THRESHOLD && total_rows >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial()
}

/// The shared CSR·dense core over raw slices: fills a pre-zeroed `out`
/// with `out[b, i, :] += Σ_p vals[p] · x[b, cols[p], :]`. Tiling and
/// chunk boundaries are pure functions of the sizes, so every caller
/// (tensor-returning or slot-writing) produces identical bits.
#[allow(clippy::too_many_arguments)]
fn spmm_slices(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f32],
    out_rows: usize,
    inner: usize,
    xs: &[f32],
    batch: usize,
    c: usize,
    out: &mut [f32],
    pooled: bool,
) {
    let total_rows = batch * out_rows;
    // Shape-only tiling decision (thread- and tier-invariant): tile the
    // contraction axis when one batch's x slab overflows the budget.
    let tile_w = (X_TILE_BYTES / (4 * c.max(1))).max(4) & !3;
    let tiled = inner > tile_w;
    let fill = |row0: usize, chunk: &mut [f32]| {
        if tiled {
            // Ascending 4-aligned column tiles, rows inner: every middle
            // tile's columns sit below ⌊inner/4⌋·4 (tile edges are
            // multiples of 4), so groups complete within their tile and
            // each output row accumulates its nonzeros in the untiled
            // order — bit-identical, just with a cache-sized x window.
            let mut t0 = 0;
            while t0 < inner {
                let t1 = (t0 + tile_w).min(inner);
                for (rr, c_row) in chunk.chunks_mut(c).enumerate() {
                    let gr = row0 + rr;
                    let (b, i) = (gr / out_rows, gr % out_rows);
                    let x_b = &xs[b * inner * c..(b + 1) * inner * c];
                    let row_cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                    let row_vals = &values[row_ptr[i]..row_ptr[i + 1]];
                    let p0 = row_cols.partition_point(|&cc| (cc as usize) < t0);
                    let p1 = row_cols.partition_point(|&cc| (cc as usize) < t1);
                    if p0 < p1 {
                        simd::spmm_row(
                            &row_cols[p0..p1],
                            &row_vals[p0..p1],
                            x_b,
                            c_row,
                            inner,
                            c,
                        );
                    }
                }
                t0 = t1;
            }
        } else {
            for (rr, c_row) in chunk.chunks_mut(c).enumerate() {
                let gr = row0 + rr;
                let (b, i) = (gr / out_rows, gr % out_rows);
                let x_b = &xs[b * inner * c..(b + 1) * inner * c];
                simd::spmm_row(
                    &col_idx[row_ptr[i]..row_ptr[i + 1]],
                    &values[row_ptr[i]..row_ptr[i + 1]],
                    x_b,
                    c_row,
                    inner,
                    c,
                );
            }
        }
    };
    if pooled && !pool::is_serial() {
        let rows_per = total_rows.div_ceil(pool::num_threads().min(total_rows));
        pool::par_chunks_mut(out, rows_per * c, |ci, chunk| {
            fill(ci * rows_per, chunk);
        });
    } else {
        fill(0, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Random matrix with an exact fraction of zero entries per row.
    fn sparse_rand(n: usize, m: usize, zero_frac: f32, seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        let mut t = Tensor::rand_uniform([n, m], 0.1, 1.0, &mut rng);
        let zeros_per_row = (m as f32 * zero_frac) as usize;
        let data = t.as_mut_slice();
        for i in 0..n {
            let row = &mut data[i * m..(i + 1) * m];
            let mut zeroed = 0;
            while zeroed < zeros_per_row {
                let j = (rng.next_u64() % m as u64) as usize;
                if row[j] != 0.0 {
                    row[j] = 0.0;
                    zeroed += 1;
                }
            }
        }
        t
    }

    #[test]
    fn round_trip_preserves_bits() {
        for zf in [0.0f32, 0.3, 0.7, 1.0] {
            let a = sparse_rand(13, 9, zf, 42);
            let csr = Csr::from_dense(&a);
            assert_eq!(csr.to_dense(), a, "zero_frac {zf}");
            assert_eq!(
                csr.nnz(),
                a.as_slice().iter().filter(|&&v| v != 0.0).count()
            );
        }
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = Rng64::new(7);
        for (n, m, c) in [(17, 11, 5), (32, 16, 8), (9, 23, 3)] {
            let a = sparse_rand(n, m, 0.6, n as u64);
            let x = Tensor::rand_uniform([m, c], -1.0, 1.0, &mut rng);
            let csr = Csr::from_dense(&a);
            assert_eq!(csr.spmm(&x), a.matmul(&x), "({n},{m},{c})");
        }
    }

    #[test]
    fn spmm_batched_matches_dense() {
        let mut rng = Rng64::new(8);
        let a = sparse_rand(12, 10, 0.5, 3);
        let x = Tensor::rand_uniform([4, 10, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let y = csr.spmm(&x);
        assert_eq!(y.dims(), &[4, 12, 6]);
        assert_eq!(y, a.matmul(&x));
    }

    #[test]
    fn spmm_into_matches_spmm_bitwise() {
        let mut rng = Rng64::new(77);
        let a = sparse_rand(12, 10, 0.5, 3);
        let x = Tensor::rand_uniform([4, 10, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let want = csr.spmm(&x);
        for pooled in [false, true] {
            // Dirty slot: spmm_into must zero it before accumulating.
            let mut out = vec![7.0f32; 4 * 12 * 6];
            csr.spmm_into(x.as_slice(), 4, 6, &mut out, pooled);
            for (i, (g, w)) in out.iter().zip(want.as_slice()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "pooled={pooled} [{i}]");
            }
        }
    }

    #[test]
    fn spmm_t_matches_transposed_product() {
        let mut rng = Rng64::new(9);
        let a = sparse_rand(14, 9, 0.6, 4);
        let g = Tensor::rand_uniform([3, 14, 5], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let got = csr.spmm_t(&g);
        assert_eq!(got.dims(), &[3, 9, 5]);
        assert_eq!(got, a.matmul_tn(&g));
    }

    #[test]
    fn dadj_matches_dense_on_support() {
        let mut rng = Rng64::new(10);
        let a = sparse_rand(11, 7, 0.55, 5);
        let dy = Tensor::rand_uniform([2, 11, 6], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform([2, 7, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let sparse = csr.dadj(&dy, &x);
        let dense = dadj_dense(&dy, &x);
        for (idx, (&av, (&s, &d))) in a
            .as_slice()
            .iter()
            .zip(sparse.as_slice().iter().zip(dense.as_slice()))
            .enumerate()
        {
            if av != 0.0 {
                assert_eq!(s.to_bits(), d.to_bits(), "support entry {idx}");
            } else {
                assert_eq!(s, 0.0, "off-support entry {idx} must stay zero");
            }
        }
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        let a = Tensor::zeros([4, 3]);
        let csr = Csr::from_dense(&a);
        assert_eq!(csr.nnz(), 0);
        let x = Tensor::ones([3, 2]);
        assert_eq!(csr.spmm(&x), Tensor::zeros([4, 2]));
    }

    #[test]
    fn mode_toggle_round_trips() {
        let prev = set_sparse_mode(SparseMode::On);
        assert!(should_use_sparse(0, 1));
        assert_eq!(set_sparse_mode(SparseMode::Off), SparseMode::On);
        assert!(!should_use_sparse(0, 1_000_000));
        set_sparse_mode(SparseMode::Auto);
        // Auto: small matrices stay dense; big sparse ones switch.
        assert!(!should_use_sparse(10, 100));
        assert!(should_use_sparse(1000, 100 * 100));
        assert!(!should_use_sparse(6000, 100 * 100));
        set_sparse_mode(prev);
    }
}
