//! Sparse (CSR) kernels for the slim adjacency.
//!
//! α-entmax produces *exact* zeros (paper Section IV-B), so the learned
//! `A_s ∈ R^{N×M}` is mostly empty at α ≥ 1.5 and the dense diffusion
//! GEMM wastes most of its multiplies on zero rows of nothing. [`Csr`]
//! stores only the nonzero entries and provides the three products graph
//! diffusion needs:
//!
//! * [`Csr::spmm`] — `Y[b] = A · X[b]`, the forward diffusion step;
//! * [`Csr::spmm_t`] — `dX[b] = Aᵀ · dY[b]`, the input gradient;
//! * [`Csr::dadj`] — `dA = Σ_b dY[b] · X[b]ᵀ` restricted to the CSR
//!   support, the adjacency gradient (exact end-to-end because the
//!   entmax Jacobian vanishes outside the support — see DESIGN.md §9).
//!
//! Every kernel accumulates in the same order as its dense counterpart
//! in [`matmul`](crate::matmul): the dense kernels unroll the contraction
//! axis four-wide starting at index 0, so the sparse kernels walk each
//! row's nonzeros in groups aligned to the same absolute ⌊k/4⌋ boundaries
//! and add each group's partial sum with one `+=`. Skipping an exact-zero
//! term is exact in IEEE-754 (it only ever adds `±0.0`), so sparse and
//! dense results are identical under `f32` equality — the only tolerated
//! divergence is the sign of exact-zero outputs. Rows are parallelized on
//! the persistent worker [`pool`] with the usual contract: chunk
//! boundaries are a pure function of the sizes, each row is computed by
//! the identical serial routine, and outputs come from [`alloc`].
//!
//! # Cache blocking
//!
//! The shared core [`spmm_core`] processes the contraction axis in
//! ascending 4-aligned column tiles sized to [`X_TILE_BYTES`] so the
//! active rhs panel stays cache-resident across CSR rows, and walks the
//! batch axis innermost per `(row, tile)` so each row's nonzero range is
//! located once (one pair of binary searches) and reused `batch` times.
//!
//! # Node sharding
//!
//! [`ShardedCsr`] splits the **row** dimension into `k` contiguous
//! shards whose boundaries are multiples of 4 (see DESIGN.md §14). Rows
//! never share ⌊k/4⌋ accumulation groups across a 4-aligned boundary, so
//! every sharded product replays the unsharded per-element operation
//! sequence exactly: the forward `spmm`/`dadj` write disjoint row blocks
//! (merge-free), and `spmm_t` accumulates shard contributions serially in
//! ascending shard order, which is precisely the unsharded column walk.
//! `ShardedCsr` with one shard is bit-for-bit today's [`Csr`].
//!
//! Dispatch between the sparse and dense diffusion paths is controlled by
//! `SAGDFN_SPARSE` (`auto`/`on`/`off`, mirroring `SAGDFN_RECYCLE`) via
//! [`sparse_mode`] / [`set_sparse_mode`] and decided per adjacency shape
//! and density by [`spmm_dispatch`], which picks one of three pipelines
//! ([`SpmmDispatch`]): all-dense, all-CSR, or a hybrid that runs the
//! products on the dense GEMMs but the adjacency gradient on the
//! support-restricted CSR [`dadj`](Csr::dadj). The hybrid exists because
//! the two kinds of work scale differently with density: a dense GEMM
//! runs the products at full SIMD throughput regardless of zeros, so CSR
//! products only win once the matrix is genuinely sparse (≲ 25 %
//! density), while `dadj` touches exactly one `c`-length dot per stored
//! pair, so restricting it to the support saves work at *any* density.

use crate::alloc;
use crate::dispatch;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;
use sagdfn_obs as obs;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Below this many output elements a sparse product stays serial (same
/// bar as the dense matmul kernels).
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Minimum rows before the pool round-trip pays for itself.
const ROWS_PARALLEL_THRESHOLD: usize = 8;

/// Column-tile budget for the SpMM rhs panel: when one batch element's
/// `x` slab (`inner · c · 4` bytes) overflows this, the contraction axis
/// is processed in ascending column tiles so the active `x` rows stay
/// cache-resident across output rows. Tile edges are multiples of 4, so
/// the ⌊col/4⌋ accumulation groups never straddle a tile and the tiled
/// walk performs the exact untiled nonzero sequence per output element.
const X_TILE_BYTES: usize = 32 * 1024;

// ---------------------------------------------------------------------
// Sparse/dense dispatch policy
// ---------------------------------------------------------------------

/// How the diffusion path chooses between CSR and dense kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseMode {
    /// Measure the density and use CSR only when it should win.
    Auto,
    /// Always convert to CSR (tests and benches).
    On,
    /// Never convert; always run the dense kernels.
    Off,
}

fn mode_flag() -> &'static AtomicU8 {
    static FLAG: OnceLock<AtomicU8> = OnceLock::new();
    FLAG.get_or_init(|| {
        let mode = match std::env::var("SAGDFN_SPARSE").as_deref() {
            Ok("on") | Ok("1") => SparseMode::On,
            Ok("off") | Ok("0") => SparseMode::Off,
            _ => SparseMode::Auto,
        };
        AtomicU8::new(mode as u8)
    })
}

fn mode_from_u8(v: u8) -> SparseMode {
    match v {
        1 => SparseMode::On,
        2 => SparseMode::Off,
        _ => SparseMode::Auto,
    }
}

/// The current sparse-dispatch mode (`SAGDFN_SPARSE`, default `auto`).
pub fn sparse_mode() -> SparseMode {
    mode_from_u8(mode_flag().load(Ordering::Relaxed))
}

/// Sets the dispatch mode programmatically (benches and tests run
/// in-process A/B comparisons), returning the previous mode.
pub fn set_sparse_mode(mode: SparseMode) -> SparseMode {
    mode_from_u8(mode_flag().swap(mode as u8, Ordering::SeqCst))
}

/// The pipeline [`spmm_dispatch`] selects for one adjacency state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmmDispatch {
    /// No CSR at all: products *and* adjacency gradient run on the dense
    /// kernels ([`Tensor::matmul`] / `matmul_tn` / [`dadj_dense`]).
    Dense,
    /// Build the CSR, but only for the adjacency gradient: the products
    /// `A·X` and `Aᵀ·dY` run on the dense GEMMs while
    /// [`dadj`](Csr::dadj) walks the support only. For entmax-produced
    /// adjacencies the restriction is exact end-to-end — the α-entmax
    /// Jacobian vanishes outside the support (DESIGN.md §9).
    Hybrid,
    /// Everything on the CSR kernels.
    Sparse,
}

/// Decides how a `(rows, cols)` adjacency with `nnz` nonzeros,
/// multiplied against a batch of `batch` rhs slabs per diffusion
/// product, should execute under the current [`sparse_mode`].
///
/// `Auto` is a cost model rather than a bare density ratio, calibrated
/// against the measured kernels (see `bench_diffusion`):
///
/// * Tiny adjacencies (`rows` or `cols` < 32) finish in microseconds
///   either way and never pay for index chasing → [`Dense`].
/// * The CSR build (amortized over one adjacency state) costs a dense
///   scan plus nonzero packing on the order of `numel`, while the
///   support-restricted gradient saves `batch·zeros·c` dot products per
///   step. When `2·batch·zeros < 3·numel` the savings can't cover the
///   build (this also catches fully dense matrices) → [`Dense`].
/// * The dense GEMMs run at full SIMD throughput regardless of zeros;
///   the grouped CSR product kernels cost ~2–3× more per stored
///   element, so CSR products only win clearly below ~25 % density,
///   `4·nnz ≤ numel` → [`Sparse`].
/// * In between, zeros are plentiful enough to pay for the CSR but not
///   to beat the GEMMs on products → [`Hybrid`].
///
/// [`Dense`]: SpmmDispatch::Dense
/// [`Sparse`]: SpmmDispatch::Sparse
/// [`Hybrid`]: SpmmDispatch::Hybrid
pub fn spmm_dispatch(rows: usize, cols: usize, batch: usize, nnz: usize) -> SpmmDispatch {
    let choice = match sparse_mode() {
        SparseMode::On => SpmmDispatch::Sparse,
        SparseMode::Off => SpmmDispatch::Dense,
        SparseMode::Auto => {
            let numel = rows * cols;
            let zeros = numel.saturating_sub(nnz);
            if rows < 32 || cols < 32 || 2 * batch.max(1) * zeros < 3 * numel {
                SpmmDispatch::Dense
            } else if 4 * nnz <= numel {
                SpmmDispatch::Sparse
            } else {
                SpmmDispatch::Hybrid
            }
        }
    };
    obs::tally_dispatch(choice != SpmmDispatch::Dense);
    choice
}

/// `true` when [`spmm_dispatch`] builds a CSR at all (i.e. anything but
/// the all-dense pipeline). Kept as the coarse boolean answer for
/// callers that only need to know whether sparsity is exploited.
pub fn should_use_sparse(rows: usize, cols: usize, batch: usize, nnz: usize) -> bool {
    spmm_dispatch(rows, cols, batch, nnz) != SpmmDispatch::Dense
}

/// A resolved diffusion execution plan for one adjacency state: the
/// [`SpmmDispatch`] decision plus the sharded CSR when one is needed.
/// Built once per adjacency value by the graph layer and shared by the
/// forward product and both backward gradients, so the build cost is
/// amortized over every diffusion step that reuses the adjacency.
#[derive(Clone)]
pub enum DiffusePlan {
    /// Products and gradient on the dense kernels; no CSR exists.
    Dense,
    /// Products on the dense GEMMs, adjacency gradient on the
    /// support-restricted CSR [`dadj`](ShardedCsr::dadj).
    Hybrid(Rc<ShardedCsr>),
    /// Products and gradient on the CSR kernels.
    Sparse(Rc<ShardedCsr>),
}

impl DiffusePlan {
    /// Builds the plan for `dispatch`, invoking `build` only when the
    /// chosen pipeline actually needs the CSR.
    pub fn build(dispatch: SpmmDispatch, build: impl FnOnce() -> ShardedCsr) -> Self {
        match dispatch {
            SpmmDispatch::Dense => DiffusePlan::Dense,
            SpmmDispatch::Hybrid => DiffusePlan::Hybrid(Rc::new(build())),
            SpmmDispatch::Sparse => DiffusePlan::Sparse(Rc::new(build())),
        }
    }

    /// The dispatch decision this plan realizes.
    pub fn dispatch(&self) -> SpmmDispatch {
        match self {
            DiffusePlan::Dense => SpmmDispatch::Dense,
            DiffusePlan::Hybrid(_) => SpmmDispatch::Hybrid,
            DiffusePlan::Sparse(_) => SpmmDispatch::Sparse,
        }
    }

    /// The CSR, when this plan carries one (`Hybrid` and `Sparse`).
    pub fn csr(&self) -> Option<&Rc<ShardedCsr>> {
        match self {
            DiffusePlan::Dense => None,
            DiffusePlan::Hybrid(c) | DiffusePlan::Sparse(c) => Some(c),
        }
    }

    /// `true` when the *products* (`A·X`, `Aᵀ·dY`) run on the CSR
    /// kernels — only the full-sparse pipeline; the hybrid keeps them
    /// on the dense GEMMs.
    pub fn products_sparse(&self) -> bool {
        matches!(self, DiffusePlan::Sparse(_))
    }

    /// Shard count of the carried CSR (1 when the plan is dense — a
    /// dense pipeline is never sharded).
    pub fn shard_count(&self) -> usize {
        self.csr().map_or(1, |c| c.shard_count())
    }
}

// ---------------------------------------------------------------------
// The CSR matrix
// ---------------------------------------------------------------------

/// A compressed-sparse-row `f32` matrix with an eagerly built transpose.
///
/// Column indices within each row are strictly ascending. The transposed
/// arrays (`t_*`) store the same nonzeros as a CSR over columns — built
/// once at construction by a counting sort so [`spmm_t`](Csr::spmm_t)
/// never materializes `Aᵀ` at product time.
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    t_row_ptr: Vec<usize>,
    t_col_idx: Vec<u32>,
    t_values: Vec<f32>,
    /// Per-row ⌊col/4⌋ accumulation groups ([`simd::decode_groups`]),
    /// decoded once here and replayed by every product — the adjacency is
    /// rebuilt once per training step but diffused through dozens of
    /// times (timesteps × gates × hops), so group decoding amortizes to
    /// nearly zero while the spmm hot loop loses its per-call decode.
    groups: Vec<u64>,
    group_ptr: Vec<usize>,
    /// Same, for the transposed arrays (`spmm_t`).
    t_groups: Vec<u64>,
    t_group_ptr: Vec<usize>,
}

/// Decodes the accumulation groups of every CSR row once at build time;
/// returns `(groups, group_ptr)` with `group_ptr.len() == n_rows + 1`.
fn decode_row_groups(row_ptr: &[usize], col_idx: &[u32], inner: usize) -> (Vec<u64>, Vec<usize>) {
    let n_rows = row_ptr.len() - 1;
    let mut groups = Vec::with_capacity(col_idx.len());
    let mut group_ptr = Vec::with_capacity(n_rows + 1);
    group_ptr.push(0);
    for i in 0..n_rows {
        let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
        simd::decode_groups(cols, 0, cols.len(), inner, &mut groups);
        group_ptr.push(groups.len());
    }
    (groups, group_ptr)
}

impl Csr {
    /// Builds a CSR from a dense rank-2 tensor, dropping entries that are
    /// exactly `0.0` (both zero signs — entmax emits `+0.0`).
    ///
    /// # Panics
    /// Panics if `dense` is not rank 2.
    pub fn from_dense(dense: &Tensor) -> Csr {
        assert_eq!(dense.rank(), 2, "Csr::from_dense requires a rank-2 tensor");
        Csr::from_dense_rows(dense, 0, dense.dim(0))
    }

    /// Builds a CSR over the row span `[r0, r1)` of a dense rank-2
    /// tensor: rows are re-indexed locally (`n_rows = r1 − r0`), columns
    /// keep their global indices. This is the shard constructor used by
    /// [`ShardedCsr`]; `from_dense_rows(d, 0, d.dim(0))` is exactly
    /// [`Csr::from_dense`].
    ///
    /// # Panics
    /// Panics if `dense` is not rank 2 or the span is out of bounds.
    pub fn from_dense_rows(dense: &Tensor, r0: usize, r1: usize) -> Csr {
        assert_eq!(dense.rank(), 2, "Csr::from_dense_rows requires a rank-2 tensor");
        let n_cols = dense.dim(1);
        assert!(r0 <= r1 && r1 <= dense.dim(0), "row span out of bounds");
        assert!(n_cols <= u32::MAX as usize, "column index overflows u32");
        let n_rows = r1 - r0;
        let src = &dense.as_slice()[r0 * n_cols..r1 * n_cols];
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let nnz = src.iter().filter(|&&v| v != 0.0).count();
        // Both the forward and transposed value arrays count as output.
        let _g = obs::kernel(
            obs::Kernel::CsrBuild,
            0,
            4 * (n_rows * n_cols) as u64,
            8 * nnz as u64,
        );
        // Branchless fill: every element is written at the cursor, which
        // only advances past nonzeros — a data dependency instead of a
        // branch, so mixed-density rows don't pay a misprediction per
        // entry. One spare slot absorbs the unconditional write when the
        // cursor already sits at `nnz`.
        let mut col_idx = vec![0u32; nnz + 1];
        let mut values = vec![0.0f32; nnz + 1];
        let mut w = 0usize;
        for row in src.chunks(n_cols.max(1)) {
            // SAFETY: `w` counts nonzeros seen so far, so `w <= nnz` and
            // every write lands within the `nnz + 1` slots.
            unsafe {
                let cp = col_idx.as_mut_ptr();
                let vp = values.as_mut_ptr();
                for (c, &v) in row.iter().enumerate() {
                    *cp.add(w) = c as u32;
                    *vp.add(w) = v;
                    w += (v != 0.0) as usize;
                }
            }
            row_ptr.push(w);
        }
        col_idx.truncate(nnz);
        values.truncate(nnz);

        // Counting-sort transpose: visiting rows in ascending order keeps
        // each transposed row's indices ascending too, which the aligned
        // grouping in `spmm_t` relies on.
        let mut t_row_ptr = vec![0usize; n_cols + 1];
        for &c in &col_idx {
            t_row_ptr[c as usize + 1] += 1;
        }
        for c in 0..n_cols {
            t_row_ptr[c + 1] += t_row_ptr[c];
        }
        let mut next = t_row_ptr[..n_cols].to_vec();
        let mut t_col_idx = vec![0u32; nnz];
        let mut t_values = vec![0.0f32; nnz];
        for i in 0..n_rows {
            for p in row_ptr[i]..row_ptr[i + 1] {
                let c = col_idx[p] as usize;
                let slot = next[c];
                next[c] += 1;
                t_col_idx[slot] = i as u32;
                t_values[slot] = values[p];
            }
        }

        let (groups, group_ptr) = decode_row_groups(&row_ptr, &col_idx, n_cols);
        let (t_groups, t_group_ptr) = decode_row_groups(&t_row_ptr, &t_col_idx, n_rows);

        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
            t_row_ptr,
            t_col_idx,
            t_values,
            groups,
            group_ptr,
            t_groups,
            t_group_ptr,
        }
    }

    /// Materializes the dense `(n_rows, n_cols)` tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = alloc::acquire_zeroed(self.n_rows * self.n_cols);
        for i in 0..self.n_rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i * self.n_cols + self.col_idx[p] as usize] = self.values[p];
            }
        }
        Tensor::from_vec(out, [self.n_rows, self.n_cols])
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Rows of the represented matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns of the represented matrix.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Fraction of entries stored: `nnz / (n_rows · n_cols)`.
    pub fn density(&self) -> f32 {
        let numel = self.n_rows * self.n_cols;
        if numel == 0 {
            0.0
        } else {
            self.nnz() as f32 / numel as f32
        }
    }

    /// `Y[b] = A · X[b]` for `x` of shape `(..b, n_cols, c)`, returning
    /// `(..b, n_rows, c)`. Bit-compatible with the dense shared-left
    /// batched [`Tensor::matmul`] (up to the sign of exact zeros).
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        spmm_arrays(self.fwd_view(), self.n_rows, self.n_cols, x, obs::Kernel::Spmm)
    }

    /// `Y[b] = Aᵀ · X[b]` for `x` of shape `(..b, n_rows, c)`, returning
    /// `(..b, n_cols, c)`. Bit-compatible with [`Tensor::matmul_tn`]
    /// applied to the dense matrix (up to the sign of exact zeros).
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_rows`.
    pub fn spmm_t(&self, x: &Tensor) -> Tensor {
        spmm_arrays(self.t_view(), self.n_cols, self.n_rows, x, obs::Kernel::SpmmT)
    }

    /// `Y[b] = A · X[b]` over raw slices into a caller-provided buffer,
    /// with the pooled/serial decision made by the caller (see
    /// [`spmm_pooled_hint`]). Zero-fills `out` first (the row kernel
    /// accumulates), so steady-state plan executors reuse one slot with
    /// no allocator traffic. Bit-identical to [`Csr::spmm`]: the same
    /// row kernel runs over the same chunk boundaries.
    ///
    /// # Panics
    /// Panics when `x` / `out` lengths disagree with `(batch, c)`.
    pub fn spmm_into(&self, x: &[f32], batch: usize, c: usize, out: &mut [f32], pooled: bool) {
        assert_eq!(x.len(), batch * self.n_cols * c, "spmm_into x length");
        assert_eq!(out.len(), batch * self.n_rows * c, "spmm_into out length");
        let _g = obs::kernel(
            obs::Kernel::Spmm,
            2 * (batch * self.nnz() * c) as u64,
            4 * (self.nnz() + x.len()) as u64,
            4 * out.len() as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        out.fill(0.0);
        spmm_core(
            self.fwd_view(),
            ShardSpan::whole(self.n_rows),
            ShardSpan::whole(self.n_cols),
            x,
            batch,
            c,
            out,
            pooled,
        );
    }

    /// Support-restricted adjacency gradient: for each stored entry
    /// `(i, j)`, `dA[i,j] = Σ_b Σ_k dY[b,i,k] · X[b,j,k]`; entries outside
    /// the support stay exactly `0.0`. Agrees bit-for-bit with
    /// [`dadj_dense`] at every stored position: every tier of the
    /// vectorized row kernel reproduces the shared pair-dot routine's
    /// exact association.
    ///
    /// # Panics
    /// Panics on rank/shape mismatches between `dy` and `x`.
    pub fn dadj(&self, dy: &Tensor, x: &Tensor) -> Tensor {
        let (batch, c) = dadj_check(dy, x, self.n_rows, self.n_cols);
        let (n, m) = (self.n_rows, self.n_cols);
        let _g = obs::kernel(
            obs::Kernel::Dadj,
            2 * (batch * self.nnz() * c) as u64,
            4 * (dy.numel() + x.numel() + self.nnz()) as u64,
            4 * (n * m) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        let dy_s = dy.as_slice();
        let x_s = x.as_slice();
        let mut out = alloc::acquire_zeroed(n * m);
        dadj_rows_parallel(&mut out, n, m, |i| {
            &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
        }, dy_s, x_s, batch, c);
        Tensor::from_vec(out, [n, m])
    }
}

// ---------------------------------------------------------------------
// The node-sharded CSR matrix
// ---------------------------------------------------------------------

/// A CSR adjacency split into `k` contiguous **row** shards whose
/// boundaries are multiples of 4 (DESIGN.md §14 "Sharding model").
///
/// Each shard is a self-contained [`Csr`] over its row span (local row
/// indices, global column indices), so per-shard working sets — slim
/// adjacency rows, transpose arrays, attention scores upstream — scale
/// as `O(n/k)`. All three products are bit-identical to the unsharded
/// [`Csr`] kernels for every `k`:
///
/// * [`spmm`](ShardedCsr::spmm) / [`dadj`](ShardedCsr::dadj) write
///   disjoint output row blocks per shard — merge-free;
/// * [`spmm_t`](ShardedCsr::spmm_t) accumulates shard contributions in
///   ascending shard order, which replays the unsharded ascending-row
///   column walk exactly (4-aligned boundaries never split a ⌊k/4⌋
///   accumulation group).
pub struct ShardedCsr {
    n_rows: usize,
    n_cols: usize,
    /// Rows per shard (a multiple of 4; the last shard may be shorter).
    shard_rows: usize,
    shards: Vec<Csr>,
}

impl ShardedCsr {
    /// Builds a sharded CSR with (at most) `k` row shards from a dense
    /// rank-2 tensor. `k = 1` stores a single shard that is bit-for-bit
    /// [`Csr::from_dense`]; `k = 0` is treated as 1.
    ///
    /// # Panics
    /// Panics if `dense` is not rank 2.
    pub fn from_dense(dense: &Tensor, k: usize) -> ShardedCsr {
        assert_eq!(dense.rank(), 2, "ShardedCsr::from_dense requires a rank-2 tensor");
        let (n_rows, n_cols) = (dense.dim(0), dense.dim(1));
        let k = k.max(1);
        // Round the shard height up to a multiple of 4 so shard edges
        // never split a ⌊row/4⌋ accumulation group of `spmm_t`.
        let shard_rows = n_rows.div_ceil(k).div_ceil(4).max(1) * 4;
        let count = n_rows.div_ceil(shard_rows).max(1);
        let shards = (0..count)
            .map(|s| {
                let r0 = s * shard_rows;
                let r1 = (r0 + shard_rows).min(n_rows);
                Csr::from_dense_rows(dense, r0, r1)
            })
            .collect();
        ShardedCsr { n_rows, n_cols, shard_rows, shards }
    }

    /// Number of row shards actually stored.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rows per shard (the last shard may hold fewer).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Total stored (nonzero) entries across all shards.
    pub fn nnz(&self) -> usize {
        self.shards.iter().map(Csr::nnz).sum()
    }

    /// Rows of the represented matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns of the represented matrix.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Fraction of entries stored: `nnz / (n_rows · n_cols)`.
    pub fn density(&self) -> f32 {
        let numel = self.n_rows * self.n_cols;
        if numel == 0 {
            0.0
        } else {
            self.nnz() as f32 / numel as f32
        }
    }

    /// Materializes the dense `(n_rows, n_cols)` tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = alloc::acquire_zeroed(self.n_rows * self.n_cols);
        for (s, shard) in self.shards.iter().enumerate() {
            let r0 = s * self.shard_rows;
            for i in 0..shard.n_rows {
                for p in shard.row_ptr[i]..shard.row_ptr[i + 1] {
                    out[(r0 + i) * self.n_cols + shard.col_idx[p] as usize] = shard.values[p];
                }
            }
        }
        Tensor::from_vec(out, [self.n_rows, self.n_cols])
    }

    /// `Y[b] = A · X[b]`; see [`Csr::spmm`]. Each shard fills its own
    /// output row block `[s·shard_rows, …)` — merge-free, bit-identical
    /// to the unsharded product for every shard count.
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_cols`.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        let (batch, c) = spmm_shape_check(x, self.n_cols);
        let _g = obs::kernel(
            obs::Kernel::Spmm,
            2 * (batch * self.nnz() * c) as u64,
            4 * (self.nnz() + x.numel()) as u64,
            4 * (batch * self.n_rows * c) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        obs::tally_shards(self.shards.len() as u64);
        let mut out = alloc::acquire_zeroed(batch * self.n_rows * c);
        let pooled = spmm_pooled_hint(out.len(), batch * self.n_rows);
        self.spmm_slices(x.as_slice(), batch, c, &mut out, pooled);
        let mut dims = x.dims().to_vec();
        let r = dims.len();
        dims[r - 2] = self.n_rows;
        Tensor::from_vec(out, dims.as_slice())
    }

    /// `Y[b] = A · X[b]` over raw slices into a caller-provided buffer;
    /// see [`Csr::spmm_into`]. Bit-identical to [`ShardedCsr::spmm`].
    ///
    /// # Panics
    /// Panics when `x` / `out` lengths disagree with `(batch, c)`.
    pub fn spmm_into(&self, x: &[f32], batch: usize, c: usize, out: &mut [f32], pooled: bool) {
        assert_eq!(x.len(), batch * self.n_cols * c, "spmm_into x length");
        assert_eq!(out.len(), batch * self.n_rows * c, "spmm_into out length");
        let _g = obs::kernel(
            obs::Kernel::Spmm,
            2 * (batch * self.nnz() * c) as u64,
            4 * (self.nnz() + x.len()) as u64,
            4 * out.len() as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        obs::tally_shards(self.shards.len() as u64);
        out.fill(0.0);
        self.spmm_slices(x, batch, c, out, pooled);
    }

    fn spmm_slices(&self, x: &[f32], batch: usize, c: usize, out: &mut [f32], pooled: bool) {
        for (s, shard) in self.shards.iter().enumerate() {
            let _s = (self.shards.len() > 1).then(|| obs::span("spmm.shard")).flatten();
            spmm_core(
                shard.fwd_view(),
                ShardSpan { local: shard.n_rows, offset: s * self.shard_rows, total: self.n_rows },
                ShardSpan::whole(self.n_cols),
                x,
                batch,
                c,
                out,
                pooled,
            );
        }
    }

    /// `Y[b] = Aᵀ · X[b]`; see [`Csr::spmm_t`]. Shards are accumulated
    /// serially in ascending order (each internally pool-parallel), which
    /// replays the unsharded per-element add sequence exactly.
    ///
    /// # Panics
    /// Panics if `x` has rank < 2 or its second-to-last dim ≠ `n_rows`.
    pub fn spmm_t(&self, x: &Tensor) -> Tensor {
        let (batch, c) = spmm_shape_check(x, self.n_rows);
        let _g = obs::kernel(
            obs::Kernel::SpmmT,
            2 * (batch * self.nnz() * c) as u64,
            4 * (self.nnz() + x.numel()) as u64,
            4 * (batch * self.n_cols * c) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        obs::tally_shards(self.shards.len() as u64);
        let xs = x.as_slice();
        let mut out = alloc::acquire_zeroed(batch * self.n_cols * c);
        let pooled = spmm_pooled_hint(out.len(), batch * self.n_cols);
        for (s, shard) in self.shards.iter().enumerate() {
            let _s = (self.shards.len() > 1).then(|| obs::span("spmm_t.shard")).flatten();
            spmm_core(
                shard.t_view(),
                ShardSpan::whole(self.n_cols),
                ShardSpan { local: shard.n_rows, offset: s * self.shard_rows, total: self.n_rows },
                xs,
                batch,
                c,
                &mut out,
                pooled,
            );
        }
        let mut dims = x.dims().to_vec();
        let r = dims.len();
        dims[r - 2] = self.n_cols;
        Tensor::from_vec(out, dims.as_slice())
    }

    /// Support-restricted adjacency gradient; see [`Csr::dadj`]. Rows of
    /// `dA` are filled from their owning shard's index arrays — output
    /// row blocks are disjoint per shard, so no merge step exists.
    ///
    /// # Panics
    /// Panics on rank/shape mismatches between `dy` and `x`.
    pub fn dadj(&self, dy: &Tensor, x: &Tensor) -> Tensor {
        let (batch, c) = dadj_check(dy, x, self.n_rows, self.n_cols);
        let (n, m) = (self.n_rows, self.n_cols);
        let _g = obs::kernel(
            obs::Kernel::Dadj,
            2 * (batch * self.nnz() * c) as u64,
            4 * (dy.numel() + x.numel() + self.nnz()) as u64,
            4 * (n * m) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        obs::tally_shards(self.shards.len() as u64);
        let dy_s = dy.as_slice();
        let x_s = x.as_slice();
        let mut out = alloc::acquire_zeroed(n * m);
        dadj_rows_parallel(&mut out, n, m, |i| {
            let shard = &self.shards[i / self.shard_rows];
            let rr = i % self.shard_rows;
            &shard.col_idx[shard.row_ptr[rr]..shard.row_ptr[rr + 1]]
        }, dy_s, x_s, batch, c);
        Tensor::from_vec(out, [n, m])
    }
}

/// Dense twin of [`Csr::dadj`]: the full `(n, m)` adjacency gradient
/// `dA = Σ_b dY[b] · X[b]ᵀ` for `dy: (..b, n, c)` and `x: (..b, m, c)`,
/// computed row-wise by the vectorized [`simd::dadj_row`] kernel over the
/// full column list (no `(b, n, m)` intermediate is materialized) —
/// bit-identical to the per-entry pair-dot reference on every tier.
///
/// # Panics
/// Panics on rank/shape mismatches between `dy` and `x`.
pub fn dadj_dense(dy: &Tensor, x: &Tensor) -> Tensor {
    let r = dy.rank();
    let n = dy.dim(r - 2);
    let m = x.dim(x.rank() - 2);
    let (batch, c) = dadj_check(dy, x, n, m);
    let _g = obs::kernel(
        obs::Kernel::Dadj,
        2 * (batch * n * m * c) as u64,
        4 * (dy.numel() + x.numel()) as u64,
        4 * (n * m) as u64,
    );
    obs::tally_simd(dispatch::simd_tier().index());
    let dy_s = dy.as_slice();
    let x_s = x.as_slice();
    let all_cols: Vec<u32> = (0..m as u32).collect();
    let mut out = alloc::acquire_zeroed(n * m);
    dadj_rows_parallel(&mut out, n, m, |_| all_cols.as_slice(), dy_s, x_s, batch, c);
    Tensor::from_vec(out, [n, m])
}

/// Shape checks shared by the two `dadj` kernels; returns `(batch, c)`.
fn dadj_check(dy: &Tensor, x: &Tensor, n: usize, m: usize) -> (usize, usize) {
    let (rd, rx) = (dy.rank(), x.rank());
    assert!(rd >= 2 && rx >= 2, "dadj requires rank >= 2 operands");
    assert_eq!(
        dy.dims()[..rd - 2],
        x.dims()[..rx - 2],
        "dadj batch dims differ: {} vs {}",
        dy.shape(),
        x.shape()
    );
    assert_eq!(dy.dim(rd - 2), n, "dadj dy rows mismatch");
    assert_eq!(x.dim(rx - 2), m, "dadj x rows mismatch");
    let c = dy.dim(rd - 1);
    assert_eq!(x.dim(rx - 1), c, "dadj feature dims differ");
    (dy.dims()[..rd - 2].iter().product(), c)
}

/// Shared row-parallel harness of the three `dadj` variants: fills row
/// `i` of a pre-zeroed `(n, m)` buffer at the columns `cols(i)` via
/// [`simd::dadj_row`]. Chunk boundaries are a pure function of the sizes.
#[allow(clippy::too_many_arguments)]
fn dadj_rows_parallel<'a>(
    out: &mut [f32],
    n: usize,
    m: usize,
    cols: impl Fn(usize) -> &'a [u32] + Sync,
    dy_s: &[f32],
    x_s: &[f32],
    batch: usize,
    c: usize,
) {
    let fill_rows = |row0: usize, out_rows: &mut [f32]| {
        for (rr, out_row) in out_rows.chunks_mut(m).enumerate() {
            let i = row0 + rr;
            simd::dadj_row(dy_s, x_s, i, cols(i), out_row, batch, n, m, c);
        }
    };
    if n * m >= PARALLEL_THRESHOLD && n >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial() {
        let rows_per = n.div_ceil(pool::num_threads().min(n));
        pool::par_chunks_mut(out, rows_per * m, |ci, chunk| {
            fill_rows(ci * rows_per, chunk);
        });
    } else {
        fill_rows(0, out);
    }
}

/// Shape checks shared by the tensor-returning spmm entry points;
/// returns `(batch, c)`.
fn spmm_shape_check(x: &Tensor, inner: usize) -> (usize, usize) {
    let r = x.rank();
    assert!(r >= 2, "spmm requires a rank >= 2 rhs");
    assert_eq!(
        x.dim(r - 2),
        inner,
        "spmm inner dimension mismatch: lhs has {} columns, rhs {}",
        inner,
        x.shape()
    );
    (x.dims()[..r - 2].iter().product(), x.dim(r - 1))
}

/// Row-parallel CSR·dense product over the given CSR arrays:
/// `out[b, i, :] = Σ_p vals[p] · x[b, cols[p], :]` with the nonzeros of
/// each row processed in groups aligned to absolute ⌊col/4⌋ boundaries
/// ([`simd::spmm_row`]) — the exact accumulation structure of the dense
/// GEMM kernel, so results match the dense product under `f32` equality.
#[allow(clippy::too_many_arguments)]
fn spmm_arrays(view: CsrView<'_>, out_rows: usize, inner: usize, x: &Tensor, kind: obs::Kernel) -> Tensor {
    let (batch, c) = spmm_shape_check(x, inner);
    let _g = obs::kernel(
        kind,
        2 * (batch * view.values.len() * c) as u64,
        4 * (view.values.len() + x.numel()) as u64,
        4 * (batch * out_rows * c) as u64,
    );
    obs::tally_simd(dispatch::simd_tier().index());
    let xs = x.as_slice();
    // Accumulating kernel (and rows without nonzeros must stay zero), so
    // the recycled buffer has to come back zeroed.
    let mut out = alloc::acquire_zeroed(batch * out_rows * c);
    let pooled = spmm_pooled_hint(out.len(), batch * out_rows);
    spmm_core(
        view,
        ShardSpan::whole(out_rows),
        ShardSpan::whole(inner),
        xs,
        batch,
        c,
        &mut out,
        pooled,
    );
    let r = x.rank();
    let mut dims = x.dims().to_vec();
    dims[r - 2] = out_rows;
    Tensor::from_vec(out, dims.as_slice())
}

/// Borrowed view of one product direction's CSR arrays together with the
/// build-time decoded accumulation groups ([`decode_row_groups`]).
#[derive(Clone, Copy)]
struct CsrView<'a> {
    row_ptr: &'a [usize],
    col_idx: &'a [u32],
    values: &'a [f32],
    groups: &'a [u64],
    group_ptr: &'a [usize],
}

impl Csr {
    /// Forward-direction view (`A`, rows = `n_rows`).
    fn fwd_view(&self) -> CsrView<'_> {
        CsrView {
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            values: &self.values,
            groups: &self.groups,
            group_ptr: &self.group_ptr,
        }
    }

    /// Transposed-direction view (`Aᵀ`, rows = `n_cols`).
    fn t_view(&self) -> CsrView<'_> {
        CsrView {
            row_ptr: &self.t_row_ptr,
            col_idx: &self.t_col_idx,
            values: &self.t_values,
            groups: &self.t_groups,
            group_ptr: &self.t_group_ptr,
        }
    }
}

/// Whether [`spmm_core`] would row-split `total_rows` rows of an
/// `out_len`-element product across the worker pool right now. Plan
/// builders pin this decision at compile time (the pool size is fixed
/// for the process lifetime).
pub fn spmm_pooled_hint(out_len: usize, total_rows: usize) -> bool {
    out_len >= PARALLEL_THRESHOLD && total_rows >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial()
}

/// One axis of a (possibly sharded) spmm: `local` rows of CSR indexing
/// that map to rows `[offset, offset + local)` of a `total`-row global
/// operand. `whole(n)` is the unsharded identity mapping.
#[derive(Clone, Copy)]
struct ShardSpan {
    local: usize,
    offset: usize,
    total: usize,
}

impl ShardSpan {
    fn whole(n: usize) -> ShardSpan {
        ShardSpan { local: n, offset: 0, total: n }
    }
}

/// Lifetime-erased output base pointer handed to pool tasks. Safe because
/// every task writes a disjoint set of output rows derived purely from
/// its task index, and the owning slice outlives the parallel region.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessed via a method so closures capture the (Sync) wrapper, not
    /// the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// The shared CSR·dense core over raw slices: accumulates
/// `out[b, rows.offset + i, :] += Σ_p vals[p] · x[b, x_rows.offset + cols[p], :]`
/// into a pre-zeroed (or mid-accumulation, for sharded `spmm_t`) `out`.
///
/// Loop order is column-tile outer (the active x panel stays
/// cache-resident across CSR rows), rows next (each row's in-tile group
/// range is located with one pair of binary searches over the build-time
/// decoded groups), batch innermost inside the row kernel (the group walk
/// is shared across batch blocks). Tiling, chunk boundaries, and the
/// per-element accumulation sequence are pure functions of the sizes —
/// pooled, serial, sharded, and unsharded walks all produce identical
/// bits per output element.
#[allow(clippy::too_many_arguments)]
fn spmm_core(
    view: CsrView<'_>,
    rows: ShardSpan,
    x_rows: ShardSpan,
    xs: &[f32],
    batch: usize,
    c: usize,
    out: &mut [f32],
    pooled: bool,
) {
    let CsrView { row_ptr, col_idx, values, groups, group_ptr } = view;
    let inner = x_rows.local;
    debug_assert_eq!(xs.len(), batch * x_rows.total * c);
    debug_assert_eq!(out.len(), batch * rows.total * c);
    // Shape-only tiling decision (thread- and tier-invariant): tile the
    // contraction axis when one batch's x slab overflows the budget.
    let tile_w = (X_TILE_BYTES / (4 * c.max(1))).max(4) & !3;
    let base = SendPtr(out.as_mut_ptr());
    let fill = |i0: usize, i1: usize| {
        // Ascending 4-aligned column tiles, rows, then batch: every
        // middle tile's columns sit below ⌊inner/4⌋·4 (tile edges are
        // multiples of 4), so groups complete within their tile and each
        // output element accumulates its nonzeros in the untiled order —
        // bit-identical, just with a cache-sized x window. Groups were
        // decoded once at CSR build; a tile selects a contiguous group
        // subrange because group start columns ascend within a row.
        let mut t0 = 0;
        loop {
            let t1 = (t0 + tile_w).min(inner);
            for i in i0..i1 {
                let row_cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                let row_vals = &values[row_ptr[i]..row_ptr[i + 1]];
                let row_groups = &groups[group_ptr[i]..group_ptr[i + 1]];
                let gs = if t0 == 0 && t1 == inner {
                    row_groups
                } else {
                    let start_col = |g: u64| row_cols[(g >> 3) as usize] as usize;
                    let g0 = row_groups.partition_point(|&g| start_col(g) < t0);
                    let g1 = row_groups.partition_point(|&g| start_col(g) < t1);
                    &row_groups[g0..g1]
                };
                if gs.is_empty() {
                    continue;
                }
                // SAFETY: tasks own disjoint row ranges `[i0, i1)`; for a
                // fixed `i` all batch slabs belong to the same task, and
                // `out` outlives the parallel region. Strides step whole
                // batch slabs, so every access stays inside `xs`/`out`.
                unsafe {
                    simd::spmm_row_grouped_batched(
                        gs,
                        row_cols,
                        row_vals,
                        xs.as_ptr().add(x_rows.offset * c),
                        x_rows.total * c,
                        base.get().add((rows.offset + i) * c),
                        rows.total * c,
                        batch,
                        inner,
                        c,
                    );
                }
            }
            if t1 == inner {
                break;
            }
            t0 = t1;
        }
    };
    if pooled && rows.local > 1 && !pool::is_serial() {
        let rows_per = rows.local.div_ceil(pool::num_threads().min(rows.local));
        let n_tasks = rows.local.div_ceil(rows_per);
        pool::par_for(n_tasks, &|t| {
            let i0 = t * rows_per;
            fill(i0, (i0 + rows_per).min(rows.local));
        });
    } else {
        fill(0, rows.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Random matrix with an exact fraction of zero entries per row.
    fn sparse_rand(n: usize, m: usize, zero_frac: f32, seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        let mut t = Tensor::rand_uniform([n, m], 0.1, 1.0, &mut rng);
        let zeros_per_row = (m as f32 * zero_frac) as usize;
        let data = t.as_mut_slice();
        for i in 0..n {
            let row = &mut data[i * m..(i + 1) * m];
            let mut zeroed = 0;
            while zeroed < zeros_per_row {
                let j = (rng.next_u64() % m as u64) as usize;
                if row[j] != 0.0 {
                    row[j] = 0.0;
                    zeroed += 1;
                }
            }
        }
        t
    }

    #[test]
    fn round_trip_preserves_bits() {
        for zf in [0.0f32, 0.3, 0.7, 1.0] {
            let a = sparse_rand(13, 9, zf, 42);
            let csr = Csr::from_dense(&a);
            assert_eq!(csr.to_dense(), a, "zero_frac {zf}");
            assert_eq!(
                csr.nnz(),
                a.as_slice().iter().filter(|&&v| v != 0.0).count()
            );
        }
    }

    #[test]
    fn from_dense_all_zero_matrix() {
        let a = Tensor::zeros([5, 7]);
        let csr = Csr::from_dense(&a);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
        assert_eq!(csr.to_dense(), a);
        let x = Tensor::ones([7, 3]);
        assert_eq!(csr.spmm(&x), Tensor::zeros([5, 3]));
        assert_eq!(csr.spmm_t(&Tensor::ones([5, 3])), Tensor::zeros([7, 3]));
    }

    #[test]
    fn from_dense_interior_empty_rows() {
        // Rows 1 and 3 are empty; CSR row spans must stay well-formed.
        let a = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 4.0, 0.0],
            [5, 3],
        );
        let csr = Csr::from_dense(&a);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.to_dense(), a);
        let mut rng = Rng64::new(11);
        let x = Tensor::rand_uniform([2, 3, 4], -1.0, 1.0, &mut rng);
        assert_eq!(csr.spmm(&x), a.matmul(&x));
        let g = Tensor::rand_uniform([2, 5, 4], -1.0, 1.0, &mut rng);
        assert_eq!(csr.spmm_t(&g), a.matmul_tn(&g));
    }

    #[test]
    fn from_dense_single_column_matrix() {
        let a = Tensor::from_vec(vec![0.5, 0.0, -2.0, 0.0], [4, 1]);
        let csr = Csr::from_dense(&a);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense(), a);
        let mut rng = Rng64::new(12);
        let x = Tensor::rand_uniform([1, 6], -1.0, 1.0, &mut rng);
        assert_eq!(csr.spmm(&x), a.matmul(&x));
        let g = Tensor::rand_uniform([4, 6], -1.0, 1.0, &mut rng);
        assert_eq!(csr.spmm_t(&g), a.matmul_tn(&g));
    }

    #[test]
    fn from_dense_rows_matches_row_span() {
        let a = sparse_rand(14, 9, 0.5, 21);
        let shard = Csr::from_dense_rows(&a, 4, 12);
        assert_eq!(shard.n_rows(), 8);
        assert_eq!(shard.n_cols(), 9);
        let dense = shard.to_dense();
        let full = a.as_slice();
        for i in 0..8 {
            for j in 0..9 {
                assert_eq!(dense.as_slice()[i * 9 + j], full[(i + 4) * 9 + j]);
            }
        }
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = Rng64::new(7);
        for (n, m, c) in [(17, 11, 5), (32, 16, 8), (9, 23, 3)] {
            let a = sparse_rand(n, m, 0.6, n as u64);
            let x = Tensor::rand_uniform([m, c], -1.0, 1.0, &mut rng);
            let csr = Csr::from_dense(&a);
            assert_eq!(csr.spmm(&x), a.matmul(&x), "({n},{m},{c})");
        }
    }

    #[test]
    fn spmm_batched_matches_dense() {
        let mut rng = Rng64::new(8);
        let a = sparse_rand(12, 10, 0.5, 3);
        let x = Tensor::rand_uniform([4, 10, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let y = csr.spmm(&x);
        assert_eq!(y.dims(), &[4, 12, 6]);
        assert_eq!(y, a.matmul(&x));
    }

    #[test]
    fn spmm_into_matches_spmm_bitwise() {
        let mut rng = Rng64::new(77);
        let a = sparse_rand(12, 10, 0.5, 3);
        let x = Tensor::rand_uniform([4, 10, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let want = csr.spmm(&x);
        for pooled in [false, true] {
            // Dirty slot: spmm_into must zero it before accumulating.
            let mut out = vec![7.0f32; 4 * 12 * 6];
            csr.spmm_into(x.as_slice(), 4, 6, &mut out, pooled);
            for (i, (g, w)) in out.iter().zip(want.as_slice()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "pooled={pooled} [{i}]");
            }
        }
    }

    #[test]
    fn spmm_t_matches_transposed_product() {
        let mut rng = Rng64::new(9);
        let a = sparse_rand(14, 9, 0.6, 4);
        let g = Tensor::rand_uniform([3, 14, 5], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let got = csr.spmm_t(&g);
        assert_eq!(got.dims(), &[3, 9, 5]);
        assert_eq!(got, a.matmul_tn(&g));
    }

    #[test]
    fn dadj_matches_dense_on_support() {
        let mut rng = Rng64::new(10);
        let a = sparse_rand(11, 7, 0.55, 5);
        let dy = Tensor::rand_uniform([2, 11, 6], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform([2, 7, 6], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let sparse = csr.dadj(&dy, &x);
        let dense = dadj_dense(&dy, &x);
        for (idx, (&av, (&s, &d))) in a
            .as_slice()
            .iter()
            .zip(sparse.as_slice().iter().zip(dense.as_slice()))
            .enumerate()
        {
            if av != 0.0 {
                assert_eq!(s.to_bits(), d.to_bits(), "support entry {idx}");
            } else {
                assert_eq!(s, 0.0, "off-support entry {idx} must stay zero");
            }
        }
    }

    #[test]
    fn dadj_dense_matches_pair_dot_reference() {
        // The vectorized full-row kernel must reproduce the per-entry
        // pair-dot association bit-for-bit.
        let mut rng = Rng64::new(23);
        for (batch, n, m, c) in [(1, 3, 7, 5), (2, 9, 6, 33), (3, 5, 19, 7)] {
            let dy = Tensor::rand_uniform([batch, n, c], -1.0, 1.0, &mut rng);
            let x = Tensor::rand_uniform([batch, m, c], -1.0, 1.0, &mut rng);
            let got = dadj_dense(&dy, &x);
            for i in 0..n {
                for j in 0..m {
                    let want = simd::pair_dot(
                        dy.as_slice(),
                        x.as_slice(),
                        i,
                        j,
                        batch,
                        n,
                        m,
                        c,
                    );
                    assert_eq!(
                        got.as_slice()[i * m + j].to_bits(),
                        want.to_bits(),
                        "({batch},{n},{m},{c}) entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        let a = Tensor::zeros([4, 3]);
        let csr = Csr::from_dense(&a);
        assert_eq!(csr.nnz(), 0);
        let x = Tensor::ones([3, 2]);
        assert_eq!(csr.spmm(&x), Tensor::zeros([4, 2]));
    }

    #[test]
    fn sharded_products_bit_identical_to_unsharded() {
        let mut rng = Rng64::new(31);
        for (n, m, c, zf) in [(23, 11, 6, 0.5), (40, 16, 5, 0.7), (9, 5, 3, 0.3)] {
            let a = sparse_rand(n, m, zf, n as u64 + 100);
            let csr = Csr::from_dense(&a);
            let x = Tensor::rand_uniform([3, m, c], -1.0, 1.0, &mut rng);
            let g = Tensor::rand_uniform([3, n, c], -1.0, 1.0, &mut rng);
            let want_f = csr.spmm(&x);
            let want_t = csr.spmm_t(&g);
            let want_d = csr.dadj(&g, &x);
            for k in [1usize, 2, 5] {
                let sharded = ShardedCsr::from_dense(&a, k);
                assert_eq!(sharded.nnz(), csr.nnz(), "k={k}");
                assert_eq!(sharded.to_dense(), a, "k={k}");
                let got_f = sharded.spmm(&x);
                let got_t = sharded.spmm_t(&g);
                let got_d = sharded.dadj(&g, &x);
                for (name, got, want) in [
                    ("spmm", &got_f, &want_f),
                    ("spmm_t", &got_t, &want_t),
                    ("dadj", &got_d, &want_d),
                ] {
                    assert_eq!(got.dims(), want.dims());
                    for (i, (gv, wv)) in
                        got.as_slice().iter().zip(want.as_slice()).enumerate()
                    {
                        assert_eq!(
                            gv.to_bits(),
                            wv.to_bits(),
                            "({n},{m},{c}) k={k} {name} [{i}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_spmm_into_matches_unsharded() {
        let mut rng = Rng64::new(32);
        let a = sparse_rand(20, 8, 0.5, 6);
        let x = Tensor::rand_uniform([2, 8, 5], -1.0, 1.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let want = csr.spmm(&x);
        for k in [1usize, 3] {
            let sharded = ShardedCsr::from_dense(&a, k);
            for pooled in [false, true] {
                let mut out = vec![9.0f32; 2 * 20 * 5];
                sharded.spmm_into(x.as_slice(), 2, 5, &mut out, pooled);
                for (i, (g, w)) in out.iter().zip(want.as_slice()).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "k={k} pooled={pooled} [{i}]");
                }
            }
        }
    }

    #[test]
    fn mode_toggle_round_trips() {
        let prev = set_sparse_mode(SparseMode::On);
        assert!(should_use_sparse(64, 64, 1, 0));
        assert_eq!(set_sparse_mode(SparseMode::Off), SparseMode::On);
        assert!(!should_use_sparse(1000, 1000, 8, 0));
        set_sparse_mode(SparseMode::Auto);
        // Auto: shapes below the 32×32 floor stay dense regardless of
        // density; past it the batched-savings cost model decides.
        assert!(!should_use_sparse(10, 10, 4, 50));
        assert!(should_use_sparse(100, 100, 4, 5000));
        assert!(!should_use_sparse(100, 100, 4, 9000));
        assert!(!should_use_sparse(100, 100, 1, 5000));
        // 50 % density, batched: enough zeros to pay for the CSR but
        // the dense GEMMs still win the products → hybrid.
        assert_eq!(spmm_dispatch(100, 100, 4, 5000), SpmmDispatch::Hybrid);
        // ≤ 25 % density: the CSR products win outright.
        assert_eq!(spmm_dispatch(100, 100, 4, 2500), SpmmDispatch::Sparse);
        assert_eq!(spmm_dispatch(100, 100, 4, 1000), SpmmDispatch::Sparse);
        // Dense matrix, tiny shapes, or unbatched: no CSR at all.
        assert_eq!(spmm_dispatch(100, 100, 4, 10000), SpmmDispatch::Dense);
        assert_eq!(spmm_dispatch(10, 10, 4, 10), SpmmDispatch::Dense);
        assert_eq!(spmm_dispatch(100, 100, 1, 5000), SpmmDispatch::Dense);
        // Forced modes collapse the split.
        set_sparse_mode(SparseMode::On);
        assert_eq!(spmm_dispatch(100, 100, 4, 5000), SpmmDispatch::Sparse);
        set_sparse_mode(SparseMode::Off);
        assert_eq!(spmm_dispatch(100, 100, 4, 1000), SpmmDispatch::Dense);
        set_sparse_mode(prev);
    }

    #[test]
    fn diffuse_plan_accessors() {
        // 8 rows so a 2-shard plan survives the 4-aligned boundary snap.
        let mut data = vec![0.0f32; 8 * 4];
        data[0] = 1.0;
        data[13] = 2.0;
        let a = Tensor::from_vec(data, [8, 4]);
        let dense = DiffusePlan::Dense;
        assert_eq!(dense.dispatch(), SpmmDispatch::Dense);
        assert!(dense.csr().is_none());
        assert!(!dense.products_sparse());
        assert_eq!(dense.shard_count(), 1);
        let hybrid =
            DiffusePlan::build(SpmmDispatch::Hybrid, || ShardedCsr::from_dense(&a, 2));
        assert_eq!(hybrid.dispatch(), SpmmDispatch::Hybrid);
        assert!(!hybrid.products_sparse());
        assert_eq!(hybrid.shard_count(), 2);
        let sparse =
            DiffusePlan::build(SpmmDispatch::Sparse, || ShardedCsr::from_dense(&a, 1));
        assert!(sparse.products_sparse());
        assert_eq!(sparse.csr().unwrap().nnz(), 2);
    }
}
