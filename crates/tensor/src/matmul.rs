//! Matrix multiplication kernels.
//!
//! The 2-D kernel is a cache-blocked i-k-j loop: the inner loop runs over
//! contiguous rows of both `b` and the output, which auto-vectorizes well
//! and avoids any transposition. Batched matmul maps the 2-D kernel over
//! leading dimensions. Large outputs split their row range (2-D) or batch
//! range (batched) across the persistent worker [`pool`](crate::pool) —
//! no per-call thread spawning — and each chunk runs the identical serial
//! kernel, so parallel results are bit-identical to serial ones.

use crate::alloc;
use crate::pool;
use crate::tensor::Tensor;

/// Below this many output elements the parallel path isn't worth the
/// pool round-trip.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Below this many *total* output elements a batched matmul stays serial.
const BATCH_PARALLEL_THRESHOLD: usize = 32 * 1024;

/// Tile edge of the cache-blocked transpose kernel (32² f32 = 4 KiB,
/// comfortably inside L1 for source and destination tiles together).
const TRANSPOSE_BLOCK: usize = 32;

/// Below this many elements a transpose stays serial.
const TRANSPOSE_PARALLEL_THRESHOLD: usize = 64 * 1024;

/// `C[m×n] = A[m×k] · B[k×n]` into a caller-provided buffer.
fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n >= PARALLEL_THRESHOLD && m >= 8 && !pool::is_serial() {
        // Rows of C are independent; chunk boundaries only decide which
        // worker computes which rows, never the arithmetic within a row.
        let rows_per = m.div_ceil(pool::num_threads().min(m));
        pool::par_chunks_mut(c, rows_per * n, |chunk_i, c_chunk| {
            let row0 = chunk_i * rows_per;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            matmul_serial(a_chunk, b, c_chunk, rows, k, n);
        });
    } else {
        matmul_serial(a, b, c, m, k, n);
    }
}

/// Serial i-k-j kernel with a 4-wide k unroll. The k-remainder loop runs
/// the same unconditional multiply-accumulate as the unrolled body (no
/// zero-skip), so results do not depend on where the unroll boundary
/// lands relative to zero entries of `a`.
fn matmul_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        let a_row = &a[i * k..(i + 1) * k];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for j in 0..n {
                c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        while kk < k {
            let av = a_row[kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                c_row[j] += av * b_row[j];
            }
            kk += 1;
        }
    }
}

/// Tiled transpose of the source columns `[j0, j1)` of an `m×n` matrix
/// into `d`, which holds destination rows `j0..j1` (each of length `m`).
/// Pure scatter — every output element is written exactly once, so any
/// tiling or threading of this kernel is bit-identical.
fn transpose_blocked(s: &[f32], d: &mut [f32], m: usize, n: usize, j0: usize, j1: usize) {
    debug_assert_eq!(d.len(), (j1 - j0) * m);
    for ib in (0..m).step_by(TRANSPOSE_BLOCK) {
        let i_end = (ib + TRANSPOSE_BLOCK).min(m);
        for jb in (j0..j1).step_by(TRANSPOSE_BLOCK) {
            let j_end = (jb + TRANSPOSE_BLOCK).min(j1);
            for i in ib..i_end {
                let s_row = &s[i * n..i * n + n];
                for j in jb..j_end {
                    d[(j - j0) * m + i] = s_row[j];
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported rank combinations:
    /// * `(m,k) · (k,n) -> (m,n)`
    /// * `(..batch, m, k) · (k, n) -> (..batch, m, n)` — shared right matrix
    /// * `(..batch, m, k) · (..batch, k, n) -> (..batch, m, n)` — per-batch
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or unsupported rank pairing.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (ra, rb) = (self.rank(), other.rank());
        assert!(ra >= 2 && rb >= 2, "matmul requires rank >= 2 operands");
        let (m, k) = (self.dim(ra - 2), self.dim(ra - 1));
        let (k2, n) = (other.dim(rb - 2), other.dim(rb - 1));
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: {} vs {}",
            self.shape(),
            other.shape()
        );

        let batch_a: usize = self.dims()[..ra - 2].iter().product();
        let batch_b: usize = other.dims()[..rb - 2].iter().product();

        let mut out_dims: Vec<usize> = if batch_b == 1 && rb == 2 {
            let mut d = self.dims()[..ra - 2].to_vec();
            d.extend_from_slice(&[m, n]);
            d
        } else {
            assert_eq!(
                self.dims()[..ra - 2],
                other.dims()[..rb - 2],
                "batched matmul requires identical leading dims: {} vs {}",
                self.shape(),
                other.shape()
            );
            let mut d = self.dims()[..ra - 2].to_vec();
            d.extend_from_slice(&[m, n]);
            d
        };
        if out_dims.is_empty() {
            out_dims = vec![m, n];
        }

        // The kernel accumulates (`c[j] += ...`), so a recycled buffer must
        // come back zeroed.
        let mut out = alloc::acquire_zeroed(batch_a * m * n);
        let a = self.as_slice();
        let b = other.as_slice();
        let shared_rhs = batch_b == 1 && rb == 2;
        // Few large batch elements parallelize better over rows (the
        // serial loop below, whose matmul_into splits rows); many batch
        // elements parallelize better over the batch dimension.
        if batch_a >= 4 && batch_a * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
            // Parallelize over the batch dimension: every batch element is
            // an independent 2-D product, each computed by the serial
            // kernel (nested pooling would be refused anyway).
            pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                let a_sl = &a[bi * m * k..(bi + 1) * m * k];
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * k * n..(bi + 1) * k * n]
                };
                matmul_serial(a_sl, b_sl, c_chunk, m, k, n);
            });
        } else {
            for bi in 0..batch_a {
                let a_sl = &a[bi * m * k..(bi + 1) * m * k];
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * k * n..(bi + 1) * k * n]
                };
                matmul_into(a_sl, b_sl, &mut out[bi * m * n..(bi + 1) * m * n], m, k, n);
            }
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// 2-D transpose (materialized). For higher ranks use
    /// [`transpose_last2`](Self::transpose_last2).
    pub fn t(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t() requires a rank-2 tensor, got {}", self.shape());
        self.transpose_last2()
    }

    /// Swaps the last two dimensions, materializing the result.
    ///
    /// Uses a cache-blocked tile kernel ([`TRANSPOSE_BLOCK`]² tiles keep
    /// both the source rows and destination rows resident in L1) and runs
    /// on the worker pool: over the batch dimension when batched, over
    /// destination row blocks for a single large matrix.
    pub fn transpose_last2(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 2, "transpose_last2 requires rank >= 2");
        let (m, n) = (self.dim(r - 2), self.dim(r - 1));
        let batch: usize = self.dims()[..r - 2].iter().product();
        let src = self.as_slice();
        // Recycled buffer: the transpose scatter writes every element once.
        let mut out = alloc::acquire(src.len());
        let parallel = src.len() >= TRANSPOSE_PARALLEL_THRESHOLD && !pool::is_serial();
        if parallel && batch > 1 {
            pool::par_chunks_mut(&mut out, m * n, |bi, d| {
                transpose_blocked(&src[bi * m * n..(bi + 1) * m * n], d, m, n, 0, n);
            });
        } else if parallel && m * n > 0 {
            // Single matrix: each task owns TRANSPOSE_BLOCK destination
            // rows, i.e. source columns [j0, j1).
            pool::par_chunks_mut(&mut out, TRANSPOSE_BLOCK * m, |ci, d_chunk| {
                let j0 = ci * TRANSPOSE_BLOCK;
                let j1 = j0 + d_chunk.len() / m;
                transpose_blocked(src, d_chunk, m, n, j0, j1);
            });
        } else {
            for bi in 0..batch {
                let s = &src[bi * m * n..(bi + 1) * m * n];
                let d = &mut out[bi * m * n..(bi + 1) * m * n];
                transpose_blocked(s, d, m, n, 0, n);
            }
        }
        let mut dims = self.dims().to_vec();
        dims.swap(r - 2, r - 1);
        Tensor::from_vec(out, dims.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = t(&[5., 6., 7., 8.], &[2, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[7., 8., 9., 10., 11., 12.], &[3, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
    }

    #[test]
    fn matmul_batched_shared_rhs() {
        // (2,2,3) @ (3,1)
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(&[1., 1., 1.], &[3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.as_slice(), &[3., 12., 21., 30.]);
    }

    #[test]
    fn matmul_batched_per_batch() {
        let a = t(&[1., 0., 0., 1., 2., 0., 0., 2.], &[2, 2, 2]);
        let b = t(&[1., 2., 3., 4., 1., 2., 3., 4.], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 2., 4., 6., 8.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_mismatch_panics() {
        t(&[1., 2.], &[1, 2]).matmul(&t(&[1., 2., 3.], &[3, 1]));
    }

    #[test]
    fn matmul_matches_naive_large() {
        // Cross-check the unrolled/parallel kernel against a naive triple
        // loop on a size that exercises the k-remainder path.
        let mut rng = crate::Rng64::new(99);
        let (m, k, n) = (37, 23, 41);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for x in 0..k {
                    acc += a.as_slice()[i * k + x] * b.as_slice()[x * n + j];
                }
                let got = c.as_slice()[i * n + j];
                assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to trigger the threaded path.
        let mut rng = crate::Rng64::new(5);
        let a = Tensor::rand_uniform([300, 64], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([64, 300], -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        // Spot check a few entries against a naive dot product.
        for &(i, j) in &[(0usize, 0usize), (150, 150), (299, 299), (7, 250)] {
            let mut acc = 0.0f32;
            for x in 0..64 {
                acc += a.as_slice()[i * 64 + x] * b.as_slice()[x * 300 + j];
            }
            assert!((c.as_slice()[i * 300 + j] - acc).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_2d() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = a.t();
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_last2_batched() {
        let a = t(&(0..8).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 2]);
        let b = a.transpose_last2();
        assert_eq!(b.as_slice(), &[0., 2., 1., 3., 4., 6., 5., 7.]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let mut rng = crate::Rng64::new(1);
        let a = Tensor::rand_uniform([5, 7], 0.0, 1.0, &mut rng);
        assert_eq!(a.t().t(), a);
    }
}
