//! Matrix multiplication kernels.
//!
//! The 2-D kernel dispatches through [`simd`](crate::simd): a
//! register-blocked microkernel on AVX2/AVX-512/NEON, the i-k-j scalar
//! reference otherwise — all variants bit-identical (DESIGN.md §12).
//! Batched matmul maps the 2-D kernel over leading dimensions. Large
//! outputs split their row range (2-D) or batch range (batched) across
//! the persistent worker [`pool`](crate::pool) — no per-call thread
//! spawning — and each chunk runs the identical single-thread kernel, so
//! parallel results are bit-identical to serial ones.
//!
//! `matmul_nt` / `matmul_tn` keep their transpose-free strided kernels
//! for small products, but once a product is large enough
//! ([`PACK_MIN_FLOPS`]) they *pack* the transposed operand into a
//! scratch buffer (a plain blocked transpose, invisible to the obs
//! counters and the allocator's live/peak audit) and run the same
//! blocked GEMM — contiguous vector loads instead of strided ones. The
//! packed path is bit-identical to the strided one because both perform
//! the scalar kernel's 4-wide k-group accumulation per output element.

use crate::alloc;
use crate::dispatch;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;
use sagdfn_obs as obs;

/// Below this many output elements the parallel path isn't worth the
/// pool round-trip.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Below this many *total* output elements a batched matmul stays serial.
const BATCH_PARALLEL_THRESHOLD: usize = 32 * 1024;

/// Tile edge of the cache-blocked transpose kernel (32² f32 = 4 KiB,
/// comfortably inside L1 for source and destination tiles together).
const TRANSPOSE_BLOCK: usize = 32;

/// Below this many elements a transpose stays serial.
const TRANSPOSE_PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Minimum flop count (`2·m·n·p`) before `matmul_nt` / `matmul_tn` pack
/// the transposed operand for the blocked SIMD GEMM. Below this the
/// O(n·p) pack overhead isn't amortized and the strided scalar kernels
/// win; the cutover only changes which bit-identical kernel runs.
const PACK_MIN_FLOPS: usize = 1 << 18;

/// `C[m×n] = A[m×k] · B[k×n]` into a caller-provided buffer.
fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n >= PARALLEL_THRESHOLD && m >= 8 && !pool::is_serial() {
        // Rows of C are independent; chunk boundaries only decide which
        // worker computes which rows, never the arithmetic within a row.
        let rows_per = m.div_ceil(pool::num_threads().min(m));
        pool::par_chunks_mut(c, rows_per * n, |chunk_i, c_chunk| {
            let row0 = chunk_i * rows_per;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            simd::matmul(a_chunk, b, c_chunk, rows, k, n);
        });
    } else {
        simd::matmul(a, b, c, m, k, n);
    }
}

/// Whether [`gemm_into`] would row-split a `m×n` output across the
/// worker pool right now. Plan builders call this once at compile time
/// and pin the decision into the schedule; the pool size is fixed for
/// the process lifetime so the hint cannot go stale.
pub fn gemm_pooled_hint(m: usize, n: usize) -> bool {
    m * n >= PARALLEL_THRESHOLD && m >= 8 && !pool::is_serial()
}

/// `C[m×n] = A[m×k] · B[k×n]` into a caller-provided buffer with the
/// pooled/serial decision made by the caller (see [`gemm_pooled_hint`]).
/// Zero-fills `c` first, so steady-state plan executors reuse one slot
/// with no allocator traffic. Bit-identical to `Tensor::matmul` on
/// rank-2 operands: both split only row ranges, never the k loop.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, pooled: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _g = obs::kernel(
        obs::Kernel::Matmul,
        2 * m as u64 * k as u64 * n as u64,
        4 * (m * k + k * n) as u64,
        4 * (m * n) as u64,
    );
    obs::tally_simd(dispatch::simd_tier().index());
    c.fill(0.0);
    if pooled && !pool::is_serial() {
        let rows_per = m.div_ceil(pool::num_threads().min(m));
        pool::par_chunks_mut(c, rows_per * n, |chunk_i, c_chunk| {
            let row0 = chunk_i * rows_per;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            simd::matmul(a_chunk, b, c_chunk, rows, k, n);
        });
    } else {
        simd::matmul(a, b, c, m, k, n);
    }
}

/// Serial `C = A · Bᵀ` for output rows `[i0, i1)`: each output element
/// is a dot product of two contiguous rows, accumulated in the same
/// 4-wide k groups (and single-step remainder) as [`matmul_serial`], so
/// the result is bit-identical to `a.matmul(&b.t())` without ever
/// materializing the transpose.
fn matmul_nt_serial(a: &[f32], b: &[f32], c: &mut [f32], p: usize, n: usize, i0: usize, i1: usize) {
    for i in i0..i1 {
        let a_row = &a[i * p..(i + 1) * p];
        let c_row = &mut c[(i - i0) * n..(i - i0 + 1) * n];
        for (j, slot) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * p..(j + 1) * p];
            let mut acc = 0.0f32;
            let mut kk = 0;
            while kk + 4 <= p {
                acc += a_row[kk] * b_row[kk]
                    + a_row[kk + 1] * b_row[kk + 1]
                    + a_row[kk + 2] * b_row[kk + 2]
                    + a_row[kk + 3] * b_row[kk + 3];
                kk += 4;
            }
            while kk < p {
                acc += a_row[kk] * b_row[kk];
                kk += 1;
            }
            *slot = acc;
        }
    }
}

/// Serial `C = Aᵀ · B` for output rows `[i0, i1)` (columns of `A`): the
/// same k-unrolled i-k-j loop as [`matmul_serial`] with strided loads of
/// `A`'s column `i` standing in for the materialized transpose's row, so
/// the result is bit-identical to `a.t().matmul(&b)`.
#[allow(clippy::too_many_arguments)]
fn matmul_tn_serial(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    p: usize,
    m: usize,
    n: usize,
    i0: usize,
    i1: usize,
) {
    for i in i0..i1 {
        let c_row = &mut c[(i - i0) * n..(i - i0 + 1) * n];
        let mut kk = 0;
        while kk + 4 <= p {
            let a0 = a[kk * m + i];
            let a1 = a[(kk + 1) * m + i];
            let a2 = a[(kk + 2) * m + i];
            let a3 = a[(kk + 3) * m + i];
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for j in 0..n {
                c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        while kk < p {
            let av = a[kk * m + i];
            let b_row = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                c_row[j] += av * b_row[j];
            }
            kk += 1;
        }
    }
}

/// Row-splits one `rows × n` product across the pool (same thresholds as
/// [`matmul_into`]) and hands each chunk to `kernel(i0, i1, chunk)`.
fn rows_parallel(
    out: &mut [f32],
    rows: usize,
    n: usize,
    kernel: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    if rows * n >= PARALLEL_THRESHOLD && rows >= 8 && !pool::is_serial() {
        let rows_per = rows.div_ceil(pool::num_threads().min(rows));
        pool::par_chunks_mut(out, rows_per * n, |ci, chunk| {
            let i0 = ci * rows_per;
            kernel(i0, i0 + chunk.len() / n, chunk);
        });
    } else {
        kernel(0, rows, out);
    }
}

/// Tiled transpose of the source columns `[j0, j1)` of an `m×n` matrix
/// into `d`, which holds destination rows `j0..j1` (each of length `m`).
/// Pure scatter — every output element is written exactly once, so any
/// tiling or threading of this kernel is bit-identical.
fn transpose_blocked(s: &[f32], d: &mut [f32], m: usize, n: usize, j0: usize, j1: usize) {
    debug_assert_eq!(d.len(), (j1 - j0) * m);
    for ib in (0..m).step_by(TRANSPOSE_BLOCK) {
        let i_end = (ib + TRANSPOSE_BLOCK).min(m);
        for jb in (j0..j1).step_by(TRANSPOSE_BLOCK) {
            let j_end = (jb + TRANSPOSE_BLOCK).min(j1);
            for i in ib..i_end {
                let s_row = &s[i * n..i * n + n];
                for j in jb..j_end {
                    d[(j - j0) * m + i] = s_row[j];
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported rank combinations:
    /// * `(m,k) · (k,n) -> (m,n)`
    /// * `(..batch, m, k) · (k, n) -> (..batch, m, n)` — shared right matrix
    /// * `(m, k) · (..batch, k, n) -> (..batch, m, n)` — shared left matrix
    /// * `(..batch, m, k) · (..batch, k, n) -> (..batch, m, n)` — per-batch
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or unsupported rank pairing.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (ra, rb) = (self.rank(), other.rank());
        assert!(ra >= 2 && rb >= 2, "matmul requires rank >= 2 operands");
        let (m, k) = (self.dim(ra - 2), self.dim(ra - 1));
        let (k2, n) = (other.dim(rb - 2), other.dim(rb - 1));
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: {} vs {}",
            self.shape(),
            other.shape()
        );

        let batch_a: usize = self.dims()[..ra - 2].iter().product();
        let batch_b: usize = other.dims()[..rb - 2].iter().product();
        let shared_rhs = batch_b == 1 && rb == 2;
        let shared_lhs = ra == 2 && rb > 2;

        let mut out_dims: Vec<usize> = if shared_lhs {
            let mut d = other.dims()[..rb - 2].to_vec();
            d.extend_from_slice(&[m, n]);
            d
        } else if shared_rhs {
            let mut d = self.dims()[..ra - 2].to_vec();
            d.extend_from_slice(&[m, n]);
            d
        } else {
            assert_eq!(
                self.dims()[..ra - 2],
                other.dims()[..rb - 2],
                "batched matmul requires identical leading dims: {} vs {}",
                self.shape(),
                other.shape()
            );
            let mut d = self.dims()[..ra - 2].to_vec();
            d.extend_from_slice(&[m, n]);
            d
        };
        if out_dims.is_empty() {
            out_dims = vec![m, n];
        }

        let batch = if shared_lhs { batch_b } else { batch_a };
        let _g = obs::kernel(
            obs::Kernel::Matmul,
            2 * (batch * m * k * n) as u64,
            4 * (self.numel() + other.numel()) as u64,
            4 * (batch * m * n) as u64,
        );
        obs::tally_simd(dispatch::simd_tier().index());
        // The kernel accumulates (`c[j] += ...`), so a recycled buffer must
        // come back zeroed.
        let mut out = alloc::acquire_zeroed(batch * m * n);
        let a = self.as_slice();
        let b = other.as_slice();
        // Few large batch elements parallelize better over rows (the
        // serial loop below, whose matmul_into splits rows); many batch
        // elements parallelize better over the batch dimension.
        if batch >= 4 && batch * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
            // Parallelize over the batch dimension: every batch element is
            // an independent 2-D product, each computed by the serial
            // kernel (nested pooling would be refused anyway).
            pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                let a_sl = if shared_lhs {
                    a
                } else {
                    &a[bi * m * k..(bi + 1) * m * k]
                };
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * k * n..(bi + 1) * k * n]
                };
                simd::matmul(a_sl, b_sl, c_chunk, m, k, n);
            });
        } else {
            for bi in 0..batch {
                let a_sl = if shared_lhs {
                    a
                } else {
                    &a[bi * m * k..(bi + 1) * m * k]
                };
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * k * n..(bi + 1) * k * n]
                };
                matmul_into(a_sl, b_sl, &mut out[bi * m * n..(bi + 1) * m * n], m, k, n);
            }
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// `self · otherᵀ` without materializing the transpose: the gradient
    /// product `dA = G · Bᵀ` of matmul backward, and attention's
    /// `E · E_Iᵀ`. Bit-identical to `self.matmul(&other.transpose_last2())`.
    ///
    /// Supported rank combinations (`p` is the contracted axis):
    /// * `(m,p) · (n,p) -> (m,n)`
    /// * `(..batch, m, p) · (n, p) -> (..batch, m, n)` — shared right matrix
    /// * `(..batch, m, p) · (..batch, n, p) -> (..batch, m, n)` — per-batch
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or unsupported rank pairing.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (ra, rb) = (self.rank(), other.rank());
        assert!(ra >= 2 && rb >= 2, "matmul_nt requires rank >= 2 operands");
        let (m, p) = (self.dim(ra - 2), self.dim(ra - 1));
        let (n, p2) = (other.dim(rb - 2), other.dim(rb - 1));
        assert_eq!(
            p, p2,
            "matmul_nt inner dimensions differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let batch: usize = self.dims()[..ra - 2].iter().product();
        let shared_rhs = rb == 2;
        if !shared_rhs {
            assert_eq!(
                self.dims()[..ra - 2],
                other.dims()[..rb - 2],
                "batched matmul_nt requires identical leading dims: {} vs {}",
                self.shape(),
                other.shape()
            );
        }
        let mut out_dims = self.dims()[..ra - 2].to_vec();
        out_dims.extend_from_slice(&[m, n]);
        let _g = obs::kernel(
            obs::Kernel::MatmulNt,
            2 * (batch * m * p * n) as u64,
            4 * (self.numel() + other.numel()) as u64,
            4 * (batch * m * n) as u64,
        );

        let a = self.as_slice();
        let b = other.as_slice();
        // Every output element is written exactly once (the packed path
        // zero-fills each chunk itself before accumulating into it).
        let mut out = alloc::acquire(batch * m * n);
        // Large products pack Bᵀ once and run the blocked SIMD GEMM;
        // small ones keep the strided dot-product kernel. Both compute
        // each element as the same 4-wide-grouped sum from zero, so the
        // cutover (a pure shape function) never changes results.
        let packed = dispatch::simd_active() && 2 * m * n * p >= PACK_MIN_FLOPS;
        obs::tally_simd(if packed { dispatch::simd_tier().index() } else { 0 });
        if packed {
            let b_batches = if shared_rhs { 1 } else { batch };
            let mut bt = alloc::acquire(b_batches * p * n);
            for bi in 0..b_batches {
                transpose_blocked(
                    &b[bi * n * p..(bi + 1) * n * p],
                    &mut bt[bi * p * n..(bi + 1) * p * n],
                    n,
                    p,
                    0,
                    p,
                );
            }
            let bt_ref = &bt;
            if batch >= 4 && batch * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
                pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                    let a_sl = &a[bi * m * p..(bi + 1) * m * p];
                    let bt_sl = if shared_rhs {
                        &bt_ref[..]
                    } else {
                        &bt_ref[bi * p * n..(bi + 1) * p * n]
                    };
                    c_chunk.fill(0.0);
                    simd::matmul(a_sl, bt_sl, c_chunk, m, p, n);
                });
            } else {
                for bi in 0..batch {
                    let a_sl = &a[bi * m * p..(bi + 1) * m * p];
                    let bt_sl = if shared_rhs {
                        &bt_ref[..]
                    } else {
                        &bt_ref[bi * p * n..(bi + 1) * p * n]
                    };
                    rows_parallel(&mut out[bi * m * n..(bi + 1) * m * n], m, n, |i0, i1, chunk| {
                        chunk.fill(0.0);
                        simd::matmul(&a_sl[i0 * p..i1 * p], bt_sl, chunk, i1 - i0, p, n);
                    });
                }
            }
            alloc::release(bt);
        } else if batch >= 4 && batch * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
            pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                let a_sl = &a[bi * m * p..(bi + 1) * m * p];
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * n * p..(bi + 1) * n * p]
                };
                matmul_nt_serial(a_sl, b_sl, c_chunk, p, n, 0, m);
            });
        } else {
            for bi in 0..batch {
                let a_sl = &a[bi * m * p..(bi + 1) * m * p];
                let b_sl = if shared_rhs {
                    b
                } else {
                    &b[bi * n * p..(bi + 1) * n * p]
                };
                rows_parallel(&mut out[bi * m * n..(bi + 1) * m * n], m, n, |i0, i1, chunk| {
                    matmul_nt_serial(a_sl, b_sl, chunk, p, n, i0, i1);
                });
            }
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// `selfᵀ · other` without materializing the transpose: the gradient
    /// products `dB = Aᵀ · G` and `dX = Aᵀ · dY` of matmul backward and
    /// diffusion backward. Bit-identical to
    /// `self.transpose_last2().matmul(&other)`.
    ///
    /// Supported rank combinations (`p` is the contracted axis):
    /// * `(p,m) · (p,n) -> (m,n)`
    /// * `(p, m) · (..batch, p, n) -> (..batch, m, n)` — shared transposed left
    /// * `(..batch, p, m) · (..batch, p, n) -> (..batch, m, n)` — per-batch
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or unsupported rank pairing.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (ra, rb) = (self.rank(), other.rank());
        assert!(ra >= 2 && rb >= 2, "matmul_tn requires rank >= 2 operands");
        let (p, m) = (self.dim(ra - 2), self.dim(ra - 1));
        let (p2, n) = (other.dim(rb - 2), other.dim(rb - 1));
        assert_eq!(
            p, p2,
            "matmul_tn inner dimensions differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let shared_lhs = ra == 2 && rb > 2;
        if !shared_lhs {
            assert_eq!(
                self.dims()[..ra - 2],
                other.dims()[..rb - 2],
                "batched matmul_tn requires identical leading dims: {} vs {}",
                self.shape(),
                other.shape()
            );
        }
        let batch: usize = other.dims()[..rb - 2].iter().product();
        let mut out_dims = other.dims()[..rb - 2].to_vec();
        out_dims.extend_from_slice(&[m, n]);
        let _g = obs::kernel(
            obs::Kernel::MatmulTn,
            2 * (batch * p * m * n) as u64,
            4 * (self.numel() + other.numel()) as u64,
            4 * (batch * m * n) as u64,
        );

        let a = self.as_slice();
        let b = other.as_slice();
        // Accumulating kernel — the recycled buffer must come back zeroed.
        let mut out = alloc::acquire_zeroed(batch * m * n);
        // Large products pack Aᵀ and run the blocked SIMD GEMM instead of
        // the strided-load kernel; same arithmetic per element, so the
        // shape-only cutover never changes results.
        let packed = dispatch::simd_active() && 2 * m * n * p >= PACK_MIN_FLOPS;
        obs::tally_simd(if packed { dispatch::simd_tier().index() } else { 0 });
        if packed {
            let a_batches = if shared_lhs { 1 } else { batch };
            let mut at = alloc::acquire(a_batches * m * p);
            for bi in 0..a_batches {
                transpose_blocked(
                    &a[bi * p * m..(bi + 1) * p * m],
                    &mut at[bi * m * p..(bi + 1) * m * p],
                    p,
                    m,
                    0,
                    m,
                );
            }
            let at_ref = &at;
            if batch >= 4 && batch * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
                pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                    let at_sl = if shared_lhs {
                        &at_ref[..]
                    } else {
                        &at_ref[bi * m * p..(bi + 1) * m * p]
                    };
                    let b_sl = &b[bi * p * n..(bi + 1) * p * n];
                    simd::matmul(at_sl, b_sl, c_chunk, m, p, n);
                });
            } else {
                for bi in 0..batch {
                    let at_sl = if shared_lhs {
                        &at_ref[..]
                    } else {
                        &at_ref[bi * m * p..(bi + 1) * m * p]
                    };
                    let b_sl = &b[bi * p * n..(bi + 1) * p * n];
                    rows_parallel(&mut out[bi * m * n..(bi + 1) * m * n], m, n, |i0, i1, chunk| {
                        simd::matmul(&at_sl[i0 * p..i1 * p], b_sl, chunk, i1 - i0, p, n);
                    });
                }
            }
            alloc::release(at);
        } else if batch >= 4 && batch * m * n >= BATCH_PARALLEL_THRESHOLD && !pool::is_serial() {
            pool::par_chunks_mut(&mut out, m * n, |bi, c_chunk| {
                let a_sl = if shared_lhs {
                    a
                } else {
                    &a[bi * p * m..(bi + 1) * p * m]
                };
                let b_sl = &b[bi * p * n..(bi + 1) * p * n];
                matmul_tn_serial(a_sl, b_sl, c_chunk, p, m, n, 0, m);
            });
        } else {
            for bi in 0..batch {
                let a_sl = if shared_lhs {
                    a
                } else {
                    &a[bi * p * m..(bi + 1) * p * m]
                };
                let b_sl = &b[bi * p * n..(bi + 1) * p * n];
                rows_parallel(&mut out[bi * m * n..(bi + 1) * m * n], m, n, |i0, i1, chunk| {
                    matmul_tn_serial(a_sl, b_sl, chunk, p, m, n, i0, i1);
                });
            }
        }
        Tensor::from_vec(out, out_dims.as_slice())
    }

    /// 2-D transpose (materialized). For higher ranks use
    /// [`transpose_last2`](Self::transpose_last2).
    pub fn t(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t() requires a rank-2 tensor, got {}", self.shape());
        self.transpose_last2()
    }

    /// Swaps the last two dimensions, materializing the result.
    ///
    /// Uses a cache-blocked tile kernel ([`TRANSPOSE_BLOCK`]² tiles keep
    /// both the source rows and destination rows resident in L1) and runs
    /// on the worker pool: over the batch dimension when batched, over
    /// destination row blocks for a single large matrix.
    pub fn transpose_last2(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 2, "transpose_last2 requires rank >= 2");
        let (m, n) = (self.dim(r - 2), self.dim(r - 1));
        let batch: usize = self.dims()[..r - 2].iter().product();
        let _g = obs::kernel(
            obs::Kernel::Transpose,
            0,
            4 * self.numel() as u64,
            4 * self.numel() as u64,
        );
        let src = self.as_slice();
        // Recycled buffer: the transpose scatter writes every element once.
        let mut out = alloc::acquire(src.len());
        let parallel = src.len() >= TRANSPOSE_PARALLEL_THRESHOLD && !pool::is_serial();
        if parallel && batch > 1 {
            pool::par_chunks_mut(&mut out, m * n, |bi, d| {
                transpose_blocked(&src[bi * m * n..(bi + 1) * m * n], d, m, n, 0, n);
            });
        } else if parallel && m * n > 0 {
            // Single matrix: each task owns TRANSPOSE_BLOCK destination
            // rows, i.e. source columns [j0, j1).
            pool::par_chunks_mut(&mut out, TRANSPOSE_BLOCK * m, |ci, d_chunk| {
                let j0 = ci * TRANSPOSE_BLOCK;
                let j1 = j0 + d_chunk.len() / m;
                transpose_blocked(src, d_chunk, m, n, j0, j1);
            });
        } else {
            for bi in 0..batch {
                let s = &src[bi * m * n..(bi + 1) * m * n];
                let d = &mut out[bi * m * n..(bi + 1) * m * n];
                transpose_blocked(s, d, m, n, 0, n);
            }
        }
        let mut dims = self.dims().to_vec();
        dims.swap(r - 2, r - 1);
        Tensor::from_vec(out, dims.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn matmul_2x2() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = t(&[5., 6., 7., 8.], &[2, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[7., 8., 9., 10., 11., 12.], &[3, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
    }

    #[test]
    fn matmul_batched_shared_rhs() {
        // (2,2,3) @ (3,1)
        let a = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(&[1., 1., 1.], &[3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.as_slice(), &[3., 12., 21., 30.]);
    }

    #[test]
    fn matmul_batched_shared_lhs() {
        // (2,3) @ (2,3,2): one left matrix applied to every batch element.
        let a = t(&[1., 0., 0., 0., 1., 0.], &[2, 3]);
        let b = t(&(0..12).map(|x| x as f32).collect::<Vec<_>>(), &[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(c.as_slice(), &[0., 1., 2., 3., 6., 7., 8., 9.]);
    }

    #[test]
    fn matmul_shared_lhs_matches_per_batch_loop() {
        let mut rng = crate::Rng64::new(11);
        let a = Tensor::rand_uniform([9, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([5, 13, 7], -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        for bi in 0..5 {
            let b_sl = Tensor::from_vec(b.as_slice()[bi * 13 * 7..(bi + 1) * 13 * 7].to_vec(), [13, 7]);
            let expect = a.matmul(&b_sl);
            assert_eq!(
                &c.as_slice()[bi * 9 * 7..(bi + 1) * 9 * 7],
                expect.as_slice(),
                "batch {bi}"
            );
        }
    }

    #[test]
    fn matmul_nt_matches_transposed_matmul() {
        let mut rng = crate::Rng64::new(12);
        // Sizes straddle the k-remainder and the row-parallel threshold.
        for (m, p, n) in [(3, 5, 4), (37, 23, 41), (300, 65, 300)] {
            let a = Tensor::rand_uniform([m, p], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([n, p], -1.0, 1.0, &mut rng);
            let fast = a.matmul_nt(&b);
            let reference = a.matmul(&b.t());
            assert_eq!(fast.dims(), &[m, n]);
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{p},{n})");
            }
        }
    }

    #[test]
    fn matmul_nt_batched_and_shared_rhs() {
        let mut rng = crate::Rng64::new(13);
        let a = Tensor::rand_uniform([6, 9, 10], -1.0, 1.0, &mut rng);
        let shared = Tensor::rand_uniform([7, 10], -1.0, 1.0, &mut rng);
        assert_eq!(a.matmul_nt(&shared), a.matmul(&shared.t()));
        let b = Tensor::rand_uniform([6, 7, 10], -1.0, 1.0, &mut rng);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose_last2()));
    }

    #[test]
    fn matmul_tn_matches_transposed_matmul() {
        let mut rng = crate::Rng64::new(14);
        for (p, m, n) in [(5, 3, 4), (23, 37, 41), (65, 300, 300)] {
            let a = Tensor::rand_uniform([p, m], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([p, n], -1.0, 1.0, &mut rng);
            let fast = a.matmul_tn(&b);
            let reference = a.t().matmul(&b);
            assert_eq!(fast.dims(), &[m, n]);
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "({p},{m},{n})");
            }
        }
    }

    #[test]
    fn matmul_tn_shared_lhs_and_batched() {
        let mut rng = crate::Rng64::new(15);
        // Shared transposed left against a batched rhs — the diffusion
        // backward shape `dX[b] = Aᵀ · dY[b]`.
        let a = Tensor::rand_uniform([9, 6], -1.0, 1.0, &mut rng);
        let g = Tensor::rand_uniform([4, 9, 5], -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&g);
        assert_eq!(fast.dims(), &[4, 6, 5]);
        assert_eq!(fast, a.t().matmul(&g));
        // Per-batch.
        let ab = Tensor::rand_uniform([4, 9, 6], -1.0, 1.0, &mut rng);
        assert_eq!(ab.matmul_tn(&g), ab.transpose_last2().matmul(&g));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_nt_mismatch_panics() {
        t(&[1., 2.], &[1, 2]).matmul_nt(&t(&[1., 2., 3.], &[1, 3]));
    }

    #[test]
    fn matmul_batched_per_batch() {
        let a = t(&[1., 0., 0., 1., 2., 0., 0., 2.], &[2, 2, 2]);
        let b = t(&[1., 2., 3., 4., 1., 2., 3., 4.], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 2., 4., 6., 8.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_mismatch_panics() {
        t(&[1., 2.], &[1, 2]).matmul(&t(&[1., 2., 3.], &[3, 1]));
    }

    #[test]
    fn matmul_matches_naive_large() {
        // Cross-check the unrolled/parallel kernel against a naive triple
        // loop on a size that exercises the k-remainder path.
        let mut rng = crate::Rng64::new(99);
        let (m, k, n) = (37, 23, 41);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for x in 0..k {
                    acc += a.as_slice()[i * k + x] * b.as_slice()[x * n + j];
                }
                let got = c.as_slice()[i * n + j];
                assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to trigger the threaded path.
        let mut rng = crate::Rng64::new(5);
        let a = Tensor::rand_uniform([300, 64], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([64, 300], -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        // Spot check a few entries against a naive dot product.
        for &(i, j) in &[(0usize, 0usize), (150, 150), (299, 299), (7, 250)] {
            let mut acc = 0.0f32;
            for x in 0..64 {
                acc += a.as_slice()[i * 64 + x] * b.as_slice()[x * 300 + j];
            }
            assert!((c.as_slice()[i * 300 + j] - acc).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_2d() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = a.t();
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_last2_batched() {
        let a = t(&(0..8).map(|x| x as f32).collect::<Vec<_>>(), &[2, 2, 2]);
        let b = a.transpose_last2();
        assert_eq!(b.as_slice(), &[0., 2., 1., 3., 4., 6., 5., 7.]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let mut rng = crate::Rng64::new(1);
        let a = Tensor::rand_uniform([5, 7], 0.0, 1.0, &mut rng);
        assert_eq!(a.t().t(), a);
    }
}
