//! The degenerate pool (`SAGDFN_THREADS=1`) must behave exactly like the
//! serial paths — every kernel falls back without spawning work.

mod common;

#[test]
fn all_cases_bit_identical_single_thread() {
    common::init_threads("1");
    assert!(sagdfn_tensor::pool::is_serial());
    common::run_all();
}
