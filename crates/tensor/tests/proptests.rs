//! Property-based tests of the tensor substrate.

use proptest::prelude::*;
use sagdfn_tensor::{set_simd_mode, Csr, Rng64, Shape, SimdMode, Tensor};

/// Strategy: a small tensor with its data.
fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0f32..50.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, [r, c]))
    })
}

/// Strategy: a small matrix whose entries are exactly zero with ~the
/// given frequency (index divisible by the mask period), plus arbitrary
/// finite values elsewhere — the shape of data CSR must round-trip.
fn sparse_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..8, 1usize..8, 1usize..5).prop_flat_map(|(r, c, period)| {
        prop::collection::vec(-50.0f32..50.0, r * c).prop_map(move |mut data| {
            for (i, v) in data.iter_mut().enumerate() {
                if i % period == 0 {
                    *v = 0.0;
                }
            }
            Tensor::from_vec(data, [r, c])
        })
    })
}

/// Strategy: a dimension that exercises every SIMD edge — singleton,
/// below one vector, straddling the widest vector, and one past a
/// register-block boundary.
fn odd_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 6] = [1, 3, 7, 17, 63, 65];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

/// Runs `f` with the SIMD dispatch forced to `mode`, restoring the
/// previous mode afterwards.
fn with_mode<R>(mode: SimdMode, f: impl FnOnce() -> R) -> R {
    let prev = set_simd_mode(mode);
    let r = f();
    set_simd_mode(prev);
    r
}

/// Asserts two tensors are bit-for-bit identical.
macro_rules! prop_assert_bits_eq {
    ($a:expr, $b:expr, $what:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert!(
            a.shape() == b.shape(),
            "{} shape: {:?} vs {:?}",
            $what,
            a.shape(),
            b.shape()
        );
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "{}[{}]: {} vs {}", $what, i, x, y);
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_commutes(a in small_tensor()) {
        let b = a.scale(0.5).add_scalar(1.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn mul_by_one_is_identity(a in small_tensor()) {
        let one = Tensor::ones(a.shape().clone());
        prop_assert_eq!(a.mul(&one), a.clone());
    }

    #[test]
    fn neg_is_involution(a in small_tensor()) {
        prop_assert_eq!(a.neg().neg(), a.clone());
    }

    #[test]
    fn transpose_is_involution(a in small_tensor()) {
        prop_assert_eq!(a.t().t(), a.clone());
    }

    #[test]
    fn reshape_preserves_sum(a in small_tensor()) {
        let n = a.numel();
        let flat = a.reshape([n]);
        prop_assert!((a.sum() - flat.sum()).abs() < 1e-3);
    }

    #[test]
    fn sum_axis_totals_match(a in small_tensor()) {
        let by_rows = a.sum_axis(0).sum();
        let by_cols = a.sum_axis(1).sum();
        prop_assert!((by_rows - by_cols).abs() < 1e-2, "{by_rows} vs {by_cols}");
        prop_assert!((by_rows - a.sum()).abs() < 1e-2);
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        // (A B)^T == B^T A^T
        let mut rng = Rng64::new(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let lhs = a.matmul(&b).t();
        let rhs = b.t().matmul(&a.t());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_split_roundtrip(a in small_tensor(), b in small_tensor()) {
        // Force compatible shapes by reshaping b to a's row count.
        let rows = a.dim(0);
        let b_cols = b.numel() / rows;
        if b_cols == 0 { return Ok(()); }
        let b = Tensor::from_vec(
            b.as_slice()[..rows * b_cols].to_vec(),
            [rows, b_cols],
        );
        let cat = Tensor::concat(&[&a, &b], 1);
        let parts = cat.split(1, &[a.dim(1), b_cols]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
    }

    #[test]
    fn index_select_all_rows_is_identity(a in small_tensor()) {
        let idx: Vec<usize> = (0..a.dim(0)).collect();
        prop_assert_eq!(a.index_select(0, &idx), a.clone());
    }

    #[test]
    fn broadcast_to_then_reduce_recovers_scale(
        data in prop::collection::vec(-10.0f32..10.0, 1..6),
        reps in 1usize..5,
    ) {
        let n = data.len();
        let a = Tensor::from_vec(data, [1, n]);
        let big = a.broadcast_to(&Shape::new(&[reps, n]));
        let back = big.sum_axis(0).scale(1.0 / reps as f32);
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn clamp_bounds_hold(a in small_tensor(), lo in -5.0f32..0.0, width in 0.1f32..5.0) {
        let hi = lo + width;
        let c = a.clamp(lo, hi);
        prop_assert!(c.as_slice().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn norm_triangle_inequality(a in small_tensor()) {
        let b = a.scale(-0.3).add_scalar(0.7);
        prop_assert!(a.add(&b).norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-4);
    }

    #[test]
    fn csr_round_trip_is_bit_exact(a in sparse_matrix()) {
        let csr = Csr::from_dense(&a);
        let back = csr.to_dense();
        prop_assert_eq!(back.shape(), a.shape());
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let nnz = a.as_slice().iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(csr.nnz(), nnz);
    }

    #[test]
    fn spmm_matches_dense_matmul(a in sparse_matrix(), seed in 0u64..500, c in 1usize..5) {
        let mut rng = Rng64::new(seed);
        let x = Tensor::rand_uniform([a.dim(1), c], -2.0, 2.0, &mut rng);
        let csr = Csr::from_dense(&a);
        // Skipping exact-zero terms only ever flips zero signs, so f32
        // equality (where -0.0 == 0.0) must hold everywhere.
        prop_assert_eq!(csr.spmm(&x), a.matmul(&x));
        let g = Tensor::rand_uniform([a.dim(0), c], -2.0, 2.0, &mut rng);
        prop_assert_eq!(csr.spmm_t(&g), a.matmul_tn(&g));
    }
}

// ---------------------------------------------------------------------
// SIMD dispatch vs forced-scalar kernels: every variant the host can run
// must be bit-for-bit identical to the scalar reference on shapes that
// straddle vector widths and register-block edges. Fewer cases per test:
// each case runs every kernel twice on up-to-65³ shapes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_matmuls_bit_match_scalar(
        seed in 0u64..1000, m in odd_dim(), k in odd_dim(), n in odd_dim(),
    ) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let c = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
        let at = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
        let run = || (a.matmul(&b), a.matmul_nt(&c), at.matmul_tn(&b));
        let scalar = with_mode(SimdMode::Scalar, run);
        let auto = with_mode(SimdMode::Auto, run);
        prop_assert_bits_eq!(scalar.0, auto.0, "matmul");
        prop_assert_bits_eq!(scalar.1, auto.1, "matmul_nt");
        prop_assert_bits_eq!(scalar.2, auto.2, "matmul_tn");
    }

    #[test]
    fn simd_sparse_kernels_bit_match_scalar(
        a in sparse_matrix(), seed in 0u64..500, batch in 1usize..3, c in odd_dim(),
    ) {
        let (n, m) = (a.dim(0), a.dim(1));
        let mut rng = Rng64::new(seed);
        let x = Tensor::rand_uniform([batch, m, c], -2.0, 2.0, &mut rng);
        let g = Tensor::rand_uniform([batch, n, c], -2.0, 2.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let run = || (csr.spmm(&x), csr.spmm_t(&g), csr.dadj(&g, &x));
        let scalar = with_mode(SimdMode::Scalar, run);
        let auto = with_mode(SimdMode::Auto, run);
        prop_assert_bits_eq!(scalar.0, auto.0, "spmm");
        prop_assert_bits_eq!(scalar.1, auto.1, "spmm_t");
        prop_assert_bits_eq!(scalar.2, auto.2, "dadj");
    }

    #[test]
    fn sharded_csr_bit_matches_unsharded(
        a in sparse_matrix(), seed in 0u64..500, batch in 1usize..3, c in odd_dim(),
    ) {
        use sagdfn_tensor::ShardedCsr;
        let (n, m) = (a.dim(0), a.dim(1));
        let mut rng = Rng64::new(seed);
        let x = Tensor::rand_uniform([batch, m, c], -2.0, 2.0, &mut rng);
        let g = Tensor::rand_uniform([batch, n, c], -2.0, 2.0, &mut rng);
        let csr = Csr::from_dense(&a);
        let (y0, dx0, da0) = (csr.spmm(&x), csr.spmm_t(&g), csr.dadj(&g, &x));
        // Any shard count must replay the unsharded per-element operation
        // sequence exactly (DESIGN.md §14), including counts past the
        // 4-aligned boundary snap and past the row count itself.
        for k in [1usize, 2, 5] {
            let sh = ShardedCsr::from_dense(&a, k);
            prop_assert_eq!(sh.nnz(), csr.nnz());
            prop_assert_bits_eq!(sh.spmm(&x), y0, "sharded spmm");
            prop_assert_bits_eq!(sh.spmm_t(&g), dx0, "sharded spmm_t");
            prop_assert_bits_eq!(sh.dadj(&g, &x), da0, "sharded dadj");
        }
    }

    #[test]
    fn fused_gru_chains_bit_match_unfused(seed in 0u64..1000, r in odd_dim(), c in odd_dim()) {
        use sagdfn_tensor::simd;
        let mut rng = Rng64::new(seed);
        let pre = Tensor::rand_uniform([r, c], -4.0, 4.0, &mut rng);
        let hc = Tensor::rand_uniform([r, c], -4.0, 4.0, &mut rng);
        let h = Tensor::rand_uniform([r, c], -2.0, 2.0, &mut rng);
        for mode in [SimdMode::Scalar, SimdMode::Auto] {
            let (sm, gc) = with_mode(mode, || {
                let mut sm = vec![0.0f32; r * c];
                simd::sigmoid_mul(pre.as_slice(), h.as_slice(), &mut sm);
                let mut gc = vec![0.0f32; r * c];
                simd::gru_combine(pre.as_slice(), hc.as_slice(), h.as_slice(), &mut gc);
                (sm, gc)
            });
            // Unfused oracles: the exact op sequences from the GRU cell.
            let sm_ref = pre.sigmoid().mul(&h);
            let z = pre.sigmoid();
            let gc_ref = z.mul(&h).add(&z.neg().add_scalar(1.0).mul(&hc.tanh()));
            for (i, (f, u)) in sm.iter().zip(sm_ref.as_slice()).enumerate() {
                prop_assert!(f.to_bits() == u.to_bits(), "sigmoid_mul {mode:?} [{i}]: {f} vs {u}");
            }
            for (i, (f, u)) in gc.iter().zip(gc_ref.as_slice()).enumerate() {
                prop_assert!(f.to_bits() == u.to_bits(), "gru_combine {mode:?} [{i}]: {f} vs {u}");
            }
        }
    }

    #[test]
    fn fused_epilogues_bit_match_unfused(seed in 0u64..1000, b in 1usize..3, n in odd_dim(), c in odd_dim()) {
        use sagdfn_tensor::simd;
        let mut rng = Rng64::new(seed);
        let ax = Tensor::rand_uniform([b, n, c], -2.0, 2.0, &mut rng);
        let x = Tensor::rand_uniform([b, n, c], -2.0, 2.0, &mut rng);
        let deg = Tensor::rand_uniform([1, n, 1], 0.1, 1.0, &mut rng);
        let bias = Tensor::rand_uniform([1, c], -1.0, 1.0, &mut rng);
        for mode in [SimdMode::Scalar, SimdMode::Auto] {
            let (ep, ba, ats, sta) = with_mode(mode, || {
                let mut ep = vec![0.0f32; b * n * c];
                simd::diffuse_epilogue(ax.as_slice(), x.as_slice(), deg.as_slice(), &mut ep, c);
                let mut ba = ax.as_slice().to_vec();
                simd::bias_add(&mut ba, bias.as_slice());
                let mut ats = vec![0.0f32; b * n * c];
                simd::add_then_scale(x.as_slice(), -0.37, 1.73, &mut ats);
                let mut sta = vec![0.0f32; b * n * c];
                simd::scale_then_add(x.as_slice(), 1.73, -0.37, &mut sta);
                (ep, ba, ats, sta)
            });
            let ep_ref = ax.add(&x).mul(&deg);
            let ba_ref = ax.reshape([b * n, c]).add(&bias);
            let ats_ref = x.add_scalar(-0.37).scale(1.73);
            let sta_ref = x.scale(1.73).add_scalar(-0.37);
            for (what, got, want) in [
                ("diffuse_epilogue", &ep, &ep_ref),
                ("bias_add", &ba, &ba_ref),
                ("add_then_scale", &ats, &ats_ref),
                ("scale_then_add", &sta, &sta_ref),
            ] {
                for (i, (f, u)) in got.iter().zip(want.as_slice()).enumerate() {
                    prop_assert!(f.to_bits() == u.to_bits(), "{what} {mode:?} [{i}]: {f} vs {u}");
                }
            }
        }
    }

    #[test]
    fn simd_elementwise_bit_match_scalar(seed in 0u64..1000, r in odd_dim(), c in odd_dim()) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::rand_uniform([r, c], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([r, c], -2.0, 2.0, &mut rng);
        let run = || {
            (a.add(&b), a.mul(&b), a.sigmoid(), a.scale(0.37), a.sum_axis(0), a.sum_axis(1))
        };
        let scalar = with_mode(SimdMode::Scalar, run);
        let auto = with_mode(SimdMode::Auto, run);
        prop_assert_bits_eq!(scalar.0, auto.0, "add");
        prop_assert_bits_eq!(scalar.1, auto.1, "mul");
        prop_assert_bits_eq!(scalar.2, auto.2, "sigmoid");
        prop_assert_bits_eq!(scalar.3, auto.3, "scale");
        prop_assert_bits_eq!(scalar.4, auto.4, "sum_axis0");
        prop_assert_bits_eq!(scalar.5, auto.5, "sum_axis1");
    }
}
