//! Pooled kernels must be bit-identical to their serial paths with a
//! genuinely parallel pool (`SAGDFN_THREADS=8`).

mod common;

macro_rules! case {
    ($name:ident) => {
        #[test]
        fn $name() {
            common::init_threads("8");
            common::$name();
        }
    };
}

case!(case_matmul_2d);
case!(case_matmul_2d_small);
case!(case_matmul_batched);
case!(case_matmul_batched_shared_rhs);
case!(case_matmul_batched_shared_lhs);
case!(case_matmul_nt);
case!(case_matmul_tn);
case!(case_spmm);
case!(case_transpose_single);
case!(case_transpose_batched);
case!(case_elementwise_same_shape);
case!(case_elementwise_broadcast);
case!(case_map_and_scalar);
case!(case_axpy);
case!(case_global_reductions);
case!(case_axis_reductions);
case!(case_broadcast_to);
case!(case_nested_tensor_ops);

#[test]
fn pool_reports_requested_width() {
    common::init_threads("8");
    assert_eq!(sagdfn_tensor::pool::num_threads(), 8);
}
