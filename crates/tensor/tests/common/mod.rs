//! Shared determinism cases: every pooled kernel must produce outputs
//! bit-identical to its serial path. Two test binaries include this
//! module, one pinning `SAGDFN_THREADS=1` and one `SAGDFN_THREADS=8`,
//! so the contract is checked both degenerate and genuinely parallel.

// Each test binary uses a different subset of these cases.
#![allow(dead_code)]

use sagdfn_tensor::{pool, Rng64, Shape, Tensor};
use std::sync::Once;

/// Sets the thread-count env var exactly once, before any test in this
/// process can touch the pool (every test calls this first; `call_once`
/// blocks concurrent callers until the first finishes).
pub fn init_threads(n: &str) {
    static INIT: Once = Once::new();
    INIT.call_once(|| std::env::set_var("SAGDFN_THREADS", n));
}

fn rand(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(shape, -2.0, 2.0, &mut rng)
}

/// Bit-exact comparison: f32 payloads compared as raw bits so that
/// `-0.0 != 0.0` and NaN payload differences would be caught too.
fn assert_bits_eq(pooled: &[f32], serial: &[f32], what: &str) {
    assert_eq!(pooled.len(), serial.len(), "{what}: length mismatch");
    for (i, (p, s)) in pooled.iter().zip(serial).enumerate() {
        assert_eq!(
            p.to_bits(),
            s.to_bits(),
            "{what}: bit mismatch at {i}: {p} vs {s}"
        );
    }
}

/// Runs `f` normally (pooled where kernels decide to be) and again under
/// [`pool::run_serial`], asserting bit-identical tensor output.
fn check(what: &str, f: impl Fn() -> Tensor) {
    let pooled = f();
    let serial = pool::run_serial(&f);
    assert_bits_eq(pooled.as_slice(), serial.as_slice(), what);
}

pub fn case_matmul_2d() {
    let a = rand(&[300, 257], 1);
    let b = rand(&[257, 301], 2);
    check("matmul 300x257x301", || a.matmul(&b));
}

pub fn case_matmul_2d_small() {
    // Below every threshold: exercises that pooled and serial agree on
    // the serial fast path too (they share one kernel).
    let a = rand(&[5, 7], 3);
    let b = rand(&[7, 3], 4);
    check("matmul 5x7x3", || a.matmul(&b));
}

pub fn case_matmul_batched() {
    let a = rand(&[8, 96, 64], 5);
    let b = rand(&[8, 64, 96], 6);
    check("batched matmul 8x96x64x96", || a.matmul(&b));
}

pub fn case_matmul_batched_shared_rhs() {
    let a = rand(&[8, 96, 64], 7);
    let b = rand(&[64, 96], 8);
    check("batched matmul shared rhs", || a.matmul(&b));
}

pub fn case_transpose_single() {
    let a = rand(&[600, 300], 9);
    check("transpose 600x300", || a.transpose_last2());
}

pub fn case_transpose_batched() {
    let a = rand(&[4, 200, 150], 10);
    check("transpose 4x200x150", || a.transpose_last2());
}

pub fn case_elementwise_same_shape() {
    let a = rand(&[100, 1000], 11);
    let b = rand(&[100, 1000], 12);
    check("add 100x1000", || a.add(&b));
    check("mul 100x1000", || a.mul(&b));
}

pub fn case_elementwise_broadcast() {
    let a = rand(&[64, 1000], 13);
    let col = rand(&[64, 1], 14);
    let row = rand(&[1000], 15);
    check("broadcast col", || a.add(&col));
    check("broadcast row", || a.mul(&row));
}

pub fn case_map_and_scalar() {
    let a = rand(&[100_000], 16);
    check("sigmoid 100k", || a.sigmoid());
    check("scale 100k", || a.scale(0.37));
    check("add_scalar 100k", || a.add_scalar(-1.25));
}

pub fn case_axpy() {
    let a = rand(&[100_000], 17);
    let b = rand(&[100_000], 18);
    check("axpy 100k", || {
        let mut acc = a.clone();
        acc.axpy(0.73, &b);
        acc
    });
}

pub fn case_global_reductions() {
    let a = rand(&[200_000], 19);
    let pooled = (a.sum(), a.norm_l2(), a.norm_l1(), a.mean());
    let serial = pool::run_serial(|| (a.sum(), a.norm_l2(), a.norm_l1(), a.mean()));
    assert_eq!(pooled.0.to_bits(), serial.0.to_bits(), "sum");
    assert_eq!(pooled.1.to_bits(), serial.1.to_bits(), "norm_l2");
    assert_eq!(pooled.2.to_bits(), serial.2.to_bits(), "norm_l1");
    assert_eq!(pooled.3.to_bits(), serial.3.to_bits(), "mean");
}

pub fn case_axis_reductions() {
    let a = rand(&[500, 300], 20);
    check("sum_axis outer", || a.sum_axis(1));
    check("max_axis outer", || a.max_axis(1));
    // axis 0 of a 2-D tensor has outer == 1: the column-parallel branch.
    check("sum_axis columns", || a.sum_axis(0));
    let flat = rand(&[4, 50_000], 21);
    check("sum_axis wide columns", || flat.sum_axis(0));
}

pub fn case_broadcast_to() {
    let a = rand(&[1, 500], 22);
    let target = Shape::new(&[128, 500]);
    check("broadcast_to 128x500", || a.broadcast_to(&target));
}

pub fn case_nested_tensor_ops() {
    // Tensor ops issued from inside a pool task must run serially and
    // still match: no deadlock, same bits.
    let a = rand(&[64, 1000], 23);
    let b = rand(&[64, 1000], 24);
    let expected = pool::run_serial(|| a.add(&b));
    let mut results: Vec<Option<Tensor>> = vec![None, None, None, None];
    pool::par_chunks_mut(&mut results, 1, |_, slot| {
        slot[0] = Some(a.add(&b));
    });
    for r in results {
        assert_bits_eq(
            r.expect("slot filled").as_slice(),
            expected.as_slice(),
            "nested add",
        );
    }
}

fn sparse_rand(shape: &[usize], zero_frac: f32, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    let dense = Tensor::rand_uniform(shape, -2.0, 2.0, &mut rng);
    let mask = Tensor::rand_uniform(shape, 0.0, 1.0, &mut rng);
    let data: Vec<f32> = dense
        .as_slice()
        .iter()
        .zip(mask.as_slice())
        .map(|(&v, &m)| if m < zero_frac { 0.0 } else { v })
        .collect();
    Tensor::from_vec(data, dense.shape().clone())
}

pub fn case_matmul_batched_shared_lhs() {
    let a = rand(&[96, 64], 25);
    let b = rand(&[8, 64, 96], 26);
    check("batched matmul shared lhs", || a.matmul(&b));
}

pub fn case_matmul_nt() {
    let a = rand(&[300, 257], 27);
    let b = rand(&[301, 257], 28);
    check("matmul_nt 300x257x301", || a.matmul_nt(&b));
    let g = rand(&[8, 96, 64], 29);
    let w = rand(&[96, 64], 30);
    check("matmul_nt batched shared rhs", || g.matmul_nt(&w));
}

pub fn case_matmul_tn() {
    let a = rand(&[257, 300], 31);
    let b = rand(&[257, 301], 32);
    check("matmul_tn 300x257x301", || a.matmul_tn(&b));
    let w = rand(&[96, 64], 33);
    let g = rand(&[8, 96, 80], 34);
    check("matmul_tn shared lhs", || w.matmul_tn(&g));
}

pub fn case_spmm() {
    use sagdfn_tensor::Csr;
    let a = sparse_rand(&[300, 240], 0.8, 35);
    let x = rand(&[4, 240, 32], 36);
    let csr = Csr::from_dense(&a);
    check("spmm 300x240 batched", || csr.spmm(&x));
    let g = rand(&[4, 300, 32], 37);
    check("spmm_t 300x240 batched", || csr.spmm_t(&g));
    check("dadj 300x240", || csr.dadj(&g, &x));
}

/// Every case, for binaries that want one entry point.
pub fn run_all() {
    case_matmul_2d();
    case_matmul_2d_small();
    case_matmul_batched();
    case_matmul_batched_shared_rhs();
    case_matmul_batched_shared_lhs();
    case_matmul_nt();
    case_matmul_tn();
    case_spmm();
    case_transpose_single();
    case_transpose_batched();
    case_elementwise_same_shape();
    case_elementwise_broadcast();
    case_map_and_scalar();
    case_axpy();
    case_global_reductions();
    case_axis_reductions();
    case_broadcast_to();
    case_nested_tensor_ops();
}
