//! # sagdfn-json
//!
//! A minimal JSON document model, recursive-descent parser and writer.
//! This workspace compiles with **no external crates** (it must build on
//! machines with no registry access), so the few places that need JSON —
//! parameter checkpoints, CLI model metadata — use this instead of
//! `serde`/`serde_json`.
//!
//! Design points:
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   written documents are deterministic and diffable.
//! * Numbers are stored as `f64`. Every `u32`/`usize` the workspace
//!   serializes fits in 53 bits, and `f32` payloads round-trip exactly
//!   through Rust's shortest-representation float formatting.
//! * Non-finite floats are rejected at write time (JSON has no NaN/Inf);
//!   checkpoints of diverged models should fail loudly, not silently
//!   serialize `null`.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Parse or access error with a short human-readable description.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from key/value pairs (helper for literal-style
    /// construction sites).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the key name when absent.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field '{key}'")))
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            other => err(format!("expected number, got {}", other.kind())),
        }
    }

    /// The number as `f32`.
    pub fn as_f32(&self) -> Result<f32, JsonError> {
        Ok(self.as_f64()? as f32)
    }

    /// The number as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let v = self.as_f64()?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return err(format!("expected non-negative integer, got {v}"));
        }
        Ok(v as usize)
    }

    /// The number as `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        Ok(self.as_usize()? as u64)
    }

    /// The number as `u32`.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let v = self.as_usize()?;
        u32::try_from(v).map_err(|_| JsonError(format!("{v} out of u32 range")))
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {}", other.kind())),
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {}", other.kind())),
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, got {}", other.kind())),
        }
    }

    /// Parses a JSON document. The whole input must be one value plus
    /// optional trailing whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, None, 0)?;
        Ok(out)
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0)?;
        out.push('\n');
        Ok(out)
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if !v.is_finite() {
                    return err(format!("cannot serialize non-finite number {v}"));
                }
                if *v == v.trunc() && v.abs() < 1e15 {
                    // Integral values print without a fraction, like serde_json.
                    // Keep the sign of -0.0 so float payloads round-trip bit
                    // exactly.
                    if v.is_sign_negative() && *v == 0.0 {
                        out.push_str("-0");
                    } else {
                        let _ = write!(out, "{}", *v as i64);
                    }
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1)?;
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)?;
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".into()))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("version", Json::from(1u32)),
            (
                "items",
                Json::Arr(vec![
                    Json::obj([("name", Json::from("a\"b\\c")), ("v", Json::from(0.5f32))]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
        ]);
        let text = doc.to_string_pretty().unwrap();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let compact = doc.to_compact().unwrap();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
    }

    #[test]
    fn f32_values_roundtrip_exactly() {
        for v in [
            0.1f32,
            -1.5e-30,
            3.4e38,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            -0.0,
            123456791.0,
        ] {
            let text = Json::from(v).to_compact().unwrap();
            let back = Json::parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42usize).to_compact().unwrap(), "42");
        assert_eq!(Json::from(0u32).to_compact().unwrap(), "0");
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Json::Num(f64::NAN).to_compact().is_err());
        assert!(Json::Num(f64::INFINITY).to_compact().is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"open", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\tA\"""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\tA\"");
    }

    #[test]
    fn typed_accessors_check_kinds() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.req("n").unwrap().as_usize().unwrap(), 3);
        assert_eq!(v.req("s").unwrap().as_str().unwrap(), "x");
        assert!(!v.req("b").unwrap().as_bool().unwrap());
        assert_eq!(v.req("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.req("missing").is_err());
        assert!(v.req("s").unwrap().as_usize().is_err());
        assert!(Json::parse("-2").unwrap().as_usize().is_err());
        assert!(Json::parse("1.5").unwrap().as_usize().is_err());
    }
}
