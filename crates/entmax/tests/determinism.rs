//! Pooled per-row entmax must be bit-identical to the serial row loop.

use sagdfn_entmax::{entmax, entmax_backward, entmax_backward_rows, entmax_rows};
use sagdfn_tensor::pool;
use std::sync::Once;

fn init_threads() {
    static INIT: Once = Once::new();
    INIT.call_once(|| std::env::set_var("SAGDFN_THREADS", "8"));
}

fn rows_input(rows: usize, row_len: usize, seed: u64) -> Vec<f32> {
    let mut rng = sagdfn_tensor::Rng64::new(seed);
    (0..rows * row_len).map(|_| rng.next_gaussian()).collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: elem {i}: {x} vs {y}");
    }
}

#[test]
fn forward_rows_match_serial_across_alphas() {
    init_threads();
    for (seed, &alpha) in [1.0f32, 1.5, 1.75, 2.0].iter().enumerate() {
        let z = rows_input(64, 50, seed as u64 + 1);
        let pooled = entmax_rows(&z, 50, alpha);
        let serial = pool::run_serial(|| entmax_rows(&z, 50, alpha));
        assert_bits_eq(&pooled, &serial, "entmax_rows");
        // And the pooled batch equals per-row calls of the scalar API.
        for r in 0..64 {
            let row = entmax(&z[r * 50..(r + 1) * 50], alpha);
            assert_bits_eq(&pooled[r * 50..(r + 1) * 50], &row, "row vs batch");
        }
    }
}

#[test]
fn backward_rows_match_serial() {
    init_threads();
    let z = rows_input(64, 50, 77);
    let g = rows_input(64, 50, 78);
    let p = entmax_rows(&z, 50, 1.5);
    let pooled = entmax_backward_rows(&p, &g, 50, 1.5);
    let serial = pool::run_serial(|| entmax_backward_rows(&p, &g, 50, 1.5));
    assert_bits_eq(&pooled, &serial, "entmax_backward_rows");
    for r in 0..64 {
        let row = entmax_backward(&p[r * 50..(r + 1) * 50], &g[r * 50..(r + 1) * 50], 1.5);
        assert_bits_eq(&pooled[r * 50..(r + 1) * 50], &row, "bwd row vs batch");
    }
}

#[test]
fn below_threshold_batch_is_serial_anyway() {
    init_threads();
    let z = rows_input(4, 30, 99);
    let pooled = entmax_rows(&z, 30, 1.5);
    let serial = pool::run_serial(|| entmax_rows(&z, 30, 1.5));
    assert_bits_eq(&pooled, &serial, "small batch");
}
