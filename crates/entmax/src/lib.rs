//! # sagdfn-entmax
//!
//! Exact implementations of the sparse normalizers used by SAGDFN's Sparse
//! Spatial Multi-Head Attention (paper Eq. 7–8):
//!
//! * [`softmax`] — the α = 1 member of the family,
//! * [`sparsemax`] — the α = 2 member, computed exactly by the sort-based
//!   threshold algorithm of Martins & Astudillo (2016),
//! * [`entmax`] — general α ∈ (1, ∞), computed by bisection on the
//!   threshold τ that solves `Σ_j [(α−1)z_j − τ]₊^(1/(α−1)) = 1`,
//!
//! plus the closed-form backward pass [`entmax_backward`] shared by all
//! three: for `p = entmax_α(z)` and upstream gradient `g = dL/dp`,
//!
//! ```text
//! s_i  = p_i^(2−α)          (0 where p_i = 0)
//! dz_i = s_i ⊙ (g_i − (Σ_j s_j g_j) / (Σ_j s_j))
//! ```
//!
//! which reduces to the familiar softmax Jacobian at α = 1 and the
//! support-restricted mean-subtraction of sparsemax at α = 2.
//!
//! All scalar-row functions operate on plain `&[f32]` rows;
//! `sagdfn-autodiff` lifts them onto tensors. The batch entry points
//! [`entmax_rows`] / [`entmax_backward_rows`] run independent rows across
//! the persistent worker pool of `sagdfn-tensor` — rows are embarrassingly
//! parallel and sit inside every attention head — with bit-identical
//! results to the per-row serial loop.

use sagdfn_obs as obs;
use sagdfn_tensor::{alloc, pool, simd};

/// Numerical tolerance for the bisection: |Σp − 1| after convergence.
const BISECT_TOL: f64 = 1e-7;
/// Bisection iteration cap; 60 halvings of a unit interval is ~1e-18.
const BISECT_ITERS: usize = 60;

/// Softmax over one row, numerically stabilized by max subtraction.
///
/// # Panics
/// Panics if `z` is empty.
pub fn softmax(z: &[f32]) -> Vec<f32> {
    assert!(!z.is_empty(), "softmax of empty slice");
    let m = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = z.iter().map(|&v| ((v - m) as f64).exp() as f32).collect();
    let sum: f64 = out.iter().map(|&v| v as f64).sum();
    let inv = (1.0 / sum) as f32;
    simd::scale_assign(&mut out, inv);
    out
}

/// Sparsemax over one row: the Euclidean projection of `z` onto the
/// probability simplex. Exact, via sorting.
///
/// # Panics
/// Panics if `z` is empty.
pub fn sparsemax(z: &[f32]) -> Vec<f32> {
    assert!(!z.is_empty(), "sparsemax of empty slice");
    let mut sorted: Vec<f64> = z.iter().map(|&v| v as f64).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN in sparsemax input"));
    // Find k(z) = max { k : 1 + k z_(k) > Σ_{j<=k} z_(j) }.
    let mut cumsum = 0.0f64;
    let mut tau = 0.0f64;
    let mut k_support = 0usize;
    for (k, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (k as f64 + 1.0);
        if v > t {
            tau = t;
            k_support = k + 1;
        }
    }
    debug_assert!(k_support >= 1);
    z.iter()
        .map(|&v| ((v as f64 - tau).max(0.0)) as f32)
        .collect()
}

/// Exact 1.5-entmax via the sort-based threshold algorithm of Peters &
/// Martins (2019): with `s = z/2` sorted descending, the support size `k`
/// is the largest prefix for which `τ(k) = μ_k − √((1 − ss_k)/k)` (with
/// `μ_k` the prefix mean and `ss_k` the prefix sum of squared deviations)
/// stays below `s_k`. Output is `p_j = [(s_j − τ)]₊²`.
///
/// # Panics
/// Panics if `z` is empty.
pub fn entmax15(z: &[f32]) -> Vec<f32> {
    assert!(!z.is_empty(), "entmax15 of empty slice");
    let mut sorted: Vec<f64> = z.iter().map(|&v| v as f64 / 2.0).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN in entmax15 input"));
    // Shift for numerical stability (entmax is shift-invariant).
    let shift = sorted[0];
    for v in &mut sorted {
        *v -= shift;
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut tau = 0.0f64;
    for (i, &v) in sorted.iter().enumerate() {
        let k = (i + 1) as f64;
        sum += v;
        sum_sq += v * v;
        let mean = sum / k;
        let ss = sum_sq - sum * sum / k; // Σ (v − μ)²
        let discriminant = (1.0 - ss) / k;
        if discriminant < 0.0 {
            break; // prefix variance already exceeds the budget
        }
        let candidate = mean - discriminant.sqrt();
        if v > candidate {
            tau = candidate; // support extends at least to position i
        } else {
            break;
        }
    }
    let mut p = vec![0.0f64; z.len()];
    simd::entmax15_map(z, shift, tau, &mut p);
    // Exact algorithm sums to 1 up to rounding; normalize defensively.
    let total: f64 = p.iter().sum();
    debug_assert!(total > 0.0);
    simd::div_assign_f64(&mut p, total);
    p.iter().map(|&v| v as f32).collect()
}

/// General α-entmax over one row.
///
/// * `alpha == 1.0` dispatches to [`softmax`];
/// * `alpha == 1.5` dispatches to the exact sort-based [`entmax15`];
/// * `alpha == 2.0` dispatches to the exact [`sparsemax`];
/// * otherwise the threshold τ is found by bisection (paper Eq. 8) and the
///   output is `[(α−1)z − τ]₊^(1/(α−1))` (paper Eq. 7).
///
/// # Panics
/// Panics if `z` is empty or `alpha < 1.0`.
pub fn entmax(z: &[f32], alpha: f32) -> Vec<f32> {
    assert!(alpha >= 1.0, "entmax requires alpha >= 1, got {alpha}");
    if (alpha - 1.0).abs() < 1e-6 {
        return softmax(z);
    }
    if (alpha - 1.5).abs() < 1e-6 {
        return entmax15(z);
    }
    if (alpha - 2.0).abs() < 1e-6 {
        return sparsemax(z);
    }
    let am1 = (alpha - 1.0) as f64;
    let exponent = 1.0 / am1;
    let zs: Vec<f64> = z.iter().map(|&v| v as f64 * am1).collect();
    let zmax = zs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // At tau = zmax every term vanishes (sum 0 < 1); at tau = zmax - 1 the
    // max term alone contributes 1^(1/(α−1)) = 1 (sum >= 1). Bisect between.
    let mut lo = zmax - 1.0;
    let mut hi = zmax;
    let sum_at = |tau: f64| -> f64 {
        zs.iter()
            .map(|&v| {
                let d = v - tau;
                if d > 0.0 {
                    d.powf(exponent)
                } else {
                    0.0
                }
            })
            .sum()
    };
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        let s = sum_at(mid);
        if (s - 1.0).abs() < BISECT_TOL {
            lo = mid;
            break;
        }
        if s > 1.0 {
            lo = mid; // need larger tau to shrink the sum
        } else {
            hi = mid;
        }
    }
    let tau = 0.5 * (lo + hi);
    // Normalize exactly so downstream code can rely on Σp = 1.
    let mut p: Vec<f64> = zs
        .iter()
        .map(|&v| {
            let d = v - tau;
            if d > 0.0 {
                d.powf(exponent)
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = p.iter().sum();
    debug_assert!(total > 0.0, "entmax produced an all-zero row");
    simd::div_assign_f64(&mut p, total);
    p.iter().map(|&v| v as f32).collect()
}

/// Backward pass shared by the entmax family.
///
/// Given the *forward output* `p = entmax_α(z)` and the upstream gradient
/// `grad_p = dL/dp`, returns `dL/dz`. Works for any `alpha >= 1`, including
/// the softmax (α = 1) and sparsemax (α = 2) endpoints.
///
/// # Panics
/// Panics if lengths differ or `alpha < 1.0`.
pub fn entmax_backward(p: &[f32], grad_p: &[f32], alpha: f32) -> Vec<f32> {
    assert_eq!(p.len(), grad_p.len(), "entmax_backward length mismatch");
    assert!(alpha >= 1.0, "entmax requires alpha >= 1, got {alpha}");
    let expo = (2.0 - alpha) as f64;
    let s: Vec<f64> = p
        .iter()
        .map(|&v| {
            if v > 0.0 {
                (v as f64).powf(expo)
            } else {
                0.0
            }
        })
        .collect();
    let s_sum: f64 = s.iter().sum();
    if s_sum == 0.0 {
        return vec![0.0; p.len()];
    }
    let weighted: f64 = s
        .iter()
        .zip(grad_p)
        .map(|(&si, &gi)| si * gi as f64)
        .sum();
    let mean = weighted / s_sum;
    let mut out = vec![0.0f32; p.len()];
    simd::entmax_backward_out(&s, grad_p, mean, &mut out);
    out
}

/// Minimum number of rows before a batch entmax pays the pool round-trip
/// (each row already costs a sort, so the bar is low).
const ROWS_PARALLEL_THRESHOLD: usize = 8;

/// Applies [`entmax`] to every `row_len`-sized row of `z`, running rows
/// in parallel on the `sagdfn-tensor` worker pool. Each row is computed
/// by the identical serial routine, so the output is bit-identical to a
/// per-row loop regardless of `SAGDFN_THREADS`.
///
/// # Panics
/// Panics if `row_len` is zero or does not divide `z.len()`.
pub fn entmax_rows(z: &[f32], row_len: usize, alpha: f32) -> Vec<f32> {
    // Flop convention: 2 ops per element (the bisection's true cost is
    // data-dependent; counters need a shape-derivable definition).
    let _g = obs::kernel(
        obs::Kernel::Entmax,
        2 * z.len() as u64,
        4 * z.len() as u64,
        4 * z.len() as u64,
    );
    batch_rows(z, row_len, |_, row, out| {
        out.copy_from_slice(&entmax(row, alpha));
    })
}

/// Batch form of [`entmax_backward`]: row-parallel Jacobian-vector
/// products over `row_len`-sized rows of the forward output `p` and the
/// upstream gradient `grad_p`.
///
/// # Panics
/// Panics if lengths differ, or `row_len` is zero or does not divide them.
pub fn entmax_backward_rows(p: &[f32], grad_p: &[f32], row_len: usize, alpha: f32) -> Vec<f32> {
    assert_eq!(p.len(), grad_p.len(), "entmax_backward_rows length mismatch");
    let _g = obs::kernel(
        obs::Kernel::EntmaxBackward,
        2 * p.len() as u64,
        8 * p.len() as u64,
        4 * p.len() as u64,
    );
    batch_rows(p, row_len, |r, p_row, out| {
        let g_row = &grad_p[r * row_len..(r + 1) * row_len];
        out.copy_from_slice(&entmax_backward(p_row, g_row, alpha));
    })
}

/// Shared row-batch driver: splits `z` into rows and maps
/// `per_row(row_index, row, out_row)` over them on the worker pool.
fn batch_rows(
    z: &[f32],
    row_len: usize,
    per_row: impl Fn(usize, &[f32], &mut [f32]) + Sync,
) -> Vec<f32> {
    assert!(row_len > 0, "batch entmax requires row_len > 0");
    assert_eq!(
        z.len() % row_len,
        0,
        "row_len {row_len} does not divide input length {}",
        z.len()
    );
    let rows = z.len() / row_len;
    // Recycled buffer: `per_row` overwrites every output row in full.
    let mut out = alloc::acquire(z.len());
    if rows >= ROWS_PARALLEL_THRESHOLD && !pool::is_serial() {
        let chunk = pool::chunk_len(z.len(), row_len, 1);
        pool::par_chunks_mut(&mut out, chunk, |ci, out_chunk| {
            let r0 = ci * chunk / row_len;
            for (rr, out_row) in out_chunk.chunks_mut(row_len).enumerate() {
                let r = r0 + rr;
                per_row(r, &z[r * row_len..(r + 1) * row_len], out_row);
            }
        });
    } else {
        for (r, (z_row, out_row)) in z.chunks(row_len).zip(out.chunks_mut(row_len)).enumerate() {
            per_row(r, z_row, out_row);
        }
    }
    out
}

/// Fraction of exactly-zero entries in a probability row — the sparsity
/// statistic the paper's ablation (Table VIII) attributes entmax's win to.
pub fn sparsity(p: &[f32]) -> f32 {
    if p.is_empty() {
        return 0.0;
    }
    p.iter().filter(|&&v| v == 0.0).count() as f32 / p.len() as f32
}

/// Per-row support sizes (count of entries `> 0`, i.e. not exactly zero)
/// of a row-major probability matrix — the quantity the sparse-diffusion
/// dispatch needs to decide between CSR and dense kernels without a second
/// scan of the adjacency.
///
/// # Panics
/// Panics if `row_len` is zero or does not divide `p.len()`.
pub fn support_counts(p: &[f32], row_len: usize) -> Vec<u32> {
    assert!(row_len > 0, "support_counts requires row_len > 0");
    assert_eq!(
        p.len() % row_len,
        0,
        "row_len {row_len} does not divide input length {}",
        p.len()
    );
    p.chunks(row_len)
        .map(|row| row.iter().filter(|&&v| v != 0.0).count() as u32)
        .collect()
}

/// [`entmax_rows`] plus the per-row support sizes of the result in one
/// pass, so callers that need both (e.g. sparsity telemetry or the CSR
/// dispatch) do not rescan the output.
pub fn entmax_rows_with_support(z: &[f32], row_len: usize, alpha: f32) -> (Vec<f32>, Vec<u32>) {
    let p = entmax_rows(z, row_len, alpha);
    let counts = support_counts(&p, row_len);
    (p, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_simplex(p: &[f32]) {
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum} != 1");
        assert!(p.iter().all(|&v| v >= 0.0), "negative probability in {p:?}");
    }

    fn finite_diff_check(z: &[f32], alpha: f32) {
        // Finite-difference check of entmax_backward against the forward.
        let p = entmax(z, alpha);
        let g: Vec<f32> = (0..z.len()).map(|i| ((i * 7 + 3) % 5) as f32 - 2.0).collect();
        let dz = entmax_backward(&p, &g, alpha);
        let eps = 1e-3f32;
        for i in 0..z.len() {
            let mut zp = z.to_vec();
            zp[i] += eps;
            let mut zm = z.to_vec();
            zm[i] -= eps;
            let pp = entmax(&zp, alpha);
            let pm = entmax(&zm, alpha);
            let num: f32 = pp
                .iter()
                .zip(&pm)
                .zip(&g)
                .map(|((&a, &b), &gi)| gi * (a - b) / (2.0 * eps))
                .sum();
            // entmax is only piecewise smooth; allow loose tolerance and
            // skip points near support boundaries where the derivative jumps.
            let diff = (num - dz[i]).abs();
            assert!(
                diff < 0.05 || diff / (num.abs() + dz[i].abs() + 1e-3) < 0.15,
                "alpha={alpha} i={i}: analytic {} vs numeric {}",
                dz[i],
                num
            );
        }
    }

    #[test]
    fn softmax_is_simplex() {
        assert_simplex(&softmax(&[1.0, 2.0, 3.0]));
        assert_simplex(&softmax(&[-100.0, 0.0, 100.0]));
    }

    #[test]
    fn softmax_uniform_for_equal_inputs() {
        let p = softmax(&[5.0; 4]);
        for &v in &p {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_never_exactly_zero() {
        let p = softmax(&[0.0, 10.0]);
        assert!(p[0] > 0.0, "softmax is dense by definition");
    }

    #[test]
    fn sparsemax_is_simplex_and_sparse() {
        let p = sparsemax(&[3.0, 1.0, -2.0, 0.5]);
        assert_simplex(&p);
        assert_eq!(p[2], 0.0, "clearly dominated entry must be exactly zero");
    }

    #[test]
    fn sparsemax_matches_projection_two_elements() {
        // For two elements with gap >= 1 the projection is one-hot.
        let p = sparsemax(&[2.0, 0.0]);
        assert_eq!(p, vec![1.0, 0.0]);
        // Gap 0.5 -> (0.75, 0.25).
        let p = sparsemax(&[0.5, 0.0]);
        assert!((p[0] - 0.75).abs() < 1e-6);
        assert!((p[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sparsemax_uniform_for_equal_inputs() {
        let p = sparsemax(&[1.0; 5]);
        for &v in &p {
            assert!((v - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn entmax_dispatches_to_endpoints() {
        let z = [1.0, 0.5, -0.5, 2.0];
        let e1 = entmax(&z, 1.0);
        let s = softmax(&z);
        for (a, b) in e1.iter().zip(&s) {
            assert!((a - b).abs() < 1e-6);
        }
        let e2 = entmax(&z, 2.0);
        let sp = sparsemax(&z);
        for (a, b) in e2.iter().zip(&sp) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn entmax_15_is_simplex() {
        for z in [
            vec![1.0, 2.0, 3.0],
            vec![0.0; 10],
            vec![-5.0, 5.0, 0.0, 0.1, -0.1],
        ] {
            assert_simplex(&entmax(&z, 1.5));
        }
    }

    #[test]
    fn entmax15_matches_bisection() {
        // alpha just off 1.5 dodges the exact-algorithm dispatch, so this
        // compares the sort-based solver against the bisection solver.
        for seed in 0..20u64 {
            let z: Vec<f32> = (0..17)
                .map(|i| ((i as f32 + seed as f32) * 0.73).sin() * 3.0)
                .collect();
            let exact = entmax15(&z);
            let bisect = entmax(&z, 1.5 + 3e-6);
            for (a, b) in exact.iter().zip(&bisect) {
                assert!((a - b).abs() < 2e-4, "seed {seed}: {exact:?} vs {bisect:?}");
            }
        }
    }

    #[test]
    fn entmax15_simplex_and_sparsity() {
        let z = [3.0f32, 0.1, -2.0, 0.2, 2.9];
        let p = entmax15(&z);
        assert_simplex(&p);
        assert_eq!(p[2], 0.0, "clearly dominated entry must be zeroed");
        assert!(p[0] > p[4] && p[4] > p[1]);
    }

    #[test]
    fn entmax15_single_and_uniform() {
        assert!((entmax15(&[7.0])[0] - 1.0).abs() < 1e-6);
        let p = entmax15(&[2.0; 6]);
        for &v in &p {
            assert!((v - 1.0 / 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn entmax15_shift_invariant() {
        let z = [0.5f32, -1.0, 2.0, 0.0];
        let a = entmax15(&z);
        let b = entmax15(&z.map(|v| v + 1000.0));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn entmax_sparsity_increases_with_alpha() {
        // Higher alpha must produce at least as many exact zeros.
        let z: Vec<f32> = (0..20).map(|i| (i as f32 * 0.37).sin() * 2.0).collect();
        let s15 = sparsity(&entmax(&z, 1.5));
        let s20 = sparsity(&entmax(&z, 2.0));
        let s25 = sparsity(&entmax(&z, 2.5));
        assert!(s15 <= s20 + 1e-6, "s(1.5)={s15} s(2.0)={s20}");
        assert!(s20 <= s25 + 1e-6, "s(2.0)={s20} s(2.5)={s25}");
        assert!(s25 > 0.0, "alpha=2.5 should zero out some of 20 entries");
    }

    #[test]
    fn entmax_preserves_ranking() {
        let z = [0.3, 2.0, -1.0, 0.9];
        let p = entmax(&z, 1.7);
        assert!(p[1] > p[3] && p[3] > p[0] && p[0] >= p[2]);
    }

    #[test]
    fn entmax_invariant_to_shift() {
        let z = [1.0f32, 0.2, -0.7, 3.0];
        let zs: Vec<f32> = z.iter().map(|v| v + 100.0).collect();
        let p = entmax(&z, 1.5);
        let ps = entmax(&zs, 1.5);
        for (a, b) in p.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-4, "{p:?} vs {ps:?}");
        }
    }

    #[test]
    fn entmax_single_element_is_one() {
        for alpha in [1.0, 1.5, 2.0, 2.5] {
            let p = entmax(&[0.37], alpha);
            assert!((p[0] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_softmax_matches_closed_form() {
        // softmax backward: dz = p * (g - <p, g>)
        let z = [0.1f32, -0.3, 0.7];
        let p = softmax(&z);
        let g = [1.0f32, 2.0, 3.0];
        let dz = entmax_backward(&p, &g, 1.0);
        let dot: f32 = p.iter().zip(&g).map(|(a, b)| a * b).sum();
        for i in 0..3 {
            let expect = p[i] * (g[i] - dot);
            assert!((dz[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_gradients_sum_to_zero() {
        // Rows live on the simplex, so dL/dz must be orthogonal to 1.
        for alpha in [1.0, 1.3, 1.5, 2.0, 2.5] {
            let z = [0.9f32, -0.2, 1.4, 0.0, -1.0];
            let p = entmax(&z, alpha);
            let g = [0.5f32, -1.0, 2.0, 0.0, 0.3];
            let dz = entmax_backward(&p, &g, alpha);
            let sum: f32 = dz.iter().sum();
            assert!(sum.abs() < 1e-4, "alpha={alpha}: grad sum {sum}");
        }
    }

    #[test]
    fn backward_finite_difference_alpha_15() {
        finite_diff_check(&[0.8, -0.1, 1.2, 0.4, -0.9], 1.5);
    }

    #[test]
    fn backward_finite_difference_alpha_1() {
        finite_diff_check(&[0.8, -0.1, 1.2, 0.4, -0.9], 1.0);
    }

    #[test]
    fn backward_finite_difference_alpha_13() {
        finite_diff_check(&[0.3, 0.1, -0.2, 0.6], 1.3);
    }

    #[test]
    fn backward_zero_support_entries_get_zero_grad() {
        let z = [5.0f32, 0.0, -5.0];
        let p = entmax(&z, 2.0);
        assert_eq!(p[2], 0.0);
        let dz = entmax_backward(&p, &[1.0, 1.0, 1.0], 2.0);
        assert_eq!(dz[2], 0.0, "out-of-support entries have zero gradient");
    }

    #[test]
    fn sparsity_statistic() {
        assert_eq!(sparsity(&[0.5, 0.5, 0.0, 0.0]), 0.5);
        assert_eq!(sparsity(&[]), 0.0);
    }

    #[test]
    fn support_counts_per_row() {
        let p = [0.5, 0.5, 0.0, 0.0, /* row 2 */ 1.0, 0.0, 0.0, 0.0];
        assert_eq!(support_counts(&p, 4), vec![2, 1]);
        // -0.0 compares equal to 0.0, so it does not count as support.
        assert_eq!(support_counts(&[-0.0, 1.0], 2), vec![1]);
    }

    #[test]
    fn spmm_on_entmax_output_matches_dense_matmul() {
        // The CSR kernels consume exactly what entmax produces: rows with
        // exact zeros. Products must agree with the dense GEMM everywhere
        // (skipping ±0.0 terms can only flip zero signs, and f32 equality
        // treats -0.0 == 0.0).
        use sagdfn_tensor::{Csr, Rng64, Tensor};
        let (n, m, c) = (12, 9, 5);
        let z: Vec<f32> = (0..n * m).map(|i| (i as f32 * 0.83).sin() * 4.0).collect();
        let (p, counts) = entmax_rows_with_support(&z, m, 1.5);
        let a = Tensor::from_vec(p, [n, m]);
        let csr = Csr::from_dense(&a);
        let nnz: u32 = counts.iter().sum();
        assert_eq!(csr.nnz(), nnz as usize);
        assert!(csr.nnz() < n * m, "entmax output unexpectedly dense");
        let mut rng = Rng64::new(11);
        let x = Tensor::rand_uniform([m, c], -2.0, 2.0, &mut rng);
        assert_eq!(csr.spmm(&x), a.matmul(&x));
        let g = Tensor::rand_uniform([n, c], -2.0, 2.0, &mut rng);
        assert_eq!(csr.spmm_t(&g), a.matmul_tn(&g));
    }

    #[test]
    fn entmax_rows_with_support_matches_separate_calls() {
        let z: Vec<f32> = (0..24).map(|i| (i as f32 * 0.61).sin() * 3.0).collect();
        let (p, counts) = entmax_rows_with_support(&z, 6, 1.5);
        assert_eq!(p, entmax_rows(&z, 6, 1.5));
        assert_eq!(counts, support_counts(&p, 6));
        let total: u32 = counts.iter().sum();
        assert!((total as usize) < z.len(), "1.5-entmax should zero entries");
    }
}
