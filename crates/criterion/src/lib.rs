//! # sagdfn-criterion
//!
//! A small wall-clock benchmark harness exposing the subset of the
//! `criterion` crate's API this workspace's benches use. The workspace
//! must build with **no external crates** (no registry access), so the
//! real `criterion` is replaced by this shim via Cargo dependency
//! renaming; the bench files themselves are unchanged.
//!
//! What it does: for each benchmark it calibrates an iteration batch to a
//! fixed per-sample wall time, takes `sample_size` timed batches, and
//! prints min / median / mean per-iteration times (plus throughput when
//! one was declared). What it does not do: statistical outlier analysis,
//! HTML reports, or baseline comparison — pipe the stdout lines into a
//! file to diff runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time for one timed sample batch.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Warmup budget before sampling a benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Top-level benchmark context; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), 20, None, f);
    }
}

/// Workload size declaration used to print derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering, shown as `name/param`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            full: format!("{name}/{param}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            full: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed sample batches each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration workload so throughput gets printed.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, passing it the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; printing is eager).
    pub fn finish(self) {}
}

/// Passed to the user closure; `iter` measures the provided routine.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration sample durations in seconds, filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Calibrates a batch size, then records `sample_size` timed batches
    /// of `routine`. Return values are passed through `black_box` so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: grow the batch until it fills the target
        // sample time.
        let mut batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= SAMPLE_TARGET {
                break;
            }
            if warmup_start.elapsed() >= WARMUP_TARGET {
                // Slow routine: scale the batch to the target from the
                // last observation and stop warming up.
                let per = dt.as_secs_f64().max(1e-9) / batch as f64;
                batch = ((SAMPLE_TARGET.as_secs_f64() / per) as u64).clamp(1, batch * 128);
                break;
            }
            batch = batch.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Summary statistics of one benchmark's samples (per-iteration seconds).
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean over samples.
    pub mean: f64,
}

fn stats(samples: &[f64]) -> Stats {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    Stats {
        min: sorted[0],
        median,
        mean: sorted.iter().sum::<f64>() / n as f64,
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples: closure never called iter)");
        return;
    }
    let s = stats(&b.samples);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10.1} Melem/s", n as f64 / s.median / 1e6),
        Some(Throughput::Bytes(n)) => format!("  {:>10.1} MiB/s", n as f64 / s.median / (1u64 << 20) as f64),
        None => String::new(),
    };
    println!(
        "  {label:<40} min {:>12}  median {:>12}  mean {:>12}{rate}",
        format_time(s.min),
        format_time(s.median),
        format_time(s.mean),
    );
}

/// Declares a bench group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
/// Ignores harness CLI flags (`--bench`, filters) that `cargo bench`
/// forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` invokes the binary with `--bench`; tolerate
            // and ignore any such flags.
            let _ = ::std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = stats(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
        let s = stats(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn format_time_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(2.5e-8), "25.0 ns");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            sample_size: 3,
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2).throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("add", 8), &8u64, |b, &n| {
            b.iter(|| std::hint::black_box((0..n).sum::<u64>()))
        });
        group.finish();
    }
}
