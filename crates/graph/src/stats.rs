//! Graph statistics — used by dataset diagnostics and the experiment
//! harness to characterize latent topologies and learned adjacencies.

use crate::adjacency::{DenseAdj, SlimAdj};

/// Summary statistics of a weighted graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of nonzero directed edges.
    pub edges: usize,
    /// Edges / (N·(N−1)) — self-loops excluded from the denominator.
    pub density: f32,
    /// Mean out-degree (nonzero entries per row).
    pub mean_out_degree: f32,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean edge weight over nonzero entries.
    pub mean_weight: f32,
    /// Fraction of node pairs connected in both directions (of pairs
    /// connected at all).
    pub reciprocity: f32,
}

/// Computes [`GraphStats`] for a dense adjacency.
pub fn dense_stats(adj: &DenseAdj) -> GraphStats {
    let n = adj.n();
    let w = adj.weights().as_slice();
    let mut edges = 0usize;
    let mut weight_sum = 0.0f64;
    let mut max_deg = 0usize;
    let mut mutual = 0usize;
    let mut either = 0usize;
    for i in 0..n {
        let mut deg = 0usize;
        for j in 0..n {
            let v = w[i * n + j];
            if v != 0.0 {
                edges += 1;
                deg += 1;
                weight_sum += v as f64;
            }
            if i < j {
                let fwd = v != 0.0;
                let back = w[j * n + i] != 0.0;
                if fwd || back {
                    either += 1;
                    if fwd && back {
                        mutual += 1;
                    }
                }
            }
        }
        max_deg = max_deg.max(deg);
    }
    GraphStats {
        nodes: n,
        edges,
        density: if n > 1 {
            edges as f32 / (n * (n - 1)) as f32
        } else {
            0.0
        },
        mean_out_degree: edges as f32 / n as f32,
        max_out_degree: max_deg,
        mean_weight: if edges > 0 {
            (weight_sum / edges as f64) as f32
        } else {
            0.0
        },
        reciprocity: if either > 0 {
            mutual as f32 / either as f32
        } else {
            0.0
        },
    }
}

/// Computes [`GraphStats`] for a slim adjacency via its dense expansion
/// semantics (duplicate indices merge).
pub fn slim_stats(adj: &SlimAdj) -> GraphStats {
    dense_stats(&adj.to_dense())
}

/// Out-degree histogram of a dense adjacency: `hist[k]` = number of
/// nodes with exactly `k` nonzero out-edges.
pub fn degree_histogram(adj: &DenseAdj) -> Vec<usize> {
    let n = adj.n();
    let w = adj.weights().as_slice();
    let mut hist = vec![0usize; n + 1];
    for i in 0..n {
        let deg = (0..n).filter(|&j| w[i * n + j] != 0.0).count();
        hist[deg] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{knn_geometric, ring_road};
    use sagdfn_tensor::{Rng64, Tensor};

    #[test]
    fn ring_stats_are_exact() {
        let g = ring_road(10, 2);
        let s = dense_stats(&g);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 40); // 4 per node
        assert!((s.mean_out_degree - 4.0).abs() < 1e-6);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.reciprocity, 1.0, "ring edges are symmetric");
        assert!((s.density - 40.0 / 90.0).abs() < 1e-6);
    }

    #[test]
    fn knn_graph_has_exact_out_degree() {
        let g = knn_geometric(25, 5, &mut Rng64::new(2));
        let s = dense_stats(&g.adj);
        assert_eq!(s.edges, 125);
        assert_eq!(s.max_out_degree, 5);
        // k-NN is not symmetric in general.
        assert!(s.reciprocity < 1.0);
        let hist = degree_histogram(&g.adj);
        assert_eq!(hist[5], 25, "every node has exactly k out-edges");
    }

    #[test]
    fn empty_graph() {
        let s = dense_stats(&DenseAdj::new(Tensor::zeros([4, 4])));
        assert_eq!(s.edges, 0);
        assert_eq!(s.mean_weight, 0.0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn slim_stats_match_dense_expansion() {
        let slim = SlimAdj::new(
            Tensor::from_vec(vec![0.5, 0.0, 1.0, 0.5], [2, 2]),
            vec![0, 1],
        );
        let s = slim_stats(&slim);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 3);
    }
}
