//! Dense and slim adjacency matrices with degree normalization and
//! multi-step diffusion.

use sagdfn_tensor::Tensor;

/// A dense `N×N` weighted adjacency matrix — what the quadratic baselines
/// (AGCRN, GTS, …) operate on.
#[derive(Clone, Debug)]
pub struct DenseAdj {
    weights: Tensor,
}

impl DenseAdj {
    /// Wraps an `N×N` weight tensor.
    ///
    /// # Panics
    /// Panics if `weights` is not square rank-2.
    pub fn new(weights: Tensor) -> Self {
        assert_eq!(weights.rank(), 2, "adjacency must be rank 2");
        assert_eq!(
            weights.dim(0),
            weights.dim(1),
            "adjacency must be square, got {}",
            weights.shape()
        );
        DenseAdj { weights }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.weights.dim(0)
    }

    /// The raw weight tensor.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Out-degree (row sums).
    pub fn degrees(&self) -> Vec<f32> {
        self.weights.sum_axis(1).into_vec()
    }

    /// Random-walk normalization with self-loops:
    /// `(D + I)^{-1} (A X + X)` — one diffusion step.
    pub fn diffuse_step(&self, x: &Tensor) -> Tensor {
        let n = self.n();
        assert_eq!(x.dim(0), n, "node dimension mismatch");
        let ax = self.weights.matmul(x);
        let mixed = ax.add(x);
        let deg = self.degrees();
        scale_rows(&mixed, &deg)
    }

    /// `steps` diffusion steps.
    pub fn diffuse(&self, x: &Tensor, steps: usize) -> Tensor {
        let mut h = x.clone();
        for _ in 0..steps {
            h = self.diffuse_step(&h);
        }
        h
    }

    /// Keeps the `k` largest entries per row, zeroing the rest — the
    /// "top-k nearest neighbors" preprocessing the ablation variant
    /// *w/o SNS & SSMA* applies to the topology matrix.
    pub fn topk_rows(&self, k: usize) -> DenseAdj {
        let n = self.n();
        let k = k.min(n);
        let src = self.weights.as_slice();
        let mut out = vec![0.0f32; n * n];
        for i in 0..n {
            let row = &src[i * n..(i + 1) * n];
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("NaN in adjacency"));
            for &j in idx.iter().take(k) {
                out[i * n + j] = row[j];
            }
        }
        DenseAdj::new(Tensor::from_vec(out, [n, n]))
    }
}

/// The paper's slim adjacency `A_s ∈ R^{N×M}` plus the shared significant
/// neighbor index set `I` (`|I| = M`).
#[derive(Clone, Debug)]
pub struct SlimAdj {
    weights: Tensor,
    index: Vec<usize>,
}

impl SlimAdj {
    /// Wraps an `N×M` weight tensor and its neighbor index set.
    ///
    /// # Panics
    /// Panics unless `weights` is rank-2 with `dim(1) == index.len()`, and
    /// every index is `< N`... the index refers back into the same node set.
    pub fn new(weights: Tensor, index: Vec<usize>) -> Self {
        assert_eq!(weights.rank(), 2, "slim adjacency must be rank 2");
        assert_eq!(
            weights.dim(1),
            index.len(),
            "slim adjacency width {} != index set size {}",
            weights.dim(1),
            index.len()
        );
        let n = weights.dim(0);
        for &i in &index {
            assert!(i < n, "neighbor index {i} out of range for {n} nodes");
        }
        SlimAdj { weights, index }
    }

    /// Number of nodes `N`.
    pub fn n(&self) -> usize {
        self.weights.dim(0)
    }

    /// Number of significant neighbors `M`.
    pub fn m(&self) -> usize {
        self.index.len()
    }

    /// The `N×M` weight tensor.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The shared significant-neighbor index set `I`.
    pub fn index(&self) -> &[usize] {
        &self.index
    }

    /// Row sums of the slim matrix (the diagonal of the paper's `D`).
    pub fn degrees(&self) -> Vec<f32> {
        self.weights.sum_axis(1).into_vec()
    }

    /// One fast-graph-convolution diffusion step (paper Eq. 9 inner term):
    /// `(D + I)^{-1} (A_s X_I + X)` where `X_I` gathers the rows of the
    /// significant neighbors. `x` is `(N, d)`.
    pub fn diffuse_step(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dim(0), self.n(), "node dimension mismatch");
        let xi = x.index_select(0, &self.index);
        let mixed = self.weights.matmul(&xi).add(x);
        scale_rows(&mixed, &self.degrees())
    }

    /// `steps` diffusion steps.
    pub fn diffuse(&self, x: &Tensor, steps: usize) -> Tensor {
        let mut h = x.clone();
        for _ in 0..steps {
            h = self.diffuse_step(&h);
        }
        h
    }

    /// Expands to the equivalent dense `N×N` matrix (testing/debug only —
    /// this is exactly the allocation the slim representation avoids).
    pub fn to_dense(&self) -> DenseAdj {
        let n = self.n();
        let mut out = vec![0.0f32; n * n];
        let w = self.weights.as_slice();
        for i in 0..n {
            for (j_slim, &j) in self.index.iter().enumerate() {
                // Accumulate: duplicate indices (possible during the random
                // exploration phase) merge their weight mass.
                out[i * n + j] += w[i * self.m() + j_slim];
            }
        }
        DenseAdj::new(Tensor::from_vec(out, [n, n]))
    }

    /// Fraction of exactly-zero weights — the sparsity entmax produces.
    pub fn sparsity(&self) -> f32 {
        sagdfn_entmax_sparsity(self.weights.as_slice())
    }
}

fn sagdfn_entmax_sparsity(w: &[f32]) -> f32 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter().filter(|&&v| v == 0.0).count() as f32 / w.len() as f32
}

/// Multiplies row `i` of `x` by `1 / (deg[i] + 1)` — the `(D + I)^{-1}`
/// normalizer of Eq. 9.
fn scale_rows(x: &Tensor, deg: &[f32]) -> Tensor {
    let n = x.dim(0);
    assert_eq!(deg.len(), n);
    let inner: usize = x.dims()[1..].iter().product();
    let mut out = x.as_slice().to_vec();
    for i in 0..n {
        let s = 1.0 / (deg[i] + 1.0);
        for v in &mut out[i * inner..(i + 1) * inner] {
            *v *= s;
        }
    }
    Tensor::from_vec(out, x.shape().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn dense_degrees_are_row_sums() {
        let a = DenseAdj::new(t(&[0., 1., 2., 0.], &[2, 2]));
        assert_eq!(a.degrees(), vec![1.0, 2.0]);
    }

    #[test]
    fn dense_diffuse_step_mixes_neighbors() {
        // Two nodes, edge 1->2 with weight 1 (row 0 sees node 1).
        let a = DenseAdj::new(t(&[0., 1., 0., 0.], &[2, 2]));
        let x = t(&[0., 10.], &[2, 1]);
        let y = a.diffuse_step(&x);
        // Node 0: (1*10 + 0) / (1 + 1) = 5; node 1: (0 + 10) / (0 + 1) = 10.
        assert_eq!(y.as_slice(), &[5.0, 10.0]);
    }

    #[test]
    fn diffusion_preserves_constant_signal() {
        // With random-walk + self-loop normalization, a constant vector is
        // a fixed point: ((A+I) 1c) / (deg+1) = c.
        let a = DenseAdj::new(t(&[0., 2., 1., 3., 0., 1., 2., 2., 0.], &[3, 3]));
        let x = t(&[7., 7., 7.], &[3, 1]);
        let y = a.diffuse(&x, 3);
        for &v in y.as_slice() {
            assert!((v - 7.0).abs() < 1e-4, "{y:?}");
        }
    }

    #[test]
    fn topk_keeps_largest() {
        let a = DenseAdj::new(t(&[0.1, 0.9, 0.5, 0.3, 0.2, 0.8, 0.7, 0.1, 0.4], &[3, 3]));
        let k = a.topk_rows(1);
        let w = k.weights().as_slice();
        assert_eq!(&w[0..3], &[0.0, 0.9, 0.0]);
        assert_eq!(&w[3..6], &[0.0, 0.0, 0.8]);
        assert_eq!(&w[6..9], &[0.7, 0.0, 0.0]);
    }

    #[test]
    fn slim_diffuse_matches_dense_expansion() {
        // A slim matrix must diffuse exactly like its dense expansion.
        let index = vec![2, 0];
        let slim = SlimAdj::new(t(&[0.5, 0.0, 0.25, 0.25, 1.0, 0.0], &[3, 2]), index);
        let x = t(&[1., 2., 3.], &[3, 1]);
        let dense = slim.to_dense();
        let ys = slim.diffuse_step(&x);
        let yd = dense.diffuse_step(&x);
        for (a, b) in ys.as_slice().iter().zip(yd.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{ys:?} vs {yd:?}");
        }
    }

    #[test]
    fn slim_multi_step_matches_dense() {
        let index = vec![1, 3];
        let slim = SlimAdj::new(
            t(&[0.3, 0.7, 0.5, 0.5, 0.0, 1.0, 0.9, 0.1], &[4, 2]),
            index,
        );
        let x = t(&[1., -1., 2., 0.5], &[4, 1]);
        let ys = slim.diffuse(&x, 3);
        let yd = slim.to_dense().diffuse(&x, 3);
        for (a, b) in ys.as_slice().iter().zip(yd.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn slim_sparsity() {
        let slim = SlimAdj::new(t(&[0.0, 1.0, 0.0, 0.5], &[2, 2]), vec![0, 1]);
        assert_eq!(slim.sparsity(), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slim_rejects_bad_index() {
        SlimAdj::new(Tensor::zeros([2, 1]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn dense_rejects_rectangular() {
        DenseAdj::new(Tensor::zeros([2, 3]));
    }

    #[test]
    fn slim_diffusion_is_linear_in_x() {
        let slim = SlimAdj::new(t(&[0.5, 0.5, 1.0, 0.0], &[2, 2]), vec![0, 1]);
        let x1 = t(&[1., 0.], &[2, 1]);
        let x2 = t(&[0., 1.], &[2, 1]);
        let sum = t(&[1., 1.], &[2, 1]);
        let y1 = slim.diffuse_step(&x1);
        let y2 = slim.diffuse_step(&x2);
        let ysum = slim.diffuse_step(&sum);
        for i in 0..2 {
            assert!(
                (y1.as_slice()[i] + y2.as_slice()[i] - ysum.as_slice()[i]).abs() < 1e-6
            );
        }
    }
}
