//! # sagdfn-graph
//!
//! Graph substrate for the SAGDFN reproduction: dense and *slim* adjacency
//! matrices, degree normalization, information diffusion, and synthetic
//! graph generators.
//!
//! The paper's central data structure is the **slim adjacency matrix**
//! `A_s ∈ R^{N×M}` ([`SlimAdj`]): instead of all-pairs weights, each of the
//! `N` nodes holds weights toward a *shared* set of `M ≪ N` globally
//! significant neighbors (identified by the index set `I`). Graph
//! diffusion with a slim matrix costs `O(NM)` instead of `O(N²)` — the
//! complexity claim of the paper's Table I.
//!
//! Generators here build the *latent* road/sensor graphs the synthetic
//! datasets diffuse traffic over (see `sagdfn-data`); the learned graphs
//! inside the model are produced by `sagdfn-core`.

pub mod adjacency;
pub mod generators;
pub mod stats;

pub use adjacency::{DenseAdj, SlimAdj};
pub use generators::{erdos_renyi, grid_city, knn_geometric, ring_road, GeoGraph};
pub use stats::{degree_histogram, dense_stats, slim_stats, GraphStats};
