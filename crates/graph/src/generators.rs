//! Synthetic graph generators.
//!
//! These build the *latent* spatial graphs over which `sagdfn-data`
//! synthesizes correlated traffic: the reproduction's stand-in for real
//! road networks (see DESIGN.md §2). The k-NN geometric graph with a
//! Gaussian kernel mirrors how METR-LA's sensor graph is constructed from
//! road-network distances in DCRNN and follow-up work.

use crate::adjacency::DenseAdj;
use sagdfn_tensor::{Rng64, Tensor};

/// A graph with 2-D node coordinates — what the geometric generators
/// return, so datasets can derive distance-based covariates.
#[derive(Clone, Debug)]
pub struct GeoGraph {
    /// `(x, y)` position of every node, in arbitrary city units.
    pub coords: Vec<(f32, f32)>,
    /// Kernel-weighted adjacency.
    pub adj: DenseAdj,
}

/// k-nearest-neighbor geometric graph with Gaussian kernel weights:
/// `w_ij = exp(-d_ij² / σ²)` for the `k` nearest neighbors of `i`,
/// where σ is the standard deviation of all kept distances (the DCRNN
/// thresholded-Gaussian construction).
///
/// # Panics
/// Panics if `k >= n` or `n == 0`.
pub fn knn_geometric(n: usize, k: usize, rng: &mut Rng64) -> GeoGraph {
    assert!(n > 0, "empty graph");
    assert!(k < n, "k = {k} must be below n = {n}");
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.next_f32() * 100.0, rng.next_f32() * 100.0))
        .collect();
    let mut kept: Vec<(usize, usize, f32)> = Vec::with_capacity(n * k);
    for i in 0..n {
        let mut dists: Vec<(usize, f32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                (j, (dx * dx + dy * dy).sqrt())
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        for &(j, d) in dists.iter().take(k) {
            kept.push((i, j, d));
        }
    }
    // Kernel bandwidth = std of kept distances.
    let mean = kept.iter().map(|&(_, _, d)| d as f64).sum::<f64>() / kept.len() as f64;
    let var = kept
        .iter()
        .map(|&(_, _, d)| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / kept.len() as f64;
    let sigma2 = var.max(1e-12) as f32 + (mean * mean) as f32 * 0.01;
    let mut w = vec![0.0f32; n * n];
    for &(i, j, d) in &kept {
        w[i * n + j] = (-d * d / sigma2).exp();
    }
    GeoGraph {
        coords,
        adj: DenseAdj::new(Tensor::from_vec(w, [n, n])),
    }
}

/// Erdős–Rényi `G(n, p)` with uniform weights in `(0, 1]` on present edges.
pub fn erdos_renyi(n: usize, p: f32, rng: &mut Rng64) -> DenseAdj {
    assert!(n > 0, "empty graph");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut w = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.next_f32() < p {
                w[i * n + j] = rng.next_f32().max(f32::MIN_POSITIVE);
            }
        }
    }
    DenseAdj::new(Tensor::from_vec(w, [n, n]))
}

/// A grid-city topology: `rows × cols` intersections connected to their
/// 4-neighborhood with unit weights — the Manhattan-style street network
/// some urban datasets resemble. Node `(r, c)` has index `r·cols + c`.
pub fn grid_city(rows: usize, cols: usize) -> DenseAdj {
    assert!(rows >= 1 && cols >= 1, "empty grid");
    let n = rows * cols;
    let mut w = vec![0.0f32; n * n];
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let i = idx(r, c);
            if r + 1 < rows {
                w[i * n + idx(r + 1, c)] = 1.0;
                w[idx(r + 1, c) * n + i] = 1.0;
            }
            if c + 1 < cols {
                w[i * n + idx(r, c + 1)] = 1.0;
                w[idx(r, c + 1) * n + i] = 1.0;
            }
        }
    }
    DenseAdj::new(Tensor::from_vec(w, [n, n]))
}

/// A ring-road topology: `n` nodes on a loop, each connected to its
/// `hops` predecessors/successors with distance-decayed weights. Models a
/// one-dimensional arterial corridor (congestion propagates along it).
pub fn ring_road(n: usize, hops: usize) -> DenseAdj {
    assert!(n > 2, "ring needs at least 3 nodes");
    assert!(hops >= 1 && hops < n / 2, "hops must be in [1, n/2)");
    let mut w = vec![0.0f32; n * n];
    for i in 0..n {
        for h in 1..=hops {
            let weight = 1.0 / h as f32;
            let fwd = (i + h) % n;
            let back = (i + n - h) % n;
            w[i * n + fwd] = weight;
            w[i * n + back] = weight;
        }
    }
    DenseAdj::new(Tensor::from_vec(w, [n, n]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_has_k_neighbors_per_row() {
        let mut rng = Rng64::new(1);
        let g = knn_geometric(30, 4, &mut rng);
        let w = g.adj.weights().as_slice();
        for i in 0..30 {
            let nnz = (0..30).filter(|&j| w[i * 30 + j] > 0.0).count();
            assert_eq!(nnz, 4, "row {i} has {nnz} neighbors");
        }
    }

    #[test]
    fn knn_weights_decay_with_distance() {
        let mut rng = Rng64::new(2);
        let g = knn_geometric(50, 5, &mut rng);
        let w = g.adj.weights().as_slice();
        // For every node, the nearest kept neighbor must have the largest
        // weight (Gaussian kernel is monotone in distance).
        for i in 0..50 {
            let mut pairs: Vec<(f32, f32)> = (0..50)
                .filter(|&j| w[i * 50 + j] > 0.0)
                .map(|j| {
                    let dx = g.coords[i].0 - g.coords[j].0;
                    let dy = g.coords[i].1 - g.coords[j].1;
                    ((dx * dx + dy * dy).sqrt(), w[i * 50 + j])
                })
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for win in pairs.windows(2) {
                assert!(win[0].1 >= win[1].1, "weights not monotone for node {i}");
            }
        }
    }

    #[test]
    fn knn_no_self_loops() {
        let mut rng = Rng64::new(3);
        let g = knn_geometric(20, 3, &mut rng);
        let w = g.adj.weights().as_slice();
        for i in 0..20 {
            assert_eq!(w[i * 20 + i], 0.0);
        }
    }

    #[test]
    fn knn_deterministic_by_seed() {
        let g1 = knn_geometric(15, 3, &mut Rng64::new(7));
        let g2 = knn_geometric(15, 3, &mut Rng64::new(7));
        assert_eq!(g1.adj.weights(), g2.adj.weights());
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let mut rng = Rng64::new(4);
        let a = erdos_renyi(100, 0.1, &mut rng);
        let nnz = a.weights().as_slice().iter().filter(|&&v| v > 0.0).count();
        let density = nnz as f32 / (100.0 * 99.0);
        assert!((density - 0.1).abs() < 0.02, "density {density}");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = Rng64::new(5);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert!(empty.weights().as_slice().iter().all(|&v| v == 0.0));
        let full = erdos_renyi(10, 1.0, &mut rng);
        let nnz = full.weights().as_slice().iter().filter(|&&v| v > 0.0).count();
        assert_eq!(nnz, 90);
    }

    #[test]
    fn ring_road_symmetric_and_local() {
        let a = ring_road(10, 2);
        let w = a.weights().as_slice();
        // Node 0 connects to 1,2 (fwd) and 9,8 (back).
        assert_eq!(w[1], 1.0);
        assert_eq!(w[2], 0.5);
        assert_eq!(w[9], 1.0);
        assert_eq!(w[8], 0.5);
        assert_eq!(w[5], 0.0);
        // Symmetry of the ring.
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(w[i * 10 + j], w[j * 10 + i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn knn_rejects_k_too_large() {
        knn_geometric(5, 5, &mut Rng64::new(0));
    }

    #[test]
    fn grid_city_degrees() {
        let g = grid_city(3, 4);
        let w = g.weights().as_slice();
        let n = 12;
        let deg = |i: usize| (0..n).filter(|&j| w[i * n + j] > 0.0).count();
        // Corners have 2 neighbors, edges 3, interior 4.
        assert_eq!(deg(0), 2); // (0,0)
        assert_eq!(deg(1), 3); // (0,1)
        assert_eq!(deg(5), 4); // (1,1) interior
        // Symmetric.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(w[i * n + j], w[j * n + i]);
            }
        }
    }

    #[test]
    fn grid_city_single_cell() {
        let g = grid_city(1, 1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.weights().as_slice(), &[0.0]);
    }
}
