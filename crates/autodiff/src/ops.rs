//! Differentiable operations on [`Var`].
//!
//! Each method runs the forward computation eagerly with `sagdfn-tensor`
//! kernels, then records a backward closure on the tape. Closures capture
//! only the minimal metadata (shapes, indices, constants) — parent and own
//! forward values are supplied by the tape during the reverse sweep.

use crate::tape::{reduce_grad_to_shape, Var};
use sagdfn_tensor::ops::{broadcast_binary, map};
use sagdfn_tensor::sparse::{dadj_dense, DiffusePlan};
use sagdfn_tensor::{Shape, Tensor};

impl<'t> Var<'t> {
    fn same_tape(&self, other: &Var<'t>) {
        assert!(
            std::ptr::eq(self.tape, other.tape),
            "vars belong to different tapes"
        );
    }

    // ---------------------------------------------------------------------
    // Broadcast arithmetic
    // ---------------------------------------------------------------------

    /// Elementwise sum with broadcasting.
    pub fn add(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.with_value(|a| other.with_value(|b| a.add(b)));
        self.tape.push_op(value, &[*self, *other], move |g, _, _| {
            vec![
                reduce_grad_to_shape(g, &sa),
                reduce_grad_to_shape(g, &sb),
            ]
        })
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.with_value(|a| other.with_value(|b| a.sub(b)));
        self.tape.push_op(value, &[*self, *other], move |g, _, _| {
            vec![
                reduce_grad_to_shape(g, &sa),
                reduce_grad_to_shape(&g.neg(), &sb),
            ]
        })
    }

    /// Elementwise product with broadcasting.
    pub fn mul(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.with_value(|a| other.with_value(|b| a.mul(b)));
        self.tape.push_op(value, &[*self, *other], move |g, parents, _| {
            let (a, b) = (parents[0], parents[1]);
            vec![
                reduce_grad_to_shape(&broadcast_binary(g, b, |g, b| g * b), &sa),
                reduce_grad_to_shape(&broadcast_binary(g, a, |g, a| g * a), &sb),
            ]
        })
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.with_value(|a| other.with_value(|b| a.div(b)));
        self.tape.push_op(value, &[*self, *other], move |g, parents, _| {
            let (a, b) = (parents[0], parents[1]);
            let da = broadcast_binary(g, b, |g, b| g / b);
            // d/db (a/b) = -a / b^2
            let gb = broadcast_binary(g, a, |g, a| g * a);
            let db = broadcast_binary(&gb, b, |x, b| -x / (b * b));
            vec![
                reduce_grad_to_shape(&da, &sa),
                reduce_grad_to_shape(&db, &sb),
            ]
        })
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&self, s: f32) -> Var<'t> {
        let value = self.with_value(|a| a.add_scalar(s));
        self.tape
            .push_op(value, &[*self], |g, _, _| vec![g.clone()])
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&self, s: f32) -> Var<'t> {
        let value = self.with_value(|a| a.scale(s));
        self.tape
            .push_op(value, &[*self], move |g, _, _| vec![g.scale(s)])
    }

    /// Negation.
    pub fn neg(&self) -> Var<'t> {
        self.scale(-1.0)
    }

    // ---------------------------------------------------------------------
    // Matrix ops
    // ---------------------------------------------------------------------

    /// Matrix product, with the same rank rules as [`Tensor::matmul`]:
    /// `(m,k)·(k,n)`, `(..b,m,k)·(k,n)`, `(m,k)·(..b,k,n)` or
    /// `(..b,m,k)·(..b,k,n)`.
    pub fn matmul(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        let value = self.with_value(|a| other.with_value(|b| a.matmul(b)));
        let (ra, rb) = (self.shape().rank(), other.shape().rank());
        let shared_rhs = rb == 2 && ra > 2;
        let shared_lhs = ra == 2 && rb > 2;
        self.tape
            .push_op(value, &[*self, *other], move |g, parents, _| {
                let (a, b) = (parents[0], parents[1]);
                if shared_rhs {
                    // A: (..batch, m, k), B: (k, n), G: (..batch, m, n).
                    let da = g.matmul_nt(b);
                    // dB = sum over batch of A_b^T G_b = A2^T @ G2 with
                    // flattened leading dims.
                    let k = a.dim(a.rank() - 1);
                    let n = g.dim(g.rank() - 1);
                    let rows = a.numel() / k;
                    let a2 = a.reshape([rows, k]);
                    let g2 = g.reshape([rows, n]);
                    let db = a2.matmul_tn(&g2);
                    vec![da, db]
                } else if shared_lhs {
                    // A: (m, k), B: (..batch, k, n), G: (..batch, m, n).
                    // dA sums G_b · B_bᵀ over the batch.
                    let da = reduce_grad_to_shape(&g.matmul_nt(b), a.shape());
                    let db = a.matmul_tn(g);
                    vec![da, db]
                } else {
                    let da = g.matmul_nt(b);
                    let db = a.matmul_tn(g);
                    vec![da, db]
                }
            })
    }

    /// `self · otherᵀ` for rank-2 operands, via the transpose-free
    /// [`Tensor::matmul_nt`] kernel — attention's inner product
    /// `E · E_Iᵀ` without materializing `E_Iᵀ`.
    pub fn matmul_nt(&self, other: &Var<'t>) -> Var<'t> {
        self.same_tape(other);
        assert_eq!(self.shape().rank(), 2, "Var::matmul_nt expects rank-2 operands");
        assert_eq!(other.shape().rank(), 2, "Var::matmul_nt expects rank-2 operands");
        let value = self.with_value(|a| other.with_value(|b| a.matmul_nt(b)));
        self.tape
            .push_op(value, &[*self, *other], move |g, parents, _| {
                let (a, b) = (parents[0], parents[1]);
                // C = A·Bᵀ ⇒ dA = G·B, dB = Gᵀ·A.
                vec![g.matmul(b), g.matmul_tn(a)]
            })
    }

    /// Graph-diffusion product `Y[b] = A · X[b]` for the adjacency `self`
    /// (`(n, m)`) and features `x` (`(..batch, m, c)`), executed per the
    /// [`DiffusePlan`] chosen for this adjacency state.
    ///
    /// * [`DiffusePlan::Sparse`]: forward runs [`ShardedCsr::spmm`] and
    ///   the backward computes `dX = Aᵀ·dY` via [`ShardedCsr::spmm_t`]
    ///   and `dA` restricted to the CSR support via
    ///   [`ShardedCsr::dadj`].
    /// * [`DiffusePlan::Hybrid`]: both products stay on the dense
    ///   transpose-free GEMMs (which win at moderate density), while
    ///   `dA` still runs the support-restricted [`ShardedCsr::dadj`] —
    ///   the one kernel where skipping zeros pays at any density.
    /// * [`DiffusePlan::Dense`]: everything on the dense kernels.
    ///
    /// The support restriction of `dA` is exact end-to-end for
    /// entmax-produced adjacencies: the α-entmax Jacobian vanishes
    /// outside the support, so dropped `dA` entries only ever multiply
    /// exact zeros upstream (DESIGN.md §9). All three pipelines agree
    /// under `f32` equality.
    ///
    /// [`ShardedCsr::spmm`]: sagdfn_tensor::sparse::ShardedCsr::spmm
    /// [`ShardedCsr::spmm_t`]: sagdfn_tensor::sparse::ShardedCsr::spmm_t
    /// [`ShardedCsr::dadj`]: sagdfn_tensor::sparse::ShardedCsr::dadj
    pub fn spmm_diffuse(&self, x: &Var<'t>, plan: DiffusePlan) -> Var<'t> {
        self.same_tape(x);
        assert_eq!(self.shape().rank(), 2, "spmm_diffuse adjacency must be rank 2");
        if let Some(c) = plan.csr() {
            let dims = self.dims();
            assert_eq!(
                (c.n_rows(), c.n_cols()),
                (dims[0], dims[1]),
                "CSR shape does not match the adjacency var"
            );
        }
        let value = match &plan {
            DiffusePlan::Sparse(c) => x.with_value(|xv| c.spmm(xv)),
            _ => self.with_value(|a| x.with_value(|xv| a.matmul(xv))),
        };
        self.tape.push_op(value, &[*self, *x], move |g, parents, _| {
            let (a, xv) = (parents[0], parents[1]);
            match &plan {
                DiffusePlan::Sparse(c) => vec![c.dadj(g, xv), c.spmm_t(g)],
                DiffusePlan::Hybrid(c) => vec![c.dadj(g, xv), a.matmul_tn(g)],
                DiffusePlan::Dense => vec![dadj_dense(g, xv), a.matmul_tn(g)],
            }
        })
    }

    /// Swaps the last two dimensions.
    pub fn transpose_last2(&self) -> Var<'t> {
        let value = self.with_value(|a| a.transpose_last2());
        self.tape
            .push_op(value, &[*self], |g, _, _| vec![g.transpose_last2()])
    }

    /// Reshape (element count preserved).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var<'t> {
        let shape = shape.into();
        let orig = self.shape();
        let value = self.with_value(|a| a.reshape(shape.clone()));
        self.tape
            .push_op(value, &[*self], move |g, _, _| vec![g.reshape(orig.clone())])
    }

    // ---------------------------------------------------------------------
    // Activations / elementwise nonlinearities
    // ---------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var<'t> {
        let value = self.with_value(|a| a.sigmoid());
        self.tape.push_op(value, &[*self], |g, _, own| {
            vec![broadcast_binary(g, own, |g, s| g * s * (1.0 - s))]
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var<'t> {
        let value = self.with_value(|a| a.tanh());
        self.tape.push_op(value, &[*self], |g, _, own| {
            vec![broadcast_binary(g, own, |g, t| g * (1.0 - t * t))]
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var<'t> {
        let value = self.with_value(|a| a.relu());
        self.tape.push_op(value, &[*self], |g, parents, _| {
            vec![broadcast_binary(g, parents[0], |g, x| {
                if x > 0.0 {
                    g
                } else {
                    0.0
                }
            })]
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var<'t> {
        let value = self.with_value(|a| a.exp());
        self.tape.push_op(value, &[*self], |g, _, own| {
            vec![broadcast_binary(g, own, |g, e| g * e)]
        })
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var<'t> {
        let value = self.with_value(|a| a.sqrt());
        self.tape.push_op(value, &[*self], |g, _, own| {
            vec![broadcast_binary(g, own, |g, s| g * 0.5 / s)]
        })
    }

    /// Elementwise square.
    pub fn square(&self) -> Var<'t> {
        let value = self.with_value(|a| a.square());
        self.tape.push_op(value, &[*self], |g, parents, _| {
            vec![broadcast_binary(g, parents[0], |g, x| g * 2.0 * x)]
        })
    }

    /// Elementwise absolute value; subgradient 0 at the kink (the choice
    /// PyTorch makes, and what the paper's L1 loss — Eq. 11 — needs).
    pub fn abs(&self) -> Var<'t> {
        let value = self.with_value(|a| a.abs());
        self.tape.push_op(value, &[*self], |g, parents, _| {
            vec![broadcast_binary(g, parents[0], |g, x| {
                if x > 0.0 {
                    g
                } else if x < 0.0 {
                    -g
                } else {
                    0.0
                }
            })]
        })
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum of all elements → scalar var.
    pub fn sum(&self) -> Var<'t> {
        let orig = self.shape();
        let value = Tensor::scalar(self.with_value(|a| a.sum()));
        self.tape.push_op(value, &[*self], move |g, _, _| {
            vec![Tensor::full(orig.clone(), g.item())]
        })
    }

    /// Mean of all elements → scalar var.
    pub fn mean(&self) -> Var<'t> {
        let n = self.with_value(|a| a.numel());
        self.sum().scale(1.0 / n as f32)
    }

    /// Sum along `axis`, removing that dimension.
    pub fn sum_axis(&self, axis: usize) -> Var<'t> {
        let orig = self.shape();
        let value = self.with_value(|a| a.sum_axis(axis));
        self.tape.push_op(value, &[*self], move |g, _, _| {
            // Tile the reduced gradient back along the removed axis.
            let dims = orig.dims();
            let outer: usize = dims[..axis].iter().product();
            let axis_len = dims[axis];
            let inner: usize = dims[axis + 1..].iter().product();
            let gsrc = g.as_slice();
            // Recycled buffer: the tiling copies every output slice.
            let mut out = sagdfn_tensor::alloc::acquire(orig.numel());
            for o in 0..outer {
                for a in 0..axis_len {
                    let dst = &mut out[(o * axis_len + a) * inner..][..inner];
                    dst.copy_from_slice(&gsrc[o * inner..(o + 1) * inner]);
                }
            }
            vec![Tensor::from_vec(out, orig.clone())]
        })
    }

    /// Mean along `axis`, removing that dimension.
    pub fn mean_axis(&self, axis: usize) -> Var<'t> {
        let n = self.shape().dim(axis) as f32;
        self.sum_axis(axis).scale(1.0 / n)
    }

    // ---------------------------------------------------------------------
    // Structural ops
    // ---------------------------------------------------------------------

    /// Concatenates vars along `axis`.
    pub fn concat(parts: &[Var<'t>], axis: usize) -> Var<'t> {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tape = parts[0].tape;
        for p in parts {
            parts[0].same_tape(p);
        }
        // Borrow the part values straight off the tape — no per-part clone.
        let (value, sizes) = tape.with_values(parts, |refs| {
            let sizes: Vec<usize> = refs.iter().map(|v| v.dim(axis)).collect();
            (Tensor::concat(refs, axis), sizes)
        });
        tape.push_op(value, parts, move |g, _, _| g.split(axis, &sizes))
    }

    /// Stacks equally-shaped vars along a new axis.
    pub fn stack(parts: &[Var<'t>], axis: usize) -> Var<'t> {
        assert!(!parts.is_empty(), "stack of zero vars");
        let mut dims = parts[0].dims();
        dims.insert(axis, 1);
        let reshaped: Vec<Var<'t>> = parts
            .iter()
            .map(|p| p.reshape(dims.as_slice()))
            .collect();
        Var::concat(&reshaped, axis)
    }

    /// Gathers slices along `axis` at `indices` (differentiable
    /// `index_select`; backward scatter-adds).
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Var<'t> {
        let orig = self.shape();
        let idx = indices.to_vec();
        let value = self.with_value(|a| a.index_select(axis, indices));
        self.tape.push_op(value, &[*self], move |g, _, _| {
            let mut acc = Tensor::zeros(orig.clone());
            acc.scatter_add(axis, &idx, g);
            vec![acc]
        })
    }

    /// Copies the half-open range `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Var<'t> {
        let indices: Vec<usize> = (start..end).collect();
        self.index_select(axis, &indices)
    }

    /// General axis permutation (NumPy `transpose` semantics). Backward
    /// applies the inverse permutation.
    pub fn permute(&self, perm: &[usize]) -> Var<'t> {
        let value = self.with_value(|a| a.permute(perm));
        let inverse = sagdfn_tensor::index::inverse_permutation(perm);
        self.tape
            .push_op(value, &[*self], move |g, _, _| vec![g.permute(&inverse)])
    }

    // ---------------------------------------------------------------------
    // Sparse normalizers (the paper's Eq. 3 / Eq. 7)
    // ---------------------------------------------------------------------

    /// Applies α-entmax independently to every row of the last axis.
    /// α = 1 is softmax, α = 2 is sparsemax. Rows run in parallel on the
    /// persistent worker pool in both directions; backward uses the
    /// closed-form Jacobian-vector product from `sagdfn-entmax`.
    pub fn entmax_rows(&self, alpha: f32) -> Var<'t> {
        let value = self.with_value(|a| {
            let n = a.dim(a.rank() - 1);
            Tensor::from_vec(
                sagdfn_entmax::entmax_rows(a.as_slice(), n, alpha),
                a.shape().clone(),
            )
        });
        self.tape.push_op(value, &[*self], move |g, _, own| {
            let n = own.dim(own.rank() - 1);
            vec![Tensor::from_vec(
                sagdfn_entmax::entmax_backward_rows(own.as_slice(), g.as_slice(), n, alpha),
                own.shape().clone(),
            )]
        })
    }

    /// Softmax over the last axis (α = 1 entmax).
    pub fn softmax_rows(&self) -> Var<'t> {
        self.entmax_rows(1.0)
    }

    /// Multiplies by a constant (non-differentiable) tensor with
    /// broadcasting — used for dropout masks and loss masks.
    pub fn mul_const(&self, mask: &Tensor) -> Var<'t> {
        let sa = self.shape();
        let value = self.with_value(|a| a.mul(mask));
        let mask = mask.clone();
        self.tape.push_op(value, &[*self], move |g, _, _| {
            vec![reduce_grad_to_shape(
                &broadcast_binary(g, &mask, |g, m| g * m),
                &sa,
            )]
        })
    }

    /// `max(self, floor)` elementwise against a constant — a numerically
    /// convenient clamp used to keep degree normalizers positive.
    pub fn clamp_min(&self, floor: f32) -> Var<'t> {
        let value = self.with_value(|a| map(a, |x| x.max(floor)));
        self.tape.push_op(value, &[*self], move |g, parents, _| {
            vec![broadcast_binary(g, parents[0], move |g, x| {
                if x > floor {
                    g
                } else {
                    0.0
                }
            })]
        })
    }
}

#[cfg(test)]
impl<'t> Var<'t> {
    /// Test helper: a fixed constant weight tensor shaped like `self`,
    /// placed on the same tape.
    fn tape_constant_weights(&self) -> Var<'t> {
        let dims = self.dims();
        let n: usize = dims.iter().product();
        let w: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) - 3.0).collect();
        self.tape
            .constant(Tensor::from_vec(w, dims.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::Tape;
    use sagdfn_tensor::{Rng64, Tensor};

    /// Convenience: random tensor.
    fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn add_forward_and_grad() {
        check_gradients(&[randn(&[2, 3], 1), randn(&[2, 3], 2)], |t, v| {
            v[0].add(&v[1]).mul(&v[0]).sum().scale(0.5).add_scalar(0.0).mean();
            // keep it simple: loss = sum((a+b)*a)
            let _ = t;
            v[0].add(&v[1]).mul(&v[0]).sum()
        });
    }

    #[test]
    fn broadcast_add_grad() {
        check_gradients(&[randn(&[2, 3], 3), randn(&[3], 4)], |_, v| {
            v[0].add(&v[1]).square().sum()
        });
    }

    #[test]
    fn broadcast_mul_column_grad() {
        check_gradients(&[randn(&[2, 3], 5), randn(&[2, 1], 6)], |_, v| {
            v[0].mul(&v[1]).sum()
        });
    }

    #[test]
    fn sub_div_grad() {
        let mut b = randn(&[2, 2], 8);
        // keep denominators away from zero
        for v in b.as_mut_slice() {
            *v = v.abs() + 0.5;
        }
        check_gradients(&[randn(&[2, 2], 7), b], |_, v| v[0].sub(&v[1]).div(&v[1]).sum());
    }

    #[test]
    fn matmul_2d_grad() {
        check_gradients(&[randn(&[3, 4], 9), randn(&[4, 2], 10)], |_, v| {
            v[0].matmul(&v[1]).sum()
        });
    }

    #[test]
    fn matmul_batched_shared_rhs_grad() {
        check_gradients(&[randn(&[2, 3, 4], 11), randn(&[4, 2], 12)], |_, v| {
            v[0].matmul(&v[1]).square().sum()
        });
    }

    #[test]
    fn matmul_batched_shared_lhs_grad() {
        check_gradients(&[randn(&[3, 4], 51), randn(&[2, 4, 2], 52)], |_, v| {
            v[0].matmul(&v[1]).square().sum()
        });
    }

    #[test]
    fn matmul_nt_grad() {
        check_gradients(&[randn(&[3, 5], 53), randn(&[4, 5], 54)], |_, v| {
            v[0].matmul_nt(&v[1]).square().sum()
        });
    }

    #[test]
    fn matmul_nt_value_matches_transposed_matmul() {
        let a = randn(&[7, 5], 55);
        let b = randn(&[6, 5], 56);
        let tape = Tape::new();
        let va = tape.leaf(a.clone());
        let vb = tape.leaf(b.clone());
        let y = va.matmul_nt(&vb);
        assert_eq!(y.value(), a.matmul(&b.t()));
    }

    #[test]
    fn spmm_diffuse_dense_grad() {
        use sagdfn_tensor::sparse::DiffusePlan;
        check_gradients(&[randn(&[4, 6], 57), randn(&[2, 6, 3], 58)], |_, v| {
            v[0].spmm_diffuse(&v[1], DiffusePlan::Dense).square().sum()
        });
    }

    /// The support-restricted `dA` of the sparse and hybrid pipelines
    /// must reproduce the dense gradient once both are pushed through
    /// the entmax backward: off-support entries of the dense `dA` only
    /// multiply exact-zero entmax Jacobian rows, so dropping them is
    /// lossless.
    #[test]
    fn spmm_diffuse_sparse_and_hybrid_match_dense_after_entmax() {
        use sagdfn_tensor::sparse::{DiffusePlan, ShardedCsr};
        use std::rc::Rc;

        let mut rng = Rng64::new(59);
        // Spread-out logits so α-entmax produces a genuinely sparse map.
        let z0 = Tensor::rand_uniform([5, 8], -4.0, 4.0, &mut rng);
        let x0 = Tensor::rand_uniform([2, 8, 3], -1.0, 1.0, &mut rng);

        let run = |kind: &str| {
            let tape = Tape::new();
            let z = tape.leaf(z0.clone());
            let x = tape.leaf(x0.clone());
            let p = z.entmax_rows(1.5);
            let plan = match kind {
                "dense" => DiffusePlan::Dense,
                _ => {
                    let c = ShardedCsr::from_dense(&p.value(), 1);
                    assert!(c.nnz() < 5 * 8, "entmax output unexpectedly dense");
                    match kind {
                        "hybrid" => DiffusePlan::Hybrid(Rc::new(c)),
                        _ => DiffusePlan::Sparse(Rc::new(c)),
                    }
                }
            };
            let loss = p.spmm_diffuse(&x, plan).square().sum();
            let grads = loss.backward();
            (
                loss.value(),
                grads.expect(z).clone(),
                grads.expect(x).clone(),
            )
        };

        let (loss_d, gz_d, gx_d) = run("dense");
        for kind in ["sparse", "hybrid"] {
            let (loss_s, gz_s, gx_s) = run(kind);
            assert_eq!(loss_s, loss_d, "{kind}");
            assert_eq!(gz_s, gz_d, "{kind}");
            assert_eq!(gx_s, gx_d, "{kind}");
        }
    }

    #[test]
    fn matmul_batched_per_batch_grad() {
        check_gradients(&[randn(&[2, 3, 4], 13), randn(&[2, 4, 2], 14)], |_, v| {
            v[0].matmul(&v[1]).sum()
        });
    }

    #[test]
    fn activations_grad() {
        check_gradients(&[randn(&[2, 5], 15)], |_, v| {
            v[0].sigmoid().add(&v[0].tanh()).mul(&v[0].exp()).sum()
        });
    }

    #[test]
    fn relu_grad() {
        check_gradients(&[randn(&[3, 3], 16)], |_, v| v[0].relu().square().sum());
    }

    #[test]
    fn abs_grad() {
        check_gradients(&[randn(&[4], 17)], |_, v| v[0].abs().sum());
    }

    #[test]
    fn sqrt_grad() {
        let mut x = randn(&[4], 18);
        for v in x.as_mut_slice() {
            *v = v.abs() + 0.5;
        }
        check_gradients(&[x], |_, v| v[0].sqrt().sum());
    }

    #[test]
    fn sum_axis_grad() {
        check_gradients(&[randn(&[2, 3, 2], 19)], |_, v| {
            v[0].sum_axis(1).square().sum()
        });
    }

    #[test]
    fn mean_axis_grad() {
        check_gradients(&[randn(&[3, 4], 20)], |_, v| v[0].mean_axis(0).square().sum());
    }

    #[test]
    fn concat_grad() {
        check_gradients(&[randn(&[2, 2], 21), randn(&[2, 3], 22)], |_, v| {
            crate::Var::concat(&[v[0], v[1]], 1).square().sum()
        });
    }

    #[test]
    fn stack_grad() {
        check_gradients(&[randn(&[2, 2], 23), randn(&[2, 2], 24)], |_, v| {
            crate::Var::stack(&[v[0], v[1]], 0).square().sum()
        });
    }

    #[test]
    fn index_select_grad() {
        check_gradients(&[randn(&[5, 3], 25)], |_, v| {
            v[0].index_select(0, &[4, 0, 0, 2]).square().sum()
        });
    }

    #[test]
    fn slice_axis_grad() {
        check_gradients(&[randn(&[3, 6], 26)], |_, v| {
            v[0].slice_axis(1, 2, 5).square().sum()
        });
    }

    #[test]
    fn permute_grad() {
        check_gradients(&[randn(&[2, 3, 2], 30)], |_, v| {
            v[0].permute(&[2, 0, 1]).square().sum()
        });
    }

    #[test]
    fn permute_matches_transpose_last2() {
        let tape = Tape::new();
        let x = tape.leaf(randn(&[3, 4], 31));
        let a = x.permute(&[1, 0]).value();
        let b = x.transpose_last2().value();
        assert_eq!(a, b);
    }

    #[test]
    fn reshape_transpose_grad() {
        check_gradients(&[randn(&[2, 6], 27)], |_, v| {
            v[0].reshape([3, 4]).transpose_last2().square().sum()
        });
    }

    #[test]
    fn softmax_rows_grad() {
        check_gradients(&[randn(&[3, 4], 28)], |_, v| {
            // weighted sum of softmax outputs makes the loss sensitive to z
            let w = v[0].tape_constant_weights();
            v[0].softmax_rows().mul(&w).sum()
        });
    }

    #[test]
    fn entmax_rows_15_grad() {
        // α=1.5 is smooth away from support boundaries; random inputs are
        // almost surely interior points.
        check_gradients(&[randn(&[2, 5], 29)], |_, v| {
            let w = v[0].tape_constant_weights();
            v[0].entmax_rows(1.5).mul(&w).sum()
        });
    }

    #[test]
    fn mul_const_masks_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]));
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0], [3]);
        let loss = x.mul_const(&mask).sum();
        let grads = loss.backward();
        assert_eq!(grads.expect(x).as_slice(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_min_grad_zero_below_floor() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5, 2.0], [2]));
        let loss = x.clamp_min(1.0).sum();
        let grads = loss.backward();
        assert_eq!(grads.expect(x).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn chained_graph_matches_hand_derivative() {
        // f(x) = sum(sigmoid(2x)) -> f'(x) = 2 s (1 - s).
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, -0.7], [2]));
        let loss = x.scale(2.0).sigmoid().sum();
        let grads = loss.backward();
        let g = grads.expect(x);
        for (i, &xi) in [0.3f32, -0.7].iter().enumerate() {
            let s = 1.0 / (1.0 + (-2.0 * xi).exp());
            let expect = 2.0 * s * (1.0 - s);
            assert!((g.as_slice()[i] - expect).abs() < 1e-5);
        }
    }
}
