//! # sagdfn-autodiff
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`sagdfn_tensor::Tensor`] — the substrate that stands in for PyTorch's
//! autograd in this reproduction.
//!
//! ## Model
//!
//! A [`Tape`] is an append-only arena of nodes. Every operation on a
//! [`Var`] (a copyable handle `{tape, node id}`) appends a node holding the
//! forward value, its parent ids, and a boxed backward closure. Calling
//! [`Var::backward`] on a scalar output seeds `dL/dout = 1` and walks the
//! arena in reverse topological order (which is just reverse insertion
//! order), accumulating gradients into a side table.
//!
//! Training loops build a *fresh tape per step*: leaf nodes are created
//! from the parameter tensors with [`Tape::leaf`], the forward pass runs,
//! `backward()` fills gradients, and the optimizer reads them back via
//! `Gradients`. Dropping the tape frees all intermediates.
//!
//! ## No-grad execution
//!
//! Inference does not need the graph. [`Tape::no_grad`] returns a
//! [`NoGradGuard`]; while it is live, every op runs the identical tensor
//! kernels but stores only its forward value — no node, no parent list, no
//! boxed backward closure. Outputs are bit-identical to the recording path
//! and [`Tape::len`] stays at zero for a pure-eval pass.
//!
//! ## Correctness
//!
//! Every differentiable op is covered by a finite-difference gradient check
//! in this crate's tests (see [`gradcheck`]); broadcasting backward reduces
//! gradients back to the operand shape by summing over stretched
//! dimensions.

pub mod gradcheck;
pub mod ops;
pub mod tape;

pub use tape::{Gradients, NoGradGuard, Tape, TapeStats, Var};
