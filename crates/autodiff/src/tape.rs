//! The tape arena and variable handles.

use sagdfn_obs as obs;
use sagdfn_tensor::{Shape, Tensor};
use std::cell::{Cell, RefCell};

/// Backward closure: `(grad_out, parent_values, own_value) -> parent_grads`.
///
/// Returns one gradient tensor per parent, each shaped like that parent.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    pub value: Tensor,
    pub parents: Vec<usize>,
    /// `None` for leaves and explicitly detached nodes.
    pub backward: Option<BackwardFn>,
}

/// Append-only computation graph.
///
/// A tape can serve one training step and then be [`reset`](Tape::reset)
/// for the next: the node arena keeps its capacity, and the backward
/// gradient table is recycled via [`recycle_gradients`](Tape::recycle_gradients),
/// so steady-state steps re-record the graph without reallocating it.
///
/// A tape also carries a *no-grad* execution mode (see [`Tape::no_grad`]):
/// while a [`NoGradGuard`] is live, every `Var` op runs the identical
/// tensor kernels but stores only the forward value in a parallel value
/// arena — no backward closure is boxed and no graph node is recorded, so
/// [`Tape::len`]/[`Tape::stats`] stay at zero for a pure-eval pass.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Recycled backing storage for the backward gradient table.
    grad_scratch: RefCell<Vec<Option<Tensor>>>,
    /// Forward values produced while in no-grad mode (no `Node` wrapper:
    /// no parents, no closure — just the tensor).
    pub(crate) eval_values: RefCell<Vec<Tensor>>,
    /// True while a [`NoGradGuard`] is live.
    eval_mode: Cell<bool>,
}

/// A handle to one node on a tape. Cheap to copy; all tensor ops live on
/// this type (see the `ops` module).
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) id: usize,
    /// True when `id` indexes the no-grad value arena rather than the
    /// recorded graph.
    pub(crate) eval: bool,
}

/// RAII guard returned by [`Tape::no_grad`]; restores the tape's previous
/// execution mode on drop, so guards nest correctly.
pub struct NoGradGuard<'t> {
    tape: &'t Tape,
    prev: bool,
}

impl Drop for NoGradGuard<'_> {
    fn drop(&mut self) {
        self.tape.eval_mode.set(self.prev);
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far. No-grad values do not count: a
    /// pure-eval pass leaves the recorded graph empty.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of no-grad forward values stored since the last reset
    /// (the eval arena, disjoint from [`Tape::len`]). A compiled plan
    /// executor bypasses the tape entirely, so a planned eval forward
    /// stores exactly one value here — the output constant — where the
    /// interpreted no-grad pass stores one per recorded op.
    pub fn eval_len(&self) -> usize {
        self.eval_values.borrow().len()
    }

    /// Enters no-grad mode until the returned guard drops. While active,
    /// `Var` ops compute forward values through the exact same kernels but
    /// skip node recording and backward-closure allocation entirely.
    pub fn no_grad(&self) -> NoGradGuard<'_> {
        NoGradGuard {
            tape: self,
            prev: self.eval_mode.replace(true),
        }
    }

    /// True while a [`NoGradGuard`] is live on this tape.
    pub fn is_no_grad(&self) -> bool {
        self.eval_mode.get()
    }

    /// Clears every recorded node while retaining the arena's capacity, so
    /// the next step's graph is recorded into already-owned storage.
    ///
    /// All `Var` handles pointing at this tape are invalidated: their ids
    /// refer to nodes that no longer exist. Callers must re-bind parameters
    /// (and rebuild any cached vars) after a reset — `trainer::fit` does
    /// this once per batch.
    pub fn reset(&self) {
        obs::tally(obs::Kernel::TapeReset, 0, 0, 0);
        // Dropping the nodes releases their value tensors back to the
        // tensor recycling pool; `clear` keeps the Vec allocation itself.
        self.nodes.borrow_mut().clear();
        self.eval_values.borrow_mut().clear();
    }

    /// Returns a spent gradient table's backing storage to the tape so the
    /// next [`backward`](Var::backward) reuses it instead of reallocating.
    /// Dropped gradient tensors go back to the tensor recycling pool.
    pub fn recycle_gradients(&self, mut grads: Gradients) {
        grads.grads.clear();
        let mut scratch = self.grad_scratch.borrow_mut();
        // Keep the larger of the two allocations.
        if grads.grads.capacity() > scratch.capacity() {
            *scratch = std::mem::take(&mut grads.grads);
        }
    }

    /// Memory/size introspection: `(node count, total forward-value
    /// bytes)`. Useful for debugging model memory or verifying that a
    /// forward pass records the expected graph size.
    pub fn stats(&self) -> TapeStats {
        let nodes = self.nodes.borrow();
        TapeStats {
            nodes: nodes.len(),
            leaves: nodes.iter().filter(|n| n.backward.is_none()).count(),
            value_bytes: nodes
                .iter()
                .map(|n| n.value.numel() * std::mem::size_of::<f32>())
                .sum(),
        }
    }

    /// Records a leaf (parameter or input). Leaves receive gradients but
    /// have no backward function. In no-grad mode the value goes to the
    /// eval arena instead (no gradient will ever be read).
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        if self.eval_mode.get() {
            return self.push_eval(value);
        }
        self.push(value, Vec::new(), None)
    }

    /// Records a constant: identical to a leaf, named separately to signal
    /// intent (no gradient will be read from it).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.leaf(value)
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var<'_> {
        // Counts are the node tally; the instantaneous span marks the
        // recording time of each forward node on the trace timeline.
        obs::tally(obs::Kernel::Forward, 0, 0, 4 * value.numel() as u64);
        let _s = obs::span("fwd_node");
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var {
            tape: self,
            id,
            eval: false,
        }
    }

    /// Stores a no-grad forward value: no parents, no closure, no node.
    pub(crate) fn push_eval(&self, value: Tensor) -> Var<'_> {
        obs::tally(obs::Kernel::EvalNode, 0, 0, 4 * value.numel() as u64);
        let mut vals = self.eval_values.borrow_mut();
        let id = vals.len();
        vals.push(value);
        Var {
            tape: self,
            id,
            eval: true,
        }
    }

    /// The single entry point every `Var` op records through. In no-grad
    /// mode only the value is kept — the backward closure is dropped
    /// without ever being boxed; otherwise the op is recorded as a graph
    /// node exactly as before.
    pub(crate) fn push_op<'t>(
        &'t self,
        value: Tensor,
        parents: &[Var<'t>],
        backward: impl Fn(&Tensor, &[&Tensor], &Tensor) -> Vec<Tensor> + 'static,
    ) -> Var<'t> {
        if self.eval_mode.get() {
            return self.push_eval(value);
        }
        let ids = parents
            .iter()
            .map(|p| {
                assert!(
                    !p.eval,
                    "cannot record a graph op over a no-grad value; \
                     leave no-grad mode or detach explicitly"
                );
                p.id
            })
            .collect();
        self.push(value, ids, Some(Box::new(backward)))
    }

    /// Applies `f` to the forward values of `vars` without cloning them,
    /// regardless of which arena each lives in (multi-operand twin of
    /// [`Var::with_value`], used by `concat`).
    pub(crate) fn with_values<R>(&self, vars: &[Var<'_>], f: impl FnOnce(&[&Tensor]) -> R) -> R {
        let nodes = self.nodes.borrow();
        let evals = self.eval_values.borrow();
        let refs: Vec<&Tensor> = vars
            .iter()
            .map(|v| {
                if v.eval {
                    &evals[v.id]
                } else {
                    &nodes[v.id].value
                }
            })
            .collect();
        f(&refs)
    }

    /// Runs reverse-mode accumulation seeded at `output` (must be a
    /// one-element tensor) and returns the full gradient table indexed by
    /// node id (`None` for nodes the output does not depend on).
    pub fn backward_from(&self, output: Var<'_>) -> Vec<Option<Tensor>> {
        let _g = obs::kernel(obs::Kernel::Backward, 0, 0, 0);
        assert!(
            !output.eval,
            "backward() on a no-grad value: it has no recorded graph"
        );
        let nodes = self.nodes.borrow();
        assert!(output.id < nodes.len(), "output var not on this tape");
        assert_eq!(
            nodes[output.id].value.numel(),
            1,
            "backward() requires a scalar output, got {}",
            nodes[output.id].value.shape()
        );
        // Reuse the recycled table from a previous backward pass when one
        // is available (see `recycle_gradients`).
        let mut grads = std::mem::take(&mut *self.grad_scratch.borrow_mut());
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        grads[output.id] = Some(Tensor::ones(nodes[output.id].value.shape().clone()));

        for id in (0..=output.id).rev() {
            let Some(grad_out) = grads[id].take() else {
                continue;
            };
            let node = &nodes[id];
            if let Some(backward) = &node.backward {
                let parent_vals: Vec<&Tensor> =
                    node.parents.iter().map(|&p| &nodes[p].value).collect();
                let _s = obs::span("bwd_node");
                let parent_grads = backward(&grad_out, &parent_vals, &node.value);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward fn returned {} grads for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (&pid, pg) in node.parents.iter().zip(parent_grads) {
                    assert_eq!(
                        pg.shape(),
                        nodes[pid].value.shape(),
                        "gradient shape {} does not match parent value shape {}",
                        pg.shape(),
                        nodes[pid].value.shape()
                    );
                    match &mut grads[pid] {
                        Some(acc) => acc.axpy(1.0, &pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            // Keep leaf gradients; interior grads were taken and dropped.
            if node.backward.is_none() {
                grads[id] = Some(grad_out);
            }
        }
        grads
    }
}

impl<'t> Var<'t> {
    /// The forward value (cloned out of the tape).
    pub fn value(&self) -> Tensor {
        self.with_value(Tensor::clone)
    }

    /// Applies `f` to the forward value without cloning it.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        if self.eval {
            f(&self.tape.eval_values.borrow()[self.id])
        } else {
            f(&self.tape.nodes.borrow()[self.id].value)
        }
    }

    /// The single value of a one-element var, read without cloning the
    /// tensor out of the tape (the scalar-loss hot path).
    pub fn item(&self) -> f32 {
        self.with_value(|t| t.item())
    }

    /// Shape of the forward value.
    pub fn shape(&self) -> Shape {
        self.with_value(|t| t.shape().clone())
    }

    /// Dimension sizes of the forward value.
    pub fn dims(&self) -> Vec<usize> {
        self.with_value(|t| t.dims().to_vec())
    }

    /// Node id on the tape (used by the optimizer to look up gradients).
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when this value was produced in no-grad mode (it lives in the
    /// eval arena and carries no graph history).
    pub fn is_no_grad(&self) -> bool {
        self.eval
    }

    /// The tape this var is recorded on. Lets helpers (e.g. loss functions)
    /// place constants on the same tape as their operands.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Runs backward from this scalar and returns the gradient table.
    pub fn backward(&self) -> Gradients {
        Gradients {
            grads: self.tape.backward_from(*self),
        }
    }

    /// Cuts the graph: the returned var has the same value but gradients
    /// stop here (PyTorch `detach`).
    pub fn detach(&self) -> Var<'t> {
        let v = self.value();
        if self.eval || self.tape.is_no_grad() {
            return self.tape.push_eval(v);
        }
        self.tape.push(v, Vec::new(), None)
    }
}

/// Size snapshot of a tape (see [`Tape::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapeStats {
    /// Total recorded nodes.
    pub nodes: usize,
    /// Nodes without a backward function (leaves/constants/detached).
    pub leaves: usize,
    /// Bytes held by forward values.
    pub value_bytes: usize,
}

/// Result of a backward pass: gradient per node id.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss w.r.t. `var`, or `None` if the loss does
    /// not depend on it.
    pub fn get(&self, var: Var<'_>) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Like [`get`](Self::get) but panics with the node id when missing —
    /// convenient for parameters that must always receive gradients.
    pub fn expect(&self, var: Var<'_>) -> &Tensor {
        self.get(var)
            .unwrap_or_else(|| panic!("no gradient for node {}", var.id))
    }

    /// Gradient lookup by raw node id.
    pub fn by_id(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Global gradient L2 norm over the given vars (for clipping).
    pub fn global_norm(&self, vars: &[Var<'_>]) -> f32 {
        let mut acc = 0.0f64;
        for v in vars {
            if let Some(g) = self.get(*v) {
                let n = g.norm_l2() as f64;
                acc += n * n;
            }
        }
        acc.sqrt() as f32
    }
}

/// Reduces `grad` (shaped like the broadcast output) back to `target`
/// (an operand's shape) by summing over stretched dimensions.
///
/// This is the single unreduce helper every broadcasting backward fn goes
/// through. It materializes lazily: the first `sum_axis` output replaces
/// what used to be an upfront full-size `grad.clone()`, and the
/// no-broadcast fall-through copies into a buffer from the tensor
/// recycling pool — so neither path hits the heap in steady state.
pub(crate) fn reduce_grad_to_shape(grad: &Tensor, target: &Shape) -> Tensor {
    let mut g: Option<Tensor> = None;
    // Sum away leading dims the operand did not have.
    while g.as_ref().unwrap_or(grad).rank() > target.rank() {
        g = Some(g.as_ref().unwrap_or(grad).sum_axis(0));
    }
    // Sum over dims where the operand had size 1.
    for axis in 0..target.rank() {
        let cur = g.as_ref().unwrap_or(grad);
        if target.dim(axis) == 1 && cur.dim(axis) != 1 {
            let summed = cur.sum_axis(axis);
            // Re-insert the size-1 axis.
            let mut dims = summed.dims().to_vec();
            dims.insert(axis, 1);
            g = Some(summed.into_reshape(dims.as_slice()));
        }
    }
    let g = g.unwrap_or_else(|| grad.clone());
    assert_eq!(
        g.shape(),
        target,
        "reduce_grad_to_shape produced {} for target {}",
        g.shape(),
        target
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_value_roundtrip() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        assert_eq!(x.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(x.dims(), vec![2]);
    }

    #[test]
    fn backward_of_identity_sum() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]));
        let loss = x.sum();
        let grads = loss.backward();
        assert_eq!(grads.expect(x).as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_accumulates_over_reuse() {
        // y = sum(x) + sum(x) -> dy/dx = 2.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let loss = x.sum().add(&x.sum());
        let grads = loss.backward();
        assert_eq!(grads.expect(x).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], [1]));
        let d = x.detach();
        let loss = d.mul(&x).sum();
        let grads = loss.backward();
        // d treated as constant 3.0 -> dL/dx = 3.0 only via the direct path.
        assert_eq!(grads.expect(x).as_slice(), &[3.0]);
        assert!(grads.get(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        x.backward();
    }

    #[test]
    fn unrelated_nodes_have_no_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0], [1]));
        let y = tape.leaf(Tensor::from_vec(vec![5.0], [1]));
        let loss = x.sum();
        let grads = loss.backward();
        assert!(grads.get(y).is_none());
    }

    #[test]
    fn reduce_grad_handles_leading_and_inner_broadcast() {
        let g = Tensor::ones([2, 3, 4]);
        let r = reduce_grad_to_shape(&g, &Shape::new(&[3, 1]));
        assert_eq!(r.dims(), &[3, 1]);
        assert_eq!(r.as_slice(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn tape_stats_count_nodes_and_bytes() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros([4])); // 16 bytes
        let _y = x.scale(2.0).add(&x); // two more nodes, 16 bytes each
        let stats = tape.stats();
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.value_bytes, 3 * 16);
    }

    #[test]
    fn no_grad_records_zero_nodes() {
        let tape = Tape::new();
        let guard = tape.no_grad();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]));
        let y = x.scale(2.0).add(&x).sigmoid().sum();
        assert!(y.is_no_grad());
        assert_eq!(tape.len(), 0, "no-grad ops must not record nodes");
        assert_eq!(tape.stats().nodes, 0);
        let expect: f32 = [1.0f32, 2.0, 3.0]
            .iter()
            .map(|x| 1.0 / (1.0 + (-3.0 * x).exp()))
            .sum();
        assert!((y.item() - expect).abs() < 1e-5);
        drop(guard);
        assert!(!tape.is_no_grad());
    }

    #[test]
    fn no_grad_matches_recorded_bitwise() {
        fn compute(tape: &Tape) -> Tensor {
            let x = tape.leaf(Tensor::from_vec(vec![0.3, -0.7, 1.1, 2.0], [2, 2]));
            let w = tape.leaf(Tensor::from_vec(vec![0.5, -1.0, 0.25, 0.75], [2, 2]));
            x.matmul(&w).sigmoid().mul(&x.tanh()).sum_axis(1).sum().value()
        }
        let taped = Tape::new();
        let recorded = compute(&taped);
        let eval_tape = Tape::new();
        let _g = eval_tape.no_grad();
        let evaled = compute(&eval_tape);
        assert_eq!(recorded, evaled, "no-grad value must be bit-identical");
        assert_eq!(eval_tape.len(), 0);
    }

    #[test]
    fn no_grad_guard_nests_and_restores() {
        let tape = Tape::new();
        assert!(!tape.is_no_grad());
        {
            let _outer = tape.no_grad();
            assert!(tape.is_no_grad());
            {
                let _inner = tape.no_grad();
                assert!(tape.is_no_grad());
            }
            assert!(tape.is_no_grad(), "inner drop must restore outer mode");
        }
        assert!(!tape.is_no_grad());
    }

    #[test]
    #[should_panic(expected = "no-grad value")]
    fn backward_rejects_no_grad_output() {
        let tape = Tape::new();
        let _g = tape.no_grad();
        let x = tape.leaf(Tensor::from_vec(vec![1.0], [1]));
        x.sum().backward();
    }

    #[test]
    #[should_panic(expected = "no-grad value")]
    fn recording_over_eval_var_is_rejected() {
        let tape = Tape::new();
        let x = {
            let _g = tape.no_grad();
            tape.leaf(Tensor::from_vec(vec![1.0], [1]))
        };
        // Guard dropped: tape records again, but x lives in the eval arena.
        let _ = x.scale(2.0);
    }

    #[test]
    fn reset_clears_eval_arena_too() {
        let tape = Tape::new();
        let _g = tape.no_grad();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let _ = x.scale(3.0);
        assert_eq!(tape.eval_values.borrow().len(), 2);
        tape.reset();
        assert_eq!(tape.eval_values.borrow().len(), 0);
        assert!(tape.is_no_grad(), "reset must not flip the execution mode");
    }

    #[test]
    fn global_norm_combines_params() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], [1]));
        let y = tape.leaf(Tensor::from_vec(vec![4.0], [1]));
        // loss = 3x + 4y -> grads (3, 4) -> global norm 5.
        let loss = x.scale(3.0).add(&y.scale(4.0)).sum();
        let grads = loss.backward();
        assert!((grads.global_norm(&[x, y]) - 5.0).abs() < 1e-5);
    }
}
