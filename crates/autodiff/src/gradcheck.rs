//! Finite-difference gradient checking.
//!
//! Used throughout the test suites (autodiff, nn, core) to validate every
//! backward implementation against a central-difference approximation of
//! the true derivative.

use crate::{Tape, Var};
use sagdfn_tensor::Tensor;

/// Default perturbation for central differences in f32.
pub const DEFAULT_EPS: f32 = 1e-2;
/// Default tolerance: |analytic − numeric| must be below
/// `atol + rtol · |numeric|`.
pub const DEFAULT_ATOL: f32 = 2e-2;
/// Relative component of the default tolerance.
pub const DEFAULT_RTOL: f32 = 5e-2;

/// Checks the analytic gradients of `f` at `inputs` against central
/// finite differences, panicking with a located message on mismatch.
///
/// `f` receives the tape and one leaf [`Var`] per input tensor and must
/// return a scalar loss var recorded on that tape.
pub fn check_gradients<F>(inputs: &[Tensor], f: F)
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    check_gradients_with(inputs, DEFAULT_EPS, DEFAULT_ATOL, DEFAULT_RTOL, f)
}

/// [`check_gradients`] with explicit epsilon and tolerances.
pub fn check_gradients_with<F>(inputs: &[Tensor], eps: f32, atol: f32, rtol: f32, f: F)
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    // Analytic gradients.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&tape, &vars);
    let grads = loss.backward();
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|v| {
            grads
                .get(*v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(v.shape()))
        })
        .collect();

    // Numeric gradients, one coordinate at a time.
    let eval = |perturbed: &[Tensor]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        f(&tape, &vars).value().item()
    };

    for (inp_idx, input) in inputs.iter().enumerate() {
        for elem in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[inp_idx].as_mut_slice()[elem] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[inp_idx].as_mut_slice()[elem] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let got = analytic[inp_idx].as_slice()[elem];
            let tol = atol + rtol * numeric.abs();
            assert!(
                (got - numeric).abs() <= tol,
                "gradient mismatch: input {inp_idx} element {elem}: \
                 analytic {got} vs numeric {numeric} (tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_correct_gradient() {
        check_gradients(&[Tensor::from_vec(vec![0.5, -1.0, 2.0], [3])], |_, v| {
            v[0].square().sum()
        });
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn catches_wrong_gradient() {
        // detach() deliberately breaks the gradient path: analytic grad is
        // zero while the numeric one is 2x.
        check_gradients(&[Tensor::from_vec(vec![1.0, 2.0], [2])], |_, v| {
            v[0].detach().square().sum()
        });
    }
}
