//! Property-based gradient checks: random composite graphs over random
//! inputs must match finite differences.

use proptest::prelude::*;
use sagdfn_autodiff::gradcheck::check_gradients;
use sagdfn_tensor::{Rng64, Tensor};

fn tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chains of unary ops keep correct gradients.
    #[test]
    fn unary_chains(seed in 0u64..10_000, which in 0usize..5) {
        let x = tensor(&[2, 3], seed);
        check_gradients(&[x], |_, v| {
            // Keep non-smooth ops (relu/abs) away from their kinks: inputs
            // are in [-1, 1], so shifting by 2 keeps them strictly one-sided
            // (finite differences are invalid within eps of a kink).
            let y = match which {
                0 => v[0].sigmoid().tanh(),
                1 => v[0].tanh().square(),
                2 => v[0].add_scalar(2.0).relu().sqrt(),
                3 => v[0].square().exp().scale(0.1),
                _ => v[0].add_scalar(-2.0).abs().scale(2.0),
            };
            y.sum()
        });
    }

    /// Binary broadcast combinations keep correct gradients.
    #[test]
    fn binary_broadcasts(seed in 0u64..10_000, rows in 1usize..4, cols in 1usize..4) {
        let a = tensor(&[rows, cols], seed);
        let b = tensor(&[cols], seed ^ 0xABCD);
        check_gradients(&[a, b], |_, v| {
            v[0].mul(&v[1]).add(&v[0]).square().sum()
        });
    }

    /// matmul chains with reshapes keep correct gradients.
    #[test]
    fn matmul_chains(seed in 0u64..10_000, m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 0x1111);
        check_gradients(&[a, b], |_, v| {
            v[0].matmul(&v[1]).tanh().sum()
        });
    }

    /// Structural ops (concat / slice / select) keep correct gradients.
    #[test]
    fn structural_ops(seed in 0u64..10_000, rows in 2usize..5) {
        let a = tensor(&[rows, 3], seed);
        check_gradients(&[a], |_, v| {
            let first = v[0].slice_axis(0, 0, 1);
            let picked = v[0].index_select(0, &[rows - 1, 0]);
            let cat = sagdfn_autodiff::Var::concat(&[first, picked], 0);
            cat.square().sum()
        });
    }

    /// entmax rows keep correct gradients across alphas (away from the
    /// non-smooth support boundaries, which random inputs avoid a.s.).
    #[test]
    fn entmax_rows_grad(seed in 0u64..2_000, alpha_i in 0usize..3) {
        let alpha = [1.0f32, 1.5, 1.25][alpha_i];
        let x = tensor(&[2, 4], seed);
        let w = tensor(&[2, 4], seed ^ 0x7777);
        check_gradients(&[x], move |tape, v| {
            let wv = tape.constant(w.clone());
            v[0].entmax_rows(alpha).mul_const(&wv.value()).sum()
        });
    }

    /// Gradient accumulation over fan-out is exact: f(x) used twice.
    #[test]
    fn fanout_accumulation(seed in 0u64..10_000) {
        let x = tensor(&[3], seed);
        check_gradients(&[x], |_, v| {
            let s = v[0].sigmoid();
            s.mul(&s).add(&s.scale(0.5)).sum()
        });
    }
}
