//! Tape-reuse determinism: a `reset()` tape must record and differentiate
//! the next batch exactly as a freshly constructed tape would — bit for
//! bit — because the trainer now keeps one tape alive for the whole run.

use sagdfn_autodiff::{Tape, Var};
use sagdfn_tensor::{Rng64, Tensor};

/// One synthetic "batch": weights stay fixed across batches, inputs vary.
struct Batch {
    x: Tensor,
    target: Tensor,
}

fn make_batch(seed: u64) -> Batch {
    let mut rng = Rng64::new(seed);
    Batch {
        x: Tensor::rand_uniform([4, 6], -1.0, 1.0, &mut rng),
        target: Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut rng),
    }
}

/// A small but representative graph: matmul, broadcast add over a bias,
/// tanh, elementwise mul, broadcast-unreduced gradients, mean loss.
fn loss<'t>(tape: &'t Tape, w: &Tensor, b: &Tensor, batch: &Batch) -> (Var<'t>, Var<'t>, Var<'t>) {
    let wv = tape.leaf(w.clone());
    let bv = tape.leaf(b.clone());
    let x = tape.constant(batch.x.clone());
    let t = tape.constant(batch.target.clone());
    let h = x.matmul(&wv).add(&bv).tanh();
    let l = h.sub(&t).square().mean();
    (l, wv, bv)
}

/// Gradient bits of (w, b) for one batch on the given tape.
fn grad_bits(tape: &Tape, w: &Tensor, b: &Tensor, batch: &Batch) -> (Vec<u32>, Vec<u32>) {
    let (l, wv, bv) = loss(tape, w, b, batch);
    let grads = l.backward();
    let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    let out = (bits(grads.expect(wv)), bits(grads.expect(bv)));
    tape.recycle_gradients(grads);
    out
}

#[test]
fn reset_tape_matches_fresh_tape_across_batches() {
    let mut rng = Rng64::new(77);
    let w = Tensor::rand_uniform([6, 3], -0.5, 0.5, &mut rng);
    let b = Tensor::rand_uniform([3], -0.5, 0.5, &mut rng);

    let reused = Tape::new();
    for batch_seed in [1u64, 2, 3] {
        let batch = make_batch(batch_seed);
        let fresh = Tape::new();
        let expected = grad_bits(&fresh, &w, &b, &batch);
        reused.reset();
        let got = grad_bits(&reused, &w, &b, &batch);
        assert_eq!(
            got, expected,
            "batch {batch_seed}: reused tape produced different gradient bits"
        );
    }
}

#[test]
fn reset_clears_nodes_but_retains_capacity() {
    let tape = Tape::new();
    let batch = make_batch(9);
    let mut rng = Rng64::new(8);
    let w = Tensor::rand_uniform([6, 3], -0.5, 0.5, &mut rng);
    let b = Tensor::rand_uniform([3], -0.5, 0.5, &mut rng);
    let _ = grad_bits(&tape, &w, &b, &batch);
    assert!(!tape.is_empty());
    tape.reset();
    assert_eq!(tape.len(), 0, "reset must clear all recorded nodes");
    // The next batch records into the retained arena and still succeeds.
    let _ = grad_bits(&tape, &w, &b, &batch);
    assert!(!tape.is_empty());
}
