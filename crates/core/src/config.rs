//! SAGDFN hyper-parameters.

use sagdfn_data::Scale;
use sagdfn_json::{Json, JsonError};

/// Temporal backbone of the forecaster. The paper's main model is the
/// GRU encoder-decoder (Eq. 10), but Section IV-C notes the fast graph
/// convolution composes with "RNNs, TCNs, and attention mechanisms"; the
/// TCN backbone realizes that claim with dilated causal convolutions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backbone {
    /// Encoder-decoder GRU of OneStepFastGConv cells (the paper's model).
    Gru,
    /// Dilated causal temporal convolution stack + slim graph diffusion +
    /// direct multi-horizon head (Graph-WaveNet-style plugging of Eq. 9).
    Tcn,
    /// Temporal self-attention over the history window (last-step query
    /// against all steps) + slim graph diffusion + direct head.
    SelfAttention,
}

/// Hyper-parameters of the SAGDFN model and its training loop.
///
/// Defaults follow the paper's Implementation section: `d = 100`,
/// `M = 100`, `K = 80`, 8 attention heads, GRU hidden size 64, diffusion
/// depth `J = 3`, one encoder-decoder layer, Adam.
#[derive(Clone, Debug)]
pub struct SagdfnConfig {
    /// Node embedding dimension `d`.
    pub embed_dim: usize,
    /// Significant-neighbor count `M` (≈ 5 % of N per the paper).
    pub m: usize,
    /// Top-K voted neighbors; `M − K` slots are exploration samples.
    pub top_k: usize,
    /// Attention heads `P`.
    pub heads: usize,
    /// Hidden width of each head's FFN.
    pub attn_hidden: usize,
    /// α of the entmax normalizer (1 = softmax … 2 = sparsemax).
    pub alpha: f32,
    /// GRU hidden size `D`.
    pub hidden: usize,
    /// Graph diffusion depth `J`.
    pub diffusion_steps: usize,
    /// Convergence iteration `r`: after this many training iterations the
    /// sampler stops injecting random exploration nodes.
    pub convergence_iter: usize,
    /// Re-run the neighbor sampler every this many iterations (1 =
    /// Algorithm 2 exactly; larger values trade fidelity for speed).
    pub sns_every: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient clip (global L2 norm).
    pub grad_clip: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Stop early after this many epochs without val improvement.
    pub patience: usize,
    /// RNG seed for init, shuffling and exploration sampling.
    pub seed: u64,
    /// Temporal backbone (GRU = the paper's model).
    pub backbone: Backbone,
    /// Encoder-decoder depth (stacked recurrent layers). The paper sets
    /// this to 1; DCRNN-style stacks use 2.
    pub layers: usize,
    /// Scheduled sampling (DCRNN-style curriculum): during training the
    /// decoder consumes the ground truth instead of its own prediction
    /// with probability `τ/(τ+exp(iter/τ))`, `τ = ss_decay`. The paper's
    /// Algorithm 2 always feeds back predictions (this off).
    pub scheduled_sampling: bool,
    /// Decay constant τ of the scheduled-sampling probability.
    pub ss_decay: f32,
    /// Dropout rate applied (train mode only) to the attention pair table
    /// and graph-convolution inputs. 0 disables dropout entirely and keeps
    /// the model bit-identical to a dropout-free build.
    pub dropout: f32,
    /// Node-shard count for the diffusion working set (DESIGN.md §14).
    /// `0` = auto: ask `sagdfn-memsim` to plan the smallest count whose
    /// modeled peak fits a V100-32GB; `1` disables sharding; `k > 1`
    /// forces `k` row shards. The `SAGDFN_SHARDS` environment variable
    /// (`auto` or a count) overrides this field at model construction.
    /// Sharding never changes results: shard boundaries are 4-aligned so
    /// every sharded kernel is bit-identical to its unsharded form.
    pub shards: usize,
}

impl Default for SagdfnConfig {
    fn default() -> Self {
        SagdfnConfig {
            embed_dim: 100,
            m: 100,
            top_k: 80,
            heads: 8,
            attn_hidden: 32,
            alpha: 2.0,
            hidden: 64,
            diffusion_steps: 3,
            convergence_iter: 400,
            sns_every: 1,
            lr: 1e-2,
            grad_clip: 5.0,
            epochs: 60,
            batch_size: 64,
            patience: 10,
            seed: 12,
            backbone: Backbone::Gru,
            layers: 1,
            scheduled_sampling: false,
            ss_decay: 2000.0,
            dropout: 0.0,
            shards: 0,
        }
    }
}

impl Backbone {
    /// JSON representation: the variant name as a string (the same wire
    /// format serde's external tagging used for this unit enum).
    pub fn to_json(&self) -> Json {
        Json::from(match self {
            Backbone::Gru => "Gru",
            Backbone::Tcn => "Tcn",
            Backbone::SelfAttention => "SelfAttention",
        })
    }

    /// Parses the variant-name string representation.
    pub fn from_json(doc: &Json) -> Result<Backbone, JsonError> {
        match doc.as_str()? {
            "Gru" => Ok(Backbone::Gru),
            "Tcn" => Ok(Backbone::Tcn),
            "SelfAttention" => Ok(Backbone::SelfAttention),
            other => Err(JsonError(format!("unknown backbone '{other}'"))),
        }
    }
}

impl SagdfnConfig {
    /// Serializes every hyper-parameter under its field name (the same
    /// wire format a serde derive produced for this struct).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("embed_dim", Json::from(self.embed_dim)),
            ("m", Json::from(self.m)),
            ("top_k", Json::from(self.top_k)),
            ("heads", Json::from(self.heads)),
            ("attn_hidden", Json::from(self.attn_hidden)),
            ("alpha", Json::from(self.alpha)),
            ("hidden", Json::from(self.hidden)),
            ("diffusion_steps", Json::from(self.diffusion_steps)),
            ("convergence_iter", Json::from(self.convergence_iter)),
            ("sns_every", Json::from(self.sns_every)),
            ("lr", Json::from(self.lr)),
            ("grad_clip", Json::from(self.grad_clip)),
            ("epochs", Json::from(self.epochs)),
            ("batch_size", Json::from(self.batch_size)),
            ("patience", Json::from(self.patience)),
            ("seed", Json::from(self.seed)),
            ("backbone", self.backbone.to_json()),
            ("layers", Json::from(self.layers)),
            ("scheduled_sampling", Json::from(self.scheduled_sampling)),
            ("ss_decay", Json::from(self.ss_decay)),
            ("dropout", Json::from(self.dropout)),
            ("shards", Json::from(self.shards)),
        ])
    }

    /// Deserializes a config; every field is required except `dropout`
    /// and `shards`, which default to 0 so sidecars written before the
    /// fields existed still load (absent dropout is zero dropout, and
    /// absent shards is auto planning — neither changes the model's
    /// numerical results).
    pub fn from_json(doc: &Json) -> Result<SagdfnConfig, JsonError> {
        Ok(SagdfnConfig {
            embed_dim: doc.req("embed_dim")?.as_usize()?,
            m: doc.req("m")?.as_usize()?,
            top_k: doc.req("top_k")?.as_usize()?,
            heads: doc.req("heads")?.as_usize()?,
            attn_hidden: doc.req("attn_hidden")?.as_usize()?,
            alpha: doc.req("alpha")?.as_f32()?,
            hidden: doc.req("hidden")?.as_usize()?,
            diffusion_steps: doc.req("diffusion_steps")?.as_usize()?,
            convergence_iter: doc.req("convergence_iter")?.as_usize()?,
            sns_every: doc.req("sns_every")?.as_usize()?,
            lr: doc.req("lr")?.as_f32()?,
            grad_clip: doc.req("grad_clip")?.as_f32()?,
            epochs: doc.req("epochs")?.as_usize()?,
            batch_size: doc.req("batch_size")?.as_usize()?,
            patience: doc.req("patience")?.as_usize()?,
            seed: doc.req("seed")?.as_u64()?,
            backbone: Backbone::from_json(doc.req("backbone")?)?,
            layers: doc.req("layers")?.as_usize()?,
            scheduled_sampling: doc.req("scheduled_sampling")?.as_bool()?,
            ss_decay: doc.req("ss_decay")?.as_f32()?,
            dropout: match doc.get("dropout") {
                Some(v) => v.as_f32()?,
                None => 0.0,
            },
            shards: match doc.get("shards") {
                Some(v) => v.as_usize()?,
                None => 0,
            },
        })
    }

    /// A configuration sized for a dataset with `n` nodes at the given run
    /// scale. `M` tracks the paper's ≈5 % of N guidance (floored so tiny
    /// runs keep a meaningful neighborhood), and tiny/small shrink widths
    /// and epochs so the full baseline roster trains on CPU.
    pub fn for_scale(scale: Scale, n: usize) -> Self {
        let base = SagdfnConfig::default();
        match scale {
            Scale::Tiny => SagdfnConfig {
                embed_dim: 16,
                m: (n / 4).clamp(4, 16),
                top_k: (n / 5).clamp(3, 12),
                heads: 2,
                attn_hidden: 8,
                hidden: 16,
                diffusion_steps: 2,
                convergence_iter: 60,
                sns_every: 4,
                epochs: 6,
                batch_size: 8,
                patience: 3,
                ..base
            },
            Scale::Small => SagdfnConfig {
                embed_dim: 32,
                m: (n / 10).clamp(8, 32),
                top_k: (n / 12).clamp(6, 26),
                heads: 4,
                attn_hidden: 16,
                hidden: 32,
                diffusion_steps: 2,
                convergence_iter: 200,
                sns_every: 4,
                epochs: 10,
                batch_size: 16,
                patience: 5,
                ..base
            },
            Scale::Paper => SagdfnConfig {
                m: (n / 20).clamp(20, 100),
                top_k: (n / 25).clamp(16, 80),
                ..base
            },
        }
    }

    /// Validates internal consistency (`K < M ≤ N`, α ≥ 1, …).
    pub fn validate(&self, n: usize) {
        assert!(self.m <= n, "M = {} cannot exceed N = {n}", self.m);
        assert!(
            self.top_k < self.m,
            "top_k = {} must be below M = {}",
            self.top_k,
            self.m
        );
        assert!(self.alpha >= 1.0, "alpha must be >= 1");
        assert!(self.heads >= 1 && self.diffusion_steps >= 1);
        assert!(self.embed_dim >= 1 && self.hidden >= 1);
        assert!(self.batch_size >= 1 && self.epochs >= 1);
        assert!(self.sns_every >= 1, "sns_every must be >= 1");
        assert!(self.layers >= 1, "at least one encoder-decoder layer");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0, 1), got {}",
            self.dropout
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SagdfnConfig::default();
        assert_eq!(c.embed_dim, 100);
        assert_eq!(c.m, 100);
        assert_eq!(c.top_k, 80);
        assert_eq!(c.heads, 8);
        assert_eq!(c.hidden, 64);
        assert_eq!(c.diffusion_steps, 3);
        assert_eq!(c.alpha, 2.0);
    }

    #[test]
    fn for_scale_keeps_k_below_m() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            for n in [20, 100, 207, 1918, 2000] {
                let c = SagdfnConfig::for_scale(scale, n);
                c.validate(n);
            }
        }
    }

    #[test]
    fn paper_scale_m_tracks_5_percent() {
        let c = SagdfnConfig::for_scale(Scale::Paper, 2000);
        assert_eq!(c.m, 100);
        assert_eq!(c.top_k, 80);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn validate_rejects_m_above_n() {
        SagdfnConfig::default().validate(50);
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut c = SagdfnConfig::for_scale(Scale::Small, 207);
        c.backbone = Backbone::SelfAttention;
        c.scheduled_sampling = true;
        c.lr = 3.5e-4;
        let text = c.to_json().to_string_pretty().unwrap();
        let back = SagdfnConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(format!("{c:?}"), format!("{back:?}"));
    }

    #[test]
    fn from_json_defaults_absent_shards_to_auto() {
        let mut c = SagdfnConfig::for_scale(Scale::Tiny, 20);
        c.shards = 3;
        let text = c.to_json().to_string_pretty().unwrap();
        let back = SagdfnConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.shards, 3);
        // A sidecar written before the field existed still loads as auto
        // (rename the key so the document simply lacks "shards").
        let stripped = text.replace("\"shards\"", "\"shards_legacy\"");
        let old = SagdfnConfig::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(old.shards, 0);
    }

    #[test]
    fn from_json_reports_missing_field() {
        let doc = Json::parse(r#"{"embed_dim": 4}"#).unwrap();
        let err = SagdfnConfig::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }
}
