//! OneStepFastGConv — the graph-convolutional GRU cell of Eq. 10.
//!
//! A standard GRU whose three gate transforms are replaced by the fast
//! graph convolution of Eq. 9, so each step diffuses information across
//! the slim adjacency while updating every node's hidden state:
//!
//! ```text
//! R_t = σ(W_r ⋆ [X_t ‖ H_{t−1}] + b_r)
//! Z_t = σ(W_z ⋆ [X_t ‖ H_{t−1}] + b_z)
//! H̃_t = tanh(W_h ⋆ [X_t ‖ R_t ⊙ H_{t−1}] + b_h)
//! H_t = Z_t ⊙ H_{t−1} + (1 − Z_t) ⊙ H̃_t
//! X̂_t = H_t W_x
//! ```

use crate::gconv::{Adjacency, GConv};
use sagdfn_autodiff::Var;
use sagdfn_nn::{Binding, Linear, Mode, Params};
use sagdfn_tensor::Rng64;

/// The recurrent cell: three gate graph-convolutions plus the output
/// projection `W_x`.
pub struct OneStepFastGConv {
    gconv_r: GConv,
    gconv_z: GConv,
    gconv_h: GConv,
    /// Prediction head `W_x`; absent for encoder-only cells (the encoder
    /// of Algorithm 2 only propagates hidden state).
    w_x: Option<Linear>,
    input_dim: usize,
    hidden: usize,
}

impl OneStepFastGConv {
    /// Registers the cell's parameters. `input_dim` is the per-node input
    /// channel count, `hidden` the GRU width `D`, `depth` the diffusion
    /// depth `J`, `out_dim` the prediction channels (`None` for an
    /// encoder cell that never emits predictions).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut Params,
        name: &str,
        input_dim: usize,
        hidden: usize,
        out_dim: Option<usize>,
        depth: usize,
        dropout: f32,
        rng: &mut Rng64,
    ) -> Self {
        let cat = input_dim + hidden;
        OneStepFastGConv {
            gconv_r: GConv::new(params, &format!("{name}.r"), cat, hidden, depth, dropout, rng),
            gconv_z: GConv::new(params, &format!("{name}.z"), cat, hidden, depth, dropout, rng),
            gconv_h: GConv::new(params, &format!("{name}.h"), cat, hidden, depth, dropout, rng),
            w_x: out_dim
                .map(|o| Linear::new(params, &format!("{name}.wx"), hidden, o, true, rng)),
            input_dim,
            hidden,
        }
    }

    /// One recurrence step without a prediction: `(B,N,in), (B,N,D) → H_t`.
    pub fn step_hidden<'t>(
        &self,
        bind: &Binding<'t>,
        adj: &Adjacency<'t>,
        x: Var<'t>,
        h: Var<'t>,
        mode: Mode,
    ) -> Var<'t> {
        assert_eq!(
            *x.dims().last().unwrap(),
            self.input_dim,
            "cell input dim mismatch"
        );
        assert_eq!(*h.dims().last().unwrap(), self.hidden, "hidden dim mismatch");
        let xh = Var::concat(&[x, h], 2);
        let r = self.gconv_r.forward(bind, adj, xh, mode).sigmoid();
        let z = self.gconv_z.forward(bind, adj, xh, mode).sigmoid();
        let xrh = Var::concat(&[x, r.mul(&h)], 2);
        let h_tilde = self.gconv_h.forward(bind, adj, xrh, mode).tanh();
        z.mul(&h).add(&z.neg().add_scalar(1.0).mul(&h_tilde))
    }

    /// One step with a prediction. `x: (B, N, input_dim)`,
    /// `h: (B, N, hidden)` → `(H_t, X̂_t)` with `X̂_t: (B, N, out_dim)`.
    ///
    /// # Panics
    /// Panics if the cell was built without an output head.
    pub fn step<'t>(
        &self,
        bind: &Binding<'t>,
        adj: &Adjacency<'t>,
        x: Var<'t>,
        h: Var<'t>,
        mode: Mode,
    ) -> (Var<'t>, Var<'t>) {
        let h_new = self.step_hidden(bind, adj, x, h, mode);
        let head = self
            .w_x
            .as_ref()
            .expect("step() on a cell built without an output head");
        let x_hat = head.forward(bind, h_new);
        (h_new, x_hat)
    }

    /// Hidden width `D`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input channel count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The reset-gate graph convolution (plan-executor compile input).
    pub(crate) fn gconv_r(&self) -> &GConv {
        &self.gconv_r
    }

    /// The update-gate graph convolution.
    pub(crate) fn gconv_z(&self) -> &GConv {
        &self.gconv_z
    }

    /// The candidate graph convolution.
    pub(crate) fn gconv_h(&self) -> &GConv {
        &self.gconv_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_autodiff::Tape;
    use sagdfn_tensor::Tensor;

    fn build(_n: usize) -> (Params, OneStepFastGConv, Rng64) {
        let mut params = Params::new();
        let mut rng = Rng64::new(7);
        let cell = OneStepFastGConv::new(&mut params, "cell", 3, 8, Some(1), 2, 0.0, &mut rng);
        (params, cell, rng)
    }

    #[test]
    fn step_shapes() {
        let n = 5;
        let (mut params, cell, mut rng) = build(n);
        let a_id = params.add("A", Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(bind.var(a_id), vec![0, 3]);
        let x = tape.constant(Tensor::rand_uniform([4, n, 3], -1.0, 1.0, &mut rng));
        let h = tape.constant(Tensor::zeros([4, n, 8]));
        let (h1, xh) = cell.step(&bind, &adj, x, h, Mode::Train);
        assert_eq!(h1.dims(), vec![4, n, 8]);
        assert_eq!(xh.dims(), vec![4, n, 1]);
    }

    #[test]
    fn hidden_state_bounded_after_many_steps() {
        let n = 4;
        let (mut params, cell, mut rng) = build(n);
        let a_id = params.add("A", Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(bind.var(a_id), vec![1, 2]);
        let x = tape.constant(Tensor::full([1, n, 3], 5.0));
        let mut h = tape.constant(Tensor::zeros([1, n, 8]));
        for _ in 0..20 {
            h = cell.step(&bind, &adj, x, h, Mode::Eval).0;
        }
        assert!(h.value().as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradients_flow_through_unrolled_graph_recurrence() {
        let n = 4;
        let (mut params, cell, mut rng) = build(n);
        let a_id = params.add("A", Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(bind.var(a_id), vec![0, 2]);
        let x = tape.constant(Tensor::rand_uniform([2, n, 3], -1.0, 1.0, &mut rng));
        let mut h = tape.constant(Tensor::zeros([2, n, 8]));
        let mut preds = Vec::new();
        for _ in 0..4 {
            let (h2, p) = cell.step(&bind, &adj, x, h, Mode::Train);
            h = h2;
            preds.push(p);
        }
        let loss = Var::concat(&preds, 2).abs().sum();
        let grads = loss.backward();
        assert!(bind.grad(&grads, a_id).is_some(), "A_s grad missing");
        for id in params.ids() {
            assert!(bind.grad(&grads, id).is_some(), "{}", params.name(id));
        }
    }

    #[test]
    fn neighbor_information_reaches_prediction() {
        // Changing the value at a neighbor node must change node 0's
        // prediction when node 0's only edge points at it.
        let n = 3;
        let (mut params, cell, mut rng) = build(n);
        // A_s: node 0 attends to index entry 0 (node 2) with weight 1.
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], [3, 2]);
        let a_id = params.add("A", w);
        let run = |x2: f32, params: &Params| -> f32 {
            let tape = Tape::new();
            let bind = params.bind(&tape);
            let adj = Adjacency::slim(bind.var(a_id), vec![2, 1]);
            let mut xv = Tensor::zeros([1, n, 3]);
            xv.set(&[0, 2, 0], x2);
            let x = tape.constant(xv);
            let h = tape.constant(Tensor::zeros([1, n, 8]));
            let (_, p) = cell.step(&bind, &adj, x, h, Mode::Eval);
            p.value().at(&[0, 0, 0])
        };
        let _ = &mut rng;
        let p_low = run(0.0, &params);
        let p_high = run(10.0, &params);
        assert!(
            (p_low - p_high).abs() > 1e-4,
            "no message passing: {p_low} vs {p_high}"
        );
    }
}
