//! The model variants of the paper's ablation study (Table VIII).

/// Which parts of SAGDFN are active — the five rows of Table VIII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The full model.
    Full,
    /// *w/o Entmax*: α-entmax replaced by softmax (α = 1) in the
    /// attention module.
    WithoutEntmax,
    /// *w/o Pair-Wise Attention*: `A_s` from the inner product
    /// `E · E_I^T` instead of the multi-head FFN attention.
    WithoutAttention,
    /// *w/o SNS*: the significant index set `I` is a fixed uniform random
    /// sample instead of the learned vote.
    WithoutSns,
    /// *w/o SNS & SSMA*: a fixed dense adjacency built from the latent
    /// topology (top-k nearest neighbors kept per row), no learned graph.
    WithoutSnsSsma,
}

impl Variant {
    /// All variants in Table VIII row order.
    pub const ALL: [Variant; 5] = [
        Variant::Full,
        Variant::WithoutEntmax,
        Variant::WithoutAttention,
        Variant::WithoutSns,
        Variant::WithoutSnsSsma,
    ];

    /// Row label as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Full => "SAGDFN",
            Variant::WithoutEntmax => "w/o Entmax",
            Variant::WithoutAttention => "w/o Attention",
            Variant::WithoutSns => "w/o SNS",
            Variant::WithoutSnsSsma => "w/o SNS & SSMA",
        }
    }

    /// Does this variant run the neighbor-sampling vote?
    pub fn uses_sns(&self) -> bool {
        matches!(
            self,
            Variant::Full | Variant::WithoutEntmax | Variant::WithoutAttention
        )
    }

    /// Does this variant learn an adjacency at all?
    pub fn uses_learned_graph(&self) -> bool {
        !matches!(self, Variant::WithoutSnsSsma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_like_table8() {
        assert_eq!(Variant::ALL.len(), 5);
        assert_eq!(Variant::ALL[0].name(), "SAGDFN");
        assert_eq!(Variant::ALL[4].name(), "w/o SNS & SSMA");
    }

    #[test]
    fn capability_flags() {
        assert!(Variant::Full.uses_sns());
        assert!(!Variant::WithoutSns.uses_sns());
        assert!(!Variant::WithoutSnsSsma.uses_sns());
        assert!(Variant::WithoutSns.uses_learned_graph());
        assert!(!Variant::WithoutSnsSsma.uses_learned_graph());
    }
}
