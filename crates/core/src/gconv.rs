//! Fast graph convolution — Eq. 9 of the paper.
//!
//! ```text
//! W ⋆_{A_s} X = Σ_{j=0}^{J−1} W_j · [ (D + I)^{-1} (A_s X_I + X) ]^j
//! ```
//!
//! where the bracket denotes applying the normalized diffusion operator
//! `j` times. With a slim `A_s ∈ R^{N×M}` the gather `X_I` plus the
//! `N×M · M×c` product cost `O(NMc)` — the paper's headline reduction from
//! the dense `O(N²c)`.
//!
//! [`Adjacency`] abstracts over the slim matrix (SAGDFN) and a dense
//! `N×N` matrix (predefined-topology baselines and the *w/o SNS & SSMA*
//! ablation), so the same GRU cell serves both.

use sagdfn_autodiff::Var;
use sagdfn_nn::{Binding, Linear, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// Floor applied to the `(deg + 1)` normalizer: learned weights can be
/// negative, and the inverse must stay bounded for stable training.
const DEGREE_FLOOR: f32 = 0.1;

/// An adjacency usable by the graph convolution, recorded on a tape.
pub enum Adjacency<'t> {
    /// The paper's slim `N×M` matrix plus the significant index set `I`.
    Slim {
        /// `A_s`, `(N, M)`, typically produced by the attention module.
        weights: Var<'t>,
        /// The `M` significant node indices.
        index: Vec<usize>,
    },
    /// A dense `N×N` matrix (predefined topology or quadratic baselines).
    Dense(Var<'t>),
}

impl<'t> Adjacency<'t> {
    /// One normalized diffusion step `(D+I)^{-1}(A·X(_I) + X)` on
    /// `x: (B, N, c)`.
    pub fn diffuse(&self, x: Var<'t>) -> Var<'t> {
        let dims = x.dims();
        assert_eq!(dims.len(), 3, "diffuse expects (B, N, c)");
        let n = dims[1];
        match self {
            Adjacency::Slim { weights, index } => {
                assert_eq!(weights.dims()[0], n, "slim adjacency node mismatch");
                // A_s X_I: gather neighbors then contract over M via the
                // transposed product (B,c,M)·(M,N) -> (B,c,N).
                let x_i = x.index_select(1, index); // (B, M, c)
                let ax = x_i
                    .transpose_last2() // (B, c, M)
                    .matmul(&weights.transpose_last2()) // (B, c, N)
                    .transpose_last2(); // (B, N, c)
                let mixed = ax.add(&x);
                let inv = degree_inverse(*weights, n);
                mixed.mul(&inv)
            }
            Adjacency::Dense(a) => {
                assert_eq!(a.dims()[0], n, "dense adjacency node mismatch");
                let ax = x
                    .transpose_last2() // (B, c, N)
                    .matmul(&a.transpose_last2()) // (B, c, N)
                    .transpose_last2(); // (B, N, c)
                let mixed = ax.add(&x);
                let inv = degree_inverse(*a, n);
                mixed.mul(&inv)
            }
        }
    }

    /// Number of nodes `N`.
    pub fn n(&self) -> usize {
        match self {
            Adjacency::Slim { weights, .. } => weights.dims()[0],
            Adjacency::Dense(a) => a.dims()[0],
        }
    }
}

/// `(D + I)^{-1}` as a broadcastable `(1, N, 1)` var.
fn degree_inverse<'t>(weights: Var<'t>, n: usize) -> Var<'t> {
    let deg = weights.sum_axis(1); // (N)
    let denom = deg.add_scalar(1.0).clamp_min(DEGREE_FLOOR);
    let ones = weights.tape().constant(Tensor::ones([n]));
    ones.div(&denom).reshape([1, n, 1])
}

/// The learnable part of Eq. 9: one `Linear` per diffusion depth `j`.
pub struct GConv {
    steps: Vec<Linear>,
}

impl GConv {
    /// Registers `J` linear maps `c_in → c_out` (bias only on `j = 0`).
    pub fn new(
        params: &mut Params,
        name: &str,
        c_in: usize,
        c_out: usize,
        depth: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(depth >= 1, "diffusion depth must be >= 1");
        let steps = (0..depth)
            .map(|j| Linear::new(params, &format!("{name}.w{j}"), c_in, c_out, j == 0, rng))
            .collect();
        GConv { steps }
    }

    /// `W ⋆ X`: accumulates `W_j · diffuse^j(X)` over the depth.
    pub fn forward<'t>(&self, bind: &Binding<'t>, adj: &Adjacency<'t>, x: Var<'t>) -> Var<'t> {
        let mut h = x;
        let mut acc = self.steps[0].forward(bind, h);
        for w in &self.steps[1..] {
            h = adj.diffuse(h);
            acc = acc.add(&w.forward(bind, h));
        }
        acc
    }

    /// Diffusion depth `J`.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_autodiff::Tape;
    use sagdfn_graph::SlimAdj;

    #[test]
    fn slim_diffuse_matches_graph_crate_reference() {
        // Autodiff diffusion must agree with the plain-tensor SlimAdj
        // implementation for non-negative weights (no floor effect).
        let n = 6;
        let index = vec![1, 4];
        let mut rng = Rng64::new(0);
        let w = Tensor::rand_uniform([n, 2], 0.1, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([n, 3], -1.0, 1.0, &mut rng);

        let reference = SlimAdj::new(w.clone(), index.clone()).diffuse_step(&x0);

        let tape = Tape::new();
        let adj = Adjacency::Slim {
            weights: tape.constant(w),
            index: index.clone(),
        };
        let x = tape.constant(x0.reshape([1, n, 3]));
        let out = adj.diffuse(x).value().reshape([n, 3]);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_and_slim_agree_when_slim_covers_all_nodes() {
        let n = 5;
        let mut rng = Rng64::new(1);
        let w = Tensor::rand_uniform([n, n], 0.0, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([2, n, 2], -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(x0);
        let dense = Adjacency::Dense(tape.constant(w.clone()));
        let slim = Adjacency::Slim {
            weights: tape.constant(w),
            index: (0..n).collect(),
        };
        let a = dense.diffuse(x).value();
        let b = slim.diffuse(x).value();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn diffusion_preserves_constant_signal() {
        // (D+I)^{-1}((A+I)·c·1) = c for non-negative A.
        let n = 7;
        let mut rng = Rng64::new(2);
        let w = Tensor::rand_uniform([n, 3], 0.0, 1.0, &mut rng);
        let tape = Tape::new();
        let adj = Adjacency::Slim {
            weights: tape.constant(w),
            index: vec![0, 2, 5],
        };
        let x = tape.constant(Tensor::full([1, n, 1], 4.2));
        let y = adj.diffuse(x).value();
        for &v in y.as_slice() {
            assert!((v - 4.2).abs() < 1e-4);
        }
    }

    #[test]
    fn gconv_shapes_and_grads() {
        let n = 6;
        let mut rng = Rng64::new(3);
        let mut params = Params::new();
        let conv = GConv::new(&mut params, "gc", 4, 8, 3, &mut rng);
        let a_id = params.add("A", Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::Slim {
            weights: bind.var(a_id),
            index: vec![1, 3],
        };
        let x = tape.constant(Tensor::rand_uniform([2, n, 4], -1.0, 1.0, &mut rng));
        let y = conv.forward(&bind, &adj, x);
        assert_eq!(y.dims(), vec![2, n, 8]);
        let grads = y.square().sum().backward();
        assert!(
            bind.grad(&grads, a_id).is_some(),
            "adjacency must receive gradients (end-to-end learning)"
        );
        for id in params.ids() {
            assert!(bind.grad(&grads, id).is_some(), "{}", params.name(id));
        }
    }

    #[test]
    fn depth_one_is_plain_linear() {
        // J = 1 never touches the adjacency: output = W_0 x + b.
        let n = 4;
        let mut rng = Rng64::new(4);
        let mut params = Params::new();
        let conv = GConv::new(&mut params, "gc", 2, 2, 1, &mut rng);
        let a_id = params.add("A", Tensor::rand_uniform([n, 1], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::Slim {
            weights: bind.var(a_id),
            index: vec![0],
        };
        let x = tape.constant(Tensor::rand_uniform([1, n, 2], -1.0, 1.0, &mut rng));
        let y = conv.forward(&bind, &adj, x);
        let grads = y.sum().backward();
        assert!(
            bind.grad(&grads, a_id).is_none(),
            "J = 1 must not involve the adjacency"
        );
    }

    #[test]
    fn degree_floor_keeps_inverse_finite_for_negative_weights() {
        let n = 3;
        let tape = Tape::new();
        // Strongly negative weights drive deg + 1 below zero; the clamp
        // must keep the normalizer finite and positive.
        let adj = Adjacency::Slim {
            weights: tape.constant(Tensor::full([n, 2], -5.0)),
            index: vec![0, 1],
        };
        let x = tape.constant(Tensor::ones([1, n, 1]));
        let y = adj.diffuse(x).value();
        assert!(y.all_finite(), "{y:?}");
    }
}
