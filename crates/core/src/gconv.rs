//! Fast graph convolution — Eq. 9 of the paper.
//!
//! ```text
//! W ⋆_{A_s} X = Σ_{j=0}^{J−1} W_j · [ (D + I)^{-1} (A_s X_I + X) ]^j
//! ```
//!
//! where the bracket denotes applying the normalized diffusion operator
//! `j` times. With a slim `A_s ∈ R^{N×M}` the gather `X_I` plus the
//! `N×M · M×c` product cost `O(NMc)` — the paper's headline reduction from
//! the dense `O(N²c)`.
//!
//! [`Adjacency`] abstracts over the slim matrix (SAGDFN) and a dense
//! `N×N` matrix (predefined-topology baselines and the *w/o SNS & SSMA*
//! ablation), so the same GRU cell serves both.

use sagdfn_autodiff::{Tape, Var};
use sagdfn_nn::{Binding, Dropout, Linear, Mode, Params};
use sagdfn_tensor::sparse::{DiffusePlan, ShardedCsr};
use sagdfn_tensor::{Rng64, SpmmDispatch, Tensor};
use std::cell::{Cell, OnceCell};
use std::rc::Rc;

/// Floor applied to the `(deg + 1)` normalizer: learned weights can be
/// negative, and the inverse must stay bounded for stable training.
const DEGREE_FLOOR: f32 = 0.1;

/// An adjacency usable by the graph convolution, recorded on a tape.
///
/// Built fresh per forward pass via [`Adjacency::slim`] (the paper's
/// `N×M` matrix plus the significant index set `I`) or
/// [`Adjacency::dense`] (an `N×N` matrix for predefined-topology
/// baselines and the *w/o SNS & SSMA* ablation). Two per-pass artifacts
/// are computed once and shared by every diffusion step of the chain:
///
/// * the `(D+I)^{-1}` normalizer (previously rebuilt per step), and
/// * a [`DiffusePlan`] for the weights, chosen by measured density
///   (`sparse::spmm_dispatch`, overridable via `SAGDFN_SPARSE`): dense
///   GEMMs throughout, full CSR, or the hybrid that keeps products on
///   the GEMMs and only the adjacency gradient on the
///   support-restricted CSR. With entmax-produced adjacencies the exact
///   zeros make the restriction lossless (DESIGN.md §9).
pub struct Adjacency<'t> {
    /// `A_s`, `(N, M)` (slim) or `(N, N)` (dense).
    weights: Var<'t>,
    /// The `M` significant node indices; `None` for a dense adjacency.
    index: Option<Vec<usize>>,
    /// Cached `(D+I)^{-1}` var, `(1, N, 1)`.
    deg_inv: Cell<Option<Var<'t>>>,
    /// Row-shard count for the CSR plan (DESIGN.md §14); 1 = unsharded.
    shards: usize,
    /// Lazily-built execution plan (dense / hybrid / sparse).
    plan: OnceCell<DiffusePlan>,
}

impl<'t> Adjacency<'t> {
    /// Slim adjacency `A_s ∈ R^{N×M}` over the significant set `index`.
    pub fn slim(weights: Var<'t>, index: Vec<usize>) -> Self {
        assert_eq!(
            weights.dims()[1],
            index.len(),
            "slim adjacency columns must match the significant index set"
        );
        Adjacency {
            weights,
            index: Some(index),
            deg_inv: Cell::new(None),
            shards: 1,
            plan: OnceCell::new(),
        }
    }

    /// Sets the row-shard count used when a CSR plan is built (node
    /// sharding, DESIGN.md §14). Every shard count produces bit-identical
    /// diffusion results; `k` only bounds the per-shard working set.
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Dense `N×N` adjacency (predefined topology or quadratic baselines).
    pub fn dense(weights: Var<'t>) -> Self {
        assert_eq!(
            weights.dims()[0],
            weights.dims()[1],
            "dense adjacency must be square"
        );
        Adjacency {
            weights,
            index: None,
            deg_inv: Cell::new(None),
            shards: 1,
            plan: OnceCell::new(),
        }
    }

    /// The adjacency weights var (`(N, M)` slim, `(N, N)` dense).
    pub fn weights(&self) -> Var<'t> {
        self.weights
    }

    /// The significant index set `I`, or `None` for a dense adjacency.
    pub fn index(&self) -> Option<&[usize]> {
        self.index.as_deref()
    }

    /// Whether this is the paper's slim `N×M` form.
    pub fn is_slim(&self) -> bool {
        self.index.is_some()
    }

    /// One normalized diffusion step `(D+I)^{-1}(A·X(_I) + X)` on
    /// `x: (B, N, c)`.
    pub fn diffuse(&self, x: Var<'t>) -> Var<'t> {
        let dims = x.dims();
        assert_eq!(dims.len(), 3, "diffuse expects (B, N, c)");
        assert_eq!(self.weights.dims()[0], dims[1], "adjacency node mismatch");
        // A·X_I (slim) or A·X (dense): one sparse-or-dense product,
        // no transposed intermediates.
        let gathered = match &self.index {
            Some(index) => x.index_select(1, index), // (B, M, c)
            None => x,
        };
        let ax = self.weights.spmm_diffuse(&gathered, self.plan_for(dims[0])); // (B, N, c)
        ax.add(&x).mul(&self.degree_inverse())
    }

    /// Number of nodes `N`.
    pub fn n(&self) -> usize {
        self.weights.dims()[0]
    }

    /// The execution plan for this pass: built on first use from the
    /// measured number of exact zeros in the weights and the product
    /// batch size ([`sagdfn_tensor::spmm_dispatch`]); the CSR is only
    /// constructed when the chosen pipeline uses it.
    fn plan_for(&self, batch: usize) -> DiffusePlan {
        self.plan
            .get_or_init(|| {
                self.weights.with_value(|w| {
                    let (n, m) = (w.dim(0), w.dim(1));
                    let nnz: usize = sagdfn_entmax::support_counts(w.as_slice(), m)
                        .iter()
                        .map(|&c| c as usize)
                        .sum();
                    let dispatch = sagdfn_tensor::spmm_dispatch(n, m, batch, nnz);
                    DiffusePlan::build(dispatch, || ShardedCsr::from_dense(w, self.shards))
                })
            })
            .clone()
    }

    /// `(D + I)^{-1}` as a broadcastable `(1, N, 1)` var — computed once
    /// per adjacency and shared by every step of the diffusion chain.
    fn degree_inverse(&self) -> Var<'t> {
        if let Some(cached) = self.deg_inv.get() {
            return cached;
        }
        let n = self.n();
        let deg = self.weights.sum_axis(1); // (N)
        let denom = deg.add_scalar(1.0).clamp_min(DEGREE_FLOOR);
        let ones = self.weights.tape().constant(Tensor::ones([n]));
        let inv = ones.div(&denom).reshape([1, n, 1]);
        self.deg_inv.set(Some(inv));
        inv
    }

    /// Snapshots this adjacency's per-pass artifacts — the weight values,
    /// the `(D+I)^{-1}` normalizer and the CSR plan — into a tape-free
    /// [`FrozenPlan`]. Both artifacts are forced through the exact same
    /// ops `diffuse` would run, so a reconstructed adjacency is
    /// bit-identical to a freshly built one. `batch_hint` is the batch
    /// size the sparse-vs-dense dispatch is costed against (eval batches
    /// all share one frozen plan).
    pub fn freeze(&self, batch_hint: usize) -> FrozenPlan {
        FrozenPlan {
            plan: self.plan_for(batch_hint),
            deg_inv: self.degree_inverse().value(),
            weights: self.weights.value(),
            index: self.index.clone(),
        }
    }

    /// Rebuilds an adjacency on `tape` from a frozen plan: the weights and
    /// normalizer are re-injected as constants and the execution plan is
    /// pre-set, so no per-batch degree/density work happens at all.
    pub fn from_plan(tape: &'t Tape, plan: &FrozenPlan) -> Self {
        let adj = Adjacency {
            weights: tape.constant(plan.weights.clone()),
            index: plan.index.clone(),
            deg_inv: Cell::new(Some(tape.constant(plan.deg_inv.clone()))),
            shards: plan.plan.shard_count(),
            plan: OnceCell::new(),
        };
        let _ = adj.plan.set(plan.plan.clone());
        adj
    }
}

/// Tape-free snapshot of an [`Adjacency`]'s per-pass artifacts, cached on
/// the model for eval mode: the slim weights, the `(D+I)^{-1}` normalizer
/// and the CSR execution plan are computed once from `E` and reused across
/// every batch of a `predict`/`evaluate` sweep. Invalidated whenever the
/// parameters can have changed (optimizer step, checkpoint load, neighbor
/// resampling).
pub struct FrozenPlan {
    weights: Tensor,
    deg_inv: Tensor,
    index: Option<Vec<usize>>,
    plan: DiffusePlan,
}

impl FrozenPlan {
    /// The frozen significant index set, `None` for a dense adjacency.
    pub fn index(&self) -> Option<&[usize]> {
        self.index.as_deref()
    }

    /// The frozen dispatch decision (dense / hybrid / sparse).
    pub fn dispatch(&self) -> SpmmDispatch {
        self.plan.dispatch()
    }

    /// Whether the frozen plan runs the forward product on the CSR
    /// kernels. The hybrid pipeline answers `false`: its CSR exists
    /// only for the training-time adjacency gradient, and eval (which
    /// never takes gradients) sticks to the dense GEMM.
    pub fn products_sparse(&self) -> bool {
        self.plan.products_sparse()
    }

    /// The frozen adjacency weight values (plan-executor compile input).
    pub(crate) fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The frozen `(D+I)^{-1}` normalizer, shape `(1, N, 1)`.
    pub(crate) fn deg_inv(&self) -> &Tensor {
        &self.deg_inv
    }

    /// The frozen CSR, `None` when the all-dense pipeline won.
    pub(crate) fn csr(&self) -> Option<&Rc<ShardedCsr>> {
        self.plan.csr()
    }

    /// Shard count of the frozen CSR plan (1 when dense dispatch won).
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }
}

/// The learnable part of Eq. 9: one `Linear` per diffusion depth `j`,
/// with inverted dropout on the input (train mode only).
pub struct GConv {
    steps: Vec<Linear>,
    dropout: Dropout,
}

impl GConv {
    /// Registers `J` linear maps `c_in → c_out` (bias only on `j = 0`)
    /// and a dropout layer applied to the convolution input at train time.
    pub fn new(
        params: &mut Params,
        name: &str,
        c_in: usize,
        c_out: usize,
        depth: usize,
        dropout: f32,
        rng: &mut Rng64,
    ) -> Self {
        assert!(depth >= 1, "diffusion depth must be >= 1");
        let steps = (0..depth)
            .map(|j| Linear::new(params, &format!("{name}.w{j}"), c_in, c_out, j == 0, rng))
            .collect();
        GConv {
            steps,
            dropout: Dropout::new(&format!("{name}.drop"), dropout),
        }
    }

    /// `W ⋆ X`: accumulates `W_j · diffuse^j(X)` over the depth.
    pub fn forward<'t>(
        &self,
        bind: &Binding<'t>,
        adj: &Adjacency<'t>,
        x: Var<'t>,
        mode: Mode,
    ) -> Var<'t> {
        let mut h = self.dropout.forward(x, mode);
        let mut acc = self.steps[0].forward(bind, h);
        for w in &self.steps[1..] {
            h = adj.diffuse(h);
            acc = acc.add(&w.forward(bind, h));
        }
        acc
    }

    /// Diffusion depth `J`.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// The per-depth linear maps (plan-executor compile input).
    pub(crate) fn steps(&self) -> &[Linear] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_autodiff::Tape;
    use sagdfn_graph::SlimAdj;

    #[test]
    fn slim_diffuse_matches_graph_crate_reference() {
        // Autodiff diffusion must agree with the plain-tensor SlimAdj
        // implementation for non-negative weights (no floor effect).
        let n = 6;
        let index = vec![1, 4];
        let mut rng = Rng64::new(0);
        let w = Tensor::rand_uniform([n, 2], 0.1, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([n, 3], -1.0, 1.0, &mut rng);

        let reference = SlimAdj::new(w.clone(), index.clone()).diffuse_step(&x0);

        let tape = Tape::new();
        let adj = Adjacency::slim(tape.constant(w), index.clone());
        let x = tape.constant(x0.reshape([1, n, 3]));
        let out = adj.diffuse(x).value().reshape([n, 3]);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_and_slim_agree_when_slim_covers_all_nodes() {
        let n = 5;
        let mut rng = Rng64::new(1);
        let w = Tensor::rand_uniform([n, n], 0.0, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([2, n, 2], -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(x0);
        let dense = Adjacency::dense(tape.constant(w.clone()));
        let slim = Adjacency::slim(tape.constant(w), (0..n).collect());
        let a = dense.diffuse(x).value();
        let b = slim.diffuse(x).value();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn diffusion_preserves_constant_signal() {
        // (D+I)^{-1}((A+I)·c·1) = c for non-negative A.
        let n = 7;
        let mut rng = Rng64::new(2);
        let w = Tensor::rand_uniform([n, 3], 0.0, 1.0, &mut rng);
        let tape = Tape::new();
        let adj = Adjacency::slim(tape.constant(w), vec![0, 2, 5]);
        let x = tape.constant(Tensor::full([1, n, 1], 4.2));
        let y = adj.diffuse(x).value();
        for &v in y.as_slice() {
            assert!((v - 4.2).abs() < 1e-4);
        }
    }

    #[test]
    fn gconv_shapes_and_grads() {
        let n = 6;
        let mut rng = Rng64::new(3);
        let mut params = Params::new();
        let conv = GConv::new(&mut params, "gc", 4, 8, 3, 0.0, &mut rng);
        let a_id = params.add("A", Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(bind.var(a_id), vec![1, 3]);
        let x = tape.constant(Tensor::rand_uniform([2, n, 4], -1.0, 1.0, &mut rng));
        let y = conv.forward(&bind, &adj, x, Mode::Train);
        assert_eq!(y.dims(), vec![2, n, 8]);
        let grads = y.square().sum().backward();
        assert!(
            bind.grad(&grads, a_id).is_some(),
            "adjacency must receive gradients (end-to-end learning)"
        );
        for id in params.ids() {
            assert!(bind.grad(&grads, id).is_some(), "{}", params.name(id));
        }
    }

    #[test]
    fn depth_one_is_plain_linear() {
        // J = 1 never touches the adjacency: output = W_0 x + b.
        let n = 4;
        let mut rng = Rng64::new(4);
        let mut params = Params::new();
        let conv = GConv::new(&mut params, "gc", 2, 2, 1, 0.0, &mut rng);
        let a_id = params.add("A", Tensor::rand_uniform([n, 1], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(bind.var(a_id), vec![0]);
        let x = tape.constant(Tensor::rand_uniform([1, n, 2], -1.0, 1.0, &mut rng));
        let y = conv.forward(&bind, &adj, x, Mode::Eval);
        let grads = y.sum().backward();
        assert!(
            bind.grad(&grads, a_id).is_none(),
            "J = 1 must not involve the adjacency"
        );
    }

    #[test]
    fn frozen_plan_reconstructs_bitwise() {
        // freeze() on one tape, from_plan() on another: diffusion output
        // must be bit-identical and the normalizer/plan must be pre-set.
        let n = 8;
        let index = vec![0, 3, 6];
        let mut rng = Rng64::new(9);
        let w = Tensor::rand_uniform([n, 3], -0.5, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([2, n, 4], -1.0, 1.0, &mut rng);

        let t1 = Tape::new();
        let fresh = Adjacency::slim(t1.constant(w.clone()), index.clone());
        let want = fresh.diffuse(t1.constant(x0.clone())).value();
        let plan = fresh.freeze(2);
        assert_eq!(plan.index(), Some(index.as_slice()));

        let t2 = Tape::new();
        let rebuilt = Adjacency::from_plan(&t2, &plan);
        let got = rebuilt.diffuse(t2.constant(x0)).value();
        let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want_bits, got_bits, "frozen diffusion must be bit-exact");
    }

    #[test]
    fn train_dropout_perturbs_gconv_and_eval_does_not() {
        let n = 5;
        let mut rng = Rng64::new(11);
        let mut params = Params::new();
        let conv = GConv::new(&mut params, "gc", 3, 3, 2, 0.5, &mut rng);
        let a = Tensor::rand_uniform([n, 2], 0.0, 1.0, &mut rng);
        let x0 = Tensor::rand_uniform([1, n, 3], -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let adj = Adjacency::slim(tape.constant(a), vec![1, 4]);
        let x = tape.constant(x0);
        let e1 = conv.forward(&bind, &adj, x, Mode::Eval).value();
        let e2 = conv.forward(&bind, &adj, x, Mode::Eval).value();
        assert_eq!(e1, e2, "eval forwards must be deterministic");
        let t1 = conv.forward(&bind, &adj, x, Mode::Train).value();
        let t2 = conv.forward(&bind, &adj, x, Mode::Train).value();
        assert_ne!(t1, t2, "train-mode masks must differ across calls");
    }

    #[test]
    fn degree_floor_keeps_inverse_finite_for_negative_weights() {
        let n = 3;
        let tape = Tape::new();
        // Strongly negative weights drive deg + 1 below zero; the clamp
        // must keep the normalizer finite and positive.
        let adj = Adjacency::slim(tape.constant(Tensor::full([n, 2], -5.0)), vec![0, 1]);
        let x = tape.constant(Tensor::ones([1, n, 1]));
        let y = adj.diffuse(x).value();
        assert!(y.all_finite(), "{y:?}");
    }
}
