//! The training loop of Algorithm 2, with validation-based early stopping
//! and the timing/parameter accounting the paper's Table X reports.

use crate::model::Sagdfn;
use sagdfn_autodiff::Tape;
use sagdfn_data::{average, horizon_metrics, Metrics, SlidingWindows, ThreeWaySplit};
use sagdfn_nn::{masked_mae, Adam, Mode, Optimizer};
use sagdfn_obs as obs;
use sagdfn_tensor::{Rng64, Tensor};
use std::time::Instant;

/// Per-epoch record.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss (masked MAE, raw units).
    pub train_loss: f32,
    /// Validation MAE averaged over horizons.
    pub val_mae: f32,
    /// Wall-clock seconds for the epoch (training only).
    pub seconds: f64,
}

/// Result of a full training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// One entry per epoch actually run.
    pub epochs: Vec<EpochStats>,
    /// Test metrics per horizon step (index 2 = the paper's "Horizon 3").
    pub test: Vec<Metrics>,
    /// Total training wall-clock seconds.
    pub train_seconds: f64,
    /// Seconds for one full pass over the test split (Table X inference).
    pub inference_seconds: f64,
    /// Trainable scalar count (Table X "# Parameters").
    pub param_count: usize,
    /// Best validation MAE reached.
    pub best_val_mae: f32,
}

impl TrainReport {
    /// Metrics at a 1-based horizon (3, 6, 12 in the paper's tables);
    /// clamps to the last available step for short-horizon runs.
    pub fn at_horizon(&self, horizon: usize) -> Metrics {
        assert!(horizon >= 1 && !self.test.is_empty());
        self.test[(horizon - 1).min(self.test.len() - 1)]
    }
}

/// Trains `model` on `split` per its own config and returns the report.
/// Restores the best-validation weights before the final test evaluation.
pub fn fit(model: &mut Sagdfn, split: &ThreeWaySplit) -> TrainReport {
    let cfg = model.config().clone();
    let mut opt = Adam::new(cfg.lr).with_clip(cfg.grad_clip);
    let mut shuffle_rng = Rng64::new(cfg.seed ^ 0x5EED);
    let mut best_val = f32::INFINITY;
    let mut best_weights = model.params.snapshot();
    let mut stale = 0usize;
    let mut epochs = Vec::new();
    let train_start = Instant::now();
    // One tape for the whole run: `reset()` clears the nodes per batch but
    // keeps the arena's capacity, so steady-state steps record the graph
    // into already-owned storage. Batch/teacher scratch persists likewise.
    let tape = Tape::new();
    let mut teacher: Vec<bool> = Vec::new();
    let mut step_counter = 0u64;

    for epoch in 0..cfg.epochs {
        let _epoch_span = obs::span("epoch");
        let epoch_start = Instant::now();
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for ids in split.train.batch_ids(cfg.batch_size, Some(&mut shuffle_rng)) {
            let step_guard = obs::kernel(obs::Kernel::TrainStep, 0, 0, 0);
            let batch = split.train.make_batch(&ids);
            model.maybe_resample();
            tape.reset();
            let bind = model.params.bind(&tape);
            // Scheduled sampling (off unless configured): coin-flip per
            // decoder step with the decayed teacher probability.
            let p_teacher = model.teacher_probability(model.iterations());
            teacher.clear();
            if p_teacher > 0.0 {
                teacher.extend(
                    (0..batch.y.dim(0)).map(|_| shuffle_rng.next_f32() < p_teacher),
                );
            }
            let pred =
                model.forward_scheduled(&tape, &bind, &batch, split.scaler, &teacher, Mode::Train);
            let mask = Sagdfn::loss_mask(&batch.y);
            let loss = masked_mae(pred, &batch.y, &mask);
            loss_sum += loss.item() as f64;
            batches += 1;
            let grads = loss.backward();
            opt.step(&mut model.params, &bind, &grads);
            tape.recycle_gradients(grads);
            model.tick();
            drop(step_guard);
            step_counter += 1;
            obs::step_rollup(step_counter);
        }
        let train_loss = (loss_sum / batches.max(1) as f64) as f32;
        let val_mae = average(&evaluate(model, &split.val, cfg.batch_size)).mae;
        epochs.push(EpochStats {
            epoch,
            train_loss,
            val_mae,
            seconds: epoch_start.elapsed().as_secs_f64(),
        });
        if val_mae < best_val {
            best_val = val_mae;
            model.params.snapshot_into(&mut best_weights);
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.patience {
                break;
            }
        }
    }
    let train_seconds = train_start.elapsed().as_secs_f64();
    model.params.restore(&best_weights);
    // The index set is a function of the embeddings; re-derive it for the
    // restored best weights (deterministic, exploration off).
    model.refresh_index();

    let inf_start = Instant::now();
    let test = evaluate(model, &split.test, cfg.batch_size);
    let inference_seconds = inf_start.elapsed().as_secs_f64();

    TrainReport {
        epochs,
        test,
        train_seconds,
        inference_seconds,
        param_count: model.params.num_scalars(),
        best_val_mae: best_val,
    }
}

/// Evaluates `model` over a windowed split, returning per-horizon metrics.
pub fn evaluate(model: &Sagdfn, windows: &SlidingWindows, batch_size: usize) -> Vec<Metrics> {
    let (preds, targets) = predict(model, windows, batch_size);
    horizon_metrics(&preds, &targets)
}

/// Runs the model over a split and returns `(predictions, targets)` as
/// `(f, ΣB, N)` raw-unit tensors — also used by the visualization harness
/// (paper Figure 4).
///
/// Runs entirely on the no-grad eval path: no tape nodes are recorded,
/// the adjacency plan is frozen once and reused across batches, and each
/// batch is copied straight into pre-allocated output tensors, so peak
/// memory is the output size plus one batch regardless of split length.
pub fn predict(
    model: &Sagdfn,
    windows: &SlidingWindows,
    batch_size: usize,
) -> (Tensor, Tensor) {
    assert!(!windows.is_empty(), "cannot evaluate an empty split");
    let (f, n, total) = (windows.f(), windows.nodes(), windows.len());
    let mut preds = Tensor::zeros([f, total, n]);
    let mut targets = Tensor::zeros([f, total, n]);
    // One reused tape across evaluation batches (see `fit`), in no-grad
    // mode for the whole sweep: values only, no backward closures.
    let tape = Tape::new();
    let _no_grad = tape.no_grad();
    let mut offset = 0usize;
    for ids in windows.batch_ids(batch_size, None) {
        let _step = obs::kernel(obs::Kernel::EvalStep, 0, 0, 0);
        let batch = windows.make_batch(&ids);
        tape.reset();
        let bind = model.params.bind(&tape);
        let pred = model
            .forward(&tape, &bind, &batch, windows.scaler(), Mode::Eval)
            .value();
        // Row-major (f, B, N) means each horizon step is a contiguous
        // (B·N) block; copy it into the matching (total·N) stripe.
        let b = ids.len();
        copy_batch(&mut preds, pred.as_slice(), f, b, n, total, offset);
        copy_batch(&mut targets, batch.y.as_slice(), f, b, n, total, offset);
        offset += b;
    }
    debug_assert_eq!(offset, total);
    (preds, targets)
}

/// Copies a `(f, b, n)` batch block into columns `[offset, offset+b)` of a
/// `(f, total, n)` output tensor.
fn copy_batch(
    out: &mut Tensor,
    src: &[f32],
    f: usize,
    b: usize,
    n: usize,
    total: usize,
    offset: usize,
) {
    let dst = out.as_mut_slice();
    for t in 0..f {
        let src_block = &src[t * b * n..(t + 1) * b * n];
        let dst_start = t * total * n + offset * n;
        dst[dst_start..dst_start + b * n].copy_from_slice(src_block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SagdfnConfig;
    use sagdfn_data::{Scale, SplitSpec};

    fn tiny_split() -> (usize, ThreeWaySplit, sagdfn_graph::GeoGraph) {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let n = data.dataset.nodes();
        let split = ThreeWaySplit::new(data.dataset.subset_steps(0, 500), SplitSpec::paper(4, 4));
        (n, split, data.graph)
    }

    fn quick_cfg(n: usize) -> SagdfnConfig {
        SagdfnConfig {
            epochs: 2,
            batch_size: 16,
            convergence_iter: 10,
            sns_every: 8,
            ..SagdfnConfig::for_scale(Scale::Tiny, n)
        }
    }

    #[test]
    fn fit_runs_and_reports() {
        let (n, split, _) = tiny_split();
        let mut model = Sagdfn::new(n, quick_cfg(n));
        let report = fit(&mut model, &split);
        assert!(!report.epochs.is_empty());
        assert_eq!(report.test.len(), 4);
        assert!(report.param_count > 0);
        assert!(report.train_seconds > 0.0);
        assert!(report.best_val_mae.is_finite());
        // At tiny scale with 2 epochs we only require sane errors, not
        // convergence: predictions must beat a wildly-wrong constant.
        assert!(report.test[0].mae < 30.0, "MAE {}", report.test[0].mae);
    }

    #[test]
    fn training_reduces_loss() {
        let (n, split, _) = tiny_split();
        let mut cfg = quick_cfg(n);
        cfg.epochs = 4;
        cfg.patience = 10;
        let mut model = Sagdfn::new(n, cfg);
        let report = fit(&mut model, &split);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "training loss should fall: first {first}, last {last}"
        );
    }

    #[test]
    fn at_horizon_clamps() {
        let (n, split, _) = tiny_split();
        let mut model = Sagdfn::new(n, quick_cfg(n));
        let report = fit(&mut model, &split);
        // Only 4 horizon steps exist; asking for 12 returns the last.
        assert_eq!(report.at_horizon(12), report.test[3]);
        assert_eq!(report.at_horizon(3), report.test[2]);
    }

    #[test]
    fn predict_shapes_cover_split() {
        let (n, split, _) = tiny_split();
        let model = Sagdfn::new(n, quick_cfg(n));
        let (preds, targets) = predict(&model, &split.test, 8);
        assert_eq!(preds.dims(), targets.dims());
        assert_eq!(preds.dim(0), 4);
        assert_eq!(preds.dim(1), split.test.len());
        assert_eq!(preds.dim(2), n);
    }
}
