//! Sparse Spatial Multi-Head Attention — Eq. 1–6 of the paper.
//!
//! For every node `i` and each head `p`:
//!
//! ```text
//! Ē_i   = [repeat(E_i, M) ‖ E_I]        ∈ R^{M×2d}     (Eq. 1)
//! Y_i^p = FFN_p(Ē_i)                    ∈ R^{M×2}      (Eq. 2)
//! Z_i^p = α-Entmax(Y_i^p)  (per column) ∈ R^{M×2}      (Eq. 3)
//! Z_i   = ⊕(Z_i^1 … Z_i^P)              ∈ R^{M×2P}     (Eq. 4)
//! A_s   = stack(Z_1 … Z_N) · W_a        ∈ R^{N×M}      (Eq. 5–6)
//! ```
//!
//! The α-entmax normalization runs down each *column* (over the `M`
//! neighbors), so each head produces a sparse distribution of "likely" and
//! "unlikely" correlation mass over the significant neighbor set.
//!
//! Rows are independent, so the `entmax_rows` calls below fan out over
//! the persistent worker pool (`sagdfn_tensor::pool`) — with `N` in the
//! hundreds-to-thousands this is the dominant per-head cost.

use crate::config::SagdfnConfig;
use sagdfn_autodiff::Var;
use sagdfn_nn::{Activation, Binding, Dropout, Mlp, Mode, ParamId, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// The attention module: `P` head FFNs plus the combining weight `W_a`.
pub struct SparseSpatialAttention {
    heads: Vec<Mlp>,
    w_a: ParamId,
    alpha: f32,
    embed_dim: usize,
    dropout: Dropout,
}

impl SparseSpatialAttention {
    /// Registers the head FFNs (`2d → attn_hidden → 2`) and `W_a ∈
    /// R^{2P×1}` in `params`.
    pub fn new(params: &mut Params, cfg: &SagdfnConfig, rng: &mut Rng64) -> Self {
        let heads = (0..cfg.heads)
            .map(|p| {
                Mlp::new(
                    params,
                    &format!("ssma.head{p}"),
                    &[2 * cfg.embed_dim, cfg.attn_hidden, 2],
                    Activation::Relu,
                    rng,
                )
            })
            .collect();
        let w_a = params.add(
            "ssma.w_a",
            Tensor::rand_uniform([2 * cfg.heads, 1], 0.0, 1.0, rng),
        );
        SparseSpatialAttention {
            heads,
            w_a,
            alpha: cfg.alpha,
            embed_dim: cfg.embed_dim,
            dropout: Dropout::new("ssma.drop", cfg.dropout),
        }
    }

    /// Overrides α (used by the *w/o Entmax* ablation, which sets α = 1).
    pub fn set_alpha(&mut self, alpha: f32) {
        self.alpha = alpha;
    }

    /// Computes the slim adjacency `A_s ∈ R^{N×M}` from the embedding var
    /// `e` (`N×d`, on the tape so gradients flow back into `E`) and the
    /// significant index set `index`.
    pub fn forward<'t>(
        &self,
        bind: &Binding<'t>,
        e: Var<'t>,
        index: &[usize],
        mode: Mode,
    ) -> Var<'t> {
        let n = e.dims()[0];
        self.forward_rows(bind, e, index, 0, n, mode)
    }

    /// Computes rows `[r0, r1)` of the slim adjacency, returning an
    /// `(r1−r0)×M` var. Every op in the chain — pair-table gather, head
    /// FFNs, per-row entmax, and the `W_a` combine — treats output rows
    /// independently, so the result is bit-identical to the corresponding
    /// row block of [`SparseSpatialAttention::forward`]. The node-sharded
    /// eval path (DESIGN.md §14) uses this to assemble `A_s` one shard at
    /// a time, capping the `(rows·M, 2d)` pair-table peak at a shard's
    /// worth instead of the full `N·M` table.
    pub fn forward_rows<'t>(
        &self,
        bind: &Binding<'t>,
        e: Var<'t>,
        index: &[usize],
        r0: usize,
        r1: usize,
        mode: Mode,
    ) -> Var<'t> {
        let dims = e.dims();
        let (n, d) = (dims[0], dims[1]);
        assert_eq!(d, self.embed_dim, "embedding dim mismatch");
        assert!(r0 <= r1 && r1 <= n, "row range [{r0}, {r1}) out of 0..{n}");
        let (rows, m) = (r1 - r0, index.len());

        // Eq. 1, vectorized over the row block: the (rows·M, 2d) pair table.
        let rep_idx: Vec<usize> = (r0..r1).flat_map(|i| std::iter::repeat_n(i, m)).collect();
        let neigh_idx: Vec<usize> = (0..rows).flat_map(|_| index.iter().copied()).collect();
        let e_rep = e.index_select(0, &rep_idx);
        let e_neigh = e.index_select(0, &neigh_idx);
        let pairs = Var::concat(&[e_rep, e_neigh], 1); // (rows·M, 2d)
        let pairs = self.dropout.forward(pairs, mode);

        // Eq. 2–3 per head: FFN → (rows, M, 2), entmax down the M axis.
        let mut head_scores = Vec::with_capacity(self.heads.len());
        for ffn in &self.heads {
            let y = ffn.forward(bind, pairs); // (rows·M, 2)
            let y = y.reshape([rows, m, 2]).transpose_last2(); // (rows, 2, M)
            head_scores.push(y.entmax_rows(self.alpha)); // (rows, 2, M)
        }

        // Eq. 4–6: concat heads -> (rows, 2P, M), transpose ->
        // (rows, M, 2P), linear combine with W_a -> (rows, M).
        let z = Var::concat(&head_scores, 1); // (rows, 2P, M)
        let z = z.transpose_last2(); // (rows, M, 2P)
        let z2 = z.reshape([rows * m, 2 * self.heads.len()]);
        z2.matmul(&bind.var(self.w_a)).reshape([rows, m])
    }

    /// Number of heads `P`.
    pub fn heads(&self) -> usize {
        self.heads.len()
    }
}

/// The *w/o Pair-Wise Attention* ablation: `A_s` from the inner product
/// `E · E_I^T`, entmax-normalized per row (Table VIII).
pub fn inner_product_adjacency<'t>(e: Var<'t>, index: &[usize], alpha: f32) -> Var<'t> {
    let e_i = e.index_select(0, index); // (M, d)
    e.matmul_nt(&e_i).entmax_rows(alpha) // (N, M), no E_Iᵀ intermediate
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_autodiff::Tape;
    use sagdfn_data::Scale;

    fn setup(n: usize) -> (Params, SparseSpatialAttention, SagdfnConfig, Rng64) {
        let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        cfg.alpha = 1.5;
        let mut params = Params::new();
        let mut rng = Rng64::new(3);
        let attn = SparseSpatialAttention::new(&mut params, &cfg, &mut rng);
        (params, attn, cfg, rng)
    }

    #[test]
    fn adjacency_shape_is_n_by_m() {
        let n = 12;
        let (mut params, attn, cfg, mut rng) = setup(n);
        let e_id = params.add("E", Tensor::rand_normal([n, cfg.embed_dim], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let index: Vec<usize> = (0..cfg.m).collect();
        let a_s = attn.forward(&bind, bind.var(e_id), &index, Mode::Train);
        assert_eq!(a_s.dims(), vec![n, cfg.m]);
        assert!(a_s.value().all_finite());
    }

    #[test]
    fn gradients_reach_embeddings_and_all_heads() {
        let n = 10;
        let (mut params, attn, cfg, mut rng) = setup(n);
        let e_id = params.add("E", Tensor::rand_normal([n, cfg.embed_dim], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let index: Vec<usize> = (0..cfg.m).collect();
        let a_s = attn.forward(&bind, bind.var(e_id), &index, Mode::Train);
        let grads = a_s.square().sum().backward();
        assert!(
            bind.grad(&grads, e_id).is_some(),
            "embedding must receive gradient through the attention"
        );
        for id in params.ids() {
            assert!(
                bind.grad(&grads, id).is_some(),
                "no grad for {}",
                params.name(id)
            );
        }
    }

    #[test]
    fn higher_alpha_gives_sparser_adjacency_scores() {
        // Compare exact zeros in the per-head entmax outputs: α = 2 must
        // produce at least as many as α = 1 (softmax has none).
        let n = 14;
        let count_zeros = |alpha: f32| -> usize {
            let (mut params, mut attn, cfg, mut rng) = setup(n);
            attn.set_alpha(alpha);
            let e_id =
                params.add("E", Tensor::rand_normal([n, cfg.embed_dim], 0.0, 1.0, &mut rng));
            let tape = Tape::new();
            let bind = params.bind(&tape);
            let index: Vec<usize> = (0..cfg.m).collect();
            let a_s = attn.forward(&bind, bind.var(e_id), &index, Mode::Train);
            // Head outputs are inside the graph; approximate sparsity via
            // near-zero magnitudes of A_s relative to its scale.
            let v = a_s.value();
            let max = v.abs().max();
            v.as_slice().iter().filter(|x| x.abs() < 1e-4 * max).count()
        };
        assert!(count_zeros(2.0) >= count_zeros(1.0));
    }

    #[test]
    fn inner_product_variant_rows_on_simplex() {
        let n = 9;
        let mut rng = Rng64::new(4);
        let e0 = Tensor::rand_normal([n, 6], 0.0, 1.0, &mut rng);
        let tape = Tape::new();
        let e = tape.leaf(e0);
        let index = vec![0, 3, 5, 7];
        let a = inner_product_adjacency(e, &index, 1.5);
        assert_eq!(a.dims(), vec![n, 4]);
        let v = a.value();
        for row in v.as_slice().chunks(4) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "row sum {sum}");
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn forward_rows_bit_identical_to_full_forward_block() {
        let n = 13;
        let (mut params, attn, cfg, mut rng) = setup(n);
        let e_id = params.add("E", Tensor::rand_normal([n, cfg.embed_dim], 0.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let index: Vec<usize> = (0..cfg.m).collect();
        let full = attn
            .forward(&bind, bind.var(e_id), &index, Mode::Eval)
            .value();
        let m = index.len();
        for (r0, r1) in [(0, n), (0, 4), (4, 9), (9, n)] {
            let block = attn
                .forward_rows(&bind, bind.var(e_id), &index, r0, r1, Mode::Eval)
                .value();
            let want: Vec<u32> = full.as_slice()[r0 * m..r1 * m]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u32> = block.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(want, got, "rows [{r0}, {r1}) diverged");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 8;
        let build = || {
            let (mut params, attn, cfg, mut rng) = setup(n);
            let e_id =
                params.add("E", Tensor::rand_normal([n, cfg.embed_dim], 0.0, 1.0, &mut rng));
            let tape = Tape::new();
            let bind = params.bind(&tape);
            let index: Vec<usize> = (0..cfg.m).collect();
            attn.forward(&bind, bind.var(e_id), &index, Mode::Eval).value()
        };
        assert_eq!(build(), build());
    }
}
