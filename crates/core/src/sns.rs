//! Significant Neighbors Sampling — Algorithm 1 of the paper.
//!
//! Given the current node embedding matrix `E ∈ R^{N×d}` and a candidate
//! matrix `C ∈ {1..N}^{N×M}` (row `i` = candidate neighbor queue of node
//! `i`, no duplicates within a row):
//!
//! 1. sort each row of `C` by Euclidean distance between `E_i` and the
//!    candidate's embedding (lines 1–5) — closest first;
//! 2. count how often each node appears in the top-K positions
//!    `C[:, :K]`, and take the `K` most frequent nodes `V_K` (lines 6–7);
//! 3. fill the remaining `M − K` slots by sampling uniformly from
//!    `V ∖ V_K` (line 8) while exploration is enabled, or with the
//!    next-most-frequent nodes once the embedding has converged
//!    (iteration ≥ `r` in Algorithm 2).
//!
//! The returned index set `I` (length `M`) feeds the Sparse Spatial
//! Multi-Head Attention; the sorted candidate matrix persists across
//! iterations, so significance estimates refine as `E` trains.

use sagdfn_tensor::{pool, Rng64, Tensor};

/// The candidate-neighbor state of Algorithm 1.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    /// Candidate matrix `C`: row `i` holds `M` distinct candidate node ids.
    candidates: Vec<Vec<usize>>,
    m: usize,
    top_k: usize,
}

impl NeighborSampler {
    /// Randomly initializes the candidate matrix (Algorithm 2 line 2):
    /// every row is a uniform sample of `M` distinct node ids, so each
    /// node is amortized into ≈ `M` rows.
    pub fn new(n: usize, m: usize, top_k: usize, rng: &mut Rng64) -> Self {
        assert!(m <= n, "M = {m} cannot exceed N = {n}");
        assert!(top_k < m, "top_k = {top_k} must be below M = {m}");
        let candidates = (0..n).map(|_| rng.sample_indices(n, m)).collect();
        NeighborSampler {
            candidates,
            m,
            top_k,
        }
    }

    /// Number of candidate slots per node, `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Runs one sampling iteration (Algorithm 1), reading the current
    /// embeddings and returning the significant index set `I` of length
    /// `M`. With `explore = true` the trailing `M − K` entries are random
    /// exploration nodes; otherwise they are the runners-up of the vote.
    pub fn sample(&mut self, embeddings: &Tensor, explore: bool, rng: &mut Rng64) -> Vec<usize> {
        let n = self.candidates.len();
        assert_eq!(
            embeddings.dim(0),
            n,
            "embedding rows {} != node count {n}",
            embeddings.dim(0)
        );
        let d = embeddings.dim(1);
        let e = embeddings.as_slice();
        let dist2 = |a: usize, b: usize| -> f32 {
            let (ra, rb) = (&e[a * d..(a + 1) * d], &e[b * d..(b + 1) * d]);
            ra.iter()
                .zip(rb)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
        };

        // Lines 1–5: rank each candidate queue by embedding distance.
        // Rows sort independently and each sort is deterministic, so the
        // fan-out over the worker pool is bit-identical to the serial
        // loop regardless of thread count.
        let rows_per = n.div_ceil(pool::num_threads().min(n).max(1)).max(1);
        pool::par_chunks_mut(&mut self.candidates, rows_per, |chunk_idx, rows| {
            for (j, row) in rows.iter_mut().enumerate() {
                let i = chunk_idx * rows_per + j;
                row.sort_by(|&a, &b| {
                    dist2(i, a)
                        .partial_cmp(&dist2(i, b))
                        .expect("non-finite embedding distance")
                });
            }
        });

        // Lines 6–7: vote over the top-K positions.
        let mut freq = vec![0usize; n];
        for row in &self.candidates {
            for &node in &row[..self.top_k] {
                freq[node] += 1;
            }
        }
        let mut by_freq: Vec<usize> = (0..n).collect();
        by_freq.sort_by(|&a, &b| freq[b].cmp(&freq[a]).then(a.cmp(&b)));
        let mut index: Vec<usize> = by_freq[..self.top_k].to_vec();

        // Line 8: fill the M − K remaining slots.
        if explore {
            let in_vk: Vec<bool> = {
                let mut mask = vec![false; n];
                for &v in &index {
                    mask[v] = true;
                }
                mask
            };
            let pool: Vec<usize> = (0..n).filter(|&v| !in_vk[v]).collect();
            let picks = rng.sample_indices(pool.len(), (self.m - self.top_k).min(pool.len()));
            index.extend(picks.into_iter().map(|p| pool[p]));
        } else {
            index.extend(by_freq[self.top_k..self.m].iter().copied());
        }
        debug_assert_eq!(index.len(), self.m);
        index
    }

    /// Read-only view of the candidate matrix (for tests/diagnostics).
    pub fn candidates(&self) -> &[Vec<usize>] {
        &self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings_with_clusters(n: usize, hot: &[usize]) -> Tensor {
        // Nodes in `hot` sit at the origin; every other node sits at 10·e_i
        // (its own one-hot axis, d = n). Then dist(non-hot, hot) = 10 while
        // dist(non-hot, non-hot) = 10·√2, so the hot nodes are everyone's
        // nearest candidates and must win the significance vote.
        let d = n;
        let mut data = vec![0.0f32; n * d];
        for i in 0..n {
            if !hot.contains(&i) {
                data[i * d + i] = 10.0;
            }
        }
        Tensor::from_vec(data, [n, d])
    }

    #[test]
    fn returns_m_distinct_indices() {
        let mut rng = Rng64::new(0);
        let mut s = NeighborSampler::new(30, 10, 6, &mut rng);
        let e = Tensor::rand_uniform([30, 4], -1.0, 1.0, &mut rng);
        let idx = s.sample(&e, true, &mut rng);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "index set must be distinct");
        assert!(idx.iter().all(|&i| i < 30));
    }

    #[test]
    fn initial_candidates_are_distinct_per_row() {
        let mut rng = Rng64::new(1);
        let s = NeighborSampler::new(25, 8, 5, &mut rng);
        for row in s.candidates() {
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8);
        }
    }

    #[test]
    fn hot_nodes_win_the_vote() {
        // Nodes 2 and 5 are closest to everyone in embedding space; they
        // must appear in the significant set whenever they are candidates
        // of enough rows.
        let mut rng = Rng64::new(2);
        let n = 40;
        let mut s = NeighborSampler::new(n, 20, 10, &mut rng);
        let e = embeddings_with_clusters(n, &[2, 5]);
        let idx = s.sample(&e, false, &mut rng);
        assert!(idx[..10].contains(&2), "hot node 2 not in top-K: {idx:?}");
        assert!(idx[..10].contains(&5), "hot node 5 not in top-K: {idx:?}");
    }

    #[test]
    fn candidate_rows_sorted_by_distance_after_sample() {
        let mut rng = Rng64::new(3);
        let n = 20;
        let mut s = NeighborSampler::new(n, 8, 4, &mut rng);
        let e = Tensor::rand_uniform([n, 3], -1.0, 1.0, &mut rng);
        s.sample(&e, true, &mut rng);
        let data = e.as_slice();
        let dist2 = |a: usize, b: usize| -> f32 {
            (0..3)
                .map(|k| (data[a * 3 + k] - data[b * 3 + k]).powi(2))
                .sum()
        };
        for (i, row) in s.candidates().iter().enumerate() {
            for w in row.windows(2) {
                assert!(
                    dist2(i, w[0]) <= dist2(i, w[1]) + 1e-6,
                    "row {i} not sorted"
                );
            }
        }
    }

    #[test]
    fn exploration_adds_non_topk_nodes() {
        let mut rng = Rng64::new(4);
        let n = 50;
        let mut s = NeighborSampler::new(n, 20, 10, &mut rng);
        let e = Tensor::rand_uniform([n, 4], -1.0, 1.0, &mut rng);
        let idx = s.sample(&e, true, &mut rng);
        let topk: Vec<usize> = idx[..10].to_vec();
        for &v in &idx[10..] {
            assert!(!topk.contains(&v), "exploration re-picked a top-K node");
        }
    }

    #[test]
    fn no_exploration_takes_runners_up() {
        // With explore = false the result is fully deterministic given E.
        let mut rng = Rng64::new(5);
        let n = 30;
        let mut s1 = NeighborSampler::new(n, 12, 6, &mut rng);
        let mut s2 = s1.clone();
        let e = Tensor::rand_uniform([n, 4], -1.0, 1.0, &mut rng);
        let mut rng_a = Rng64::new(100);
        let mut rng_b = Rng64::new(999); // different RNG must not matter
        let a = s1.sample(&e, false, &mut rng_a);
        let b = s2.sample(&e, false, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_sampling_is_stable_for_fixed_embeddings() {
        // The top-K prefix must stabilize: after the first sample, further
        // samples with the same E return the same V_K.
        let mut rng = Rng64::new(6);
        let n = 40;
        let mut s = NeighborSampler::new(n, 16, 8, &mut rng);
        let e = embeddings_with_clusters(n, &[1, 7, 9]);
        let first = s.sample(&e, true, &mut rng)[..8].to_vec();
        for _ in 0..3 {
            let again = s.sample(&e, true, &mut rng)[..8].to_vec();
            assert_eq!(first, again);
        }
    }
}
