//! # sagdfn-core
//!
//! The paper's primary contribution: the **Scalable Adaptive Graph
//! Diffusion Forecasting Network** (SAGDFN, ICDE 2024), implemented
//! end-to-end on the `sagdfn-*` substrate crates.
//!
//! The three modules of the paper's Figure 1 map to:
//!
//! * [`sns`] — *Significant Neighbors Sampling* (Algorithm 1): ranks each
//!   node's candidate neighbors by embedding distance, votes the globally
//!   most significant `K` nodes, and fills the remaining `M − K` index
//!   slots by random exploration until convergence iteration `r`;
//! * [`attention`] — *Sparse Spatial Multi-Head Attention* (Eq. 1–6): a
//!   per-head FFN over `[E_i ‖ E_I]` pairs, normalized by α-entmax
//!   (Eq. 7–8) and combined by a linear head into the slim adjacency
//!   `A_s ∈ R^{N×M}`;
//! * [`cell`] + [`gconv`] — *Encoder-Decoder forecasting* (Eq. 9–10,
//!   Algorithm 2): a GRU whose matrix products are replaced by the fast
//!   graph convolution over `A_s`, unrolled as an encoder over the `h`
//!   input steps and a decoder over the `f` output steps.
//!
//! [`model::Sagdfn`] ties them together with the training loop of
//! Algorithm 2; [`ablation`] builds the four variants of the paper's
//! Table VIII from the same parts.

pub mod ablation;
pub mod attention;
pub mod cell;
pub mod config;
pub mod gconv;
pub mod model;
pub mod plan;
pub mod sns;
pub mod trainer;

pub use ablation::Variant;
pub use config::{Backbone, SagdfnConfig};
pub use model::Sagdfn;
pub use plan::{plan_mode, set_plan_mode, PlanMode};
pub use sagdfn_nn::Mode;
pub use trainer::{EpochStats, TrainReport};
