//! The SAGDFN model: modules wired per Figure 1, trained per Algorithm 2.

use crate::ablation::Variant;
use crate::attention::{inner_product_adjacency, SparseSpatialAttention};
use crate::cell::OneStepFastGConv;
use crate::config::{Backbone, SagdfnConfig};
use crate::gconv::{Adjacency, FrozenPlan, GConv};
use crate::plan::{self, PlanDims, PlanExecutor};
use crate::sns::NeighborSampler;
use sagdfn_autodiff::{Tape, Var};
use sagdfn_data::{Batch, ZScore};
use sagdfn_nn::{init, Binding, Linear, Mode, ParamId, Params};
use sagdfn_tensor::{Rng64, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Input channels per node and step: scaled value + time-of-day +
/// day-of-week (matching `sagdfn_data::window::Batch`).
pub const INPUT_CHANNELS: usize = 3;

/// The Scalable Adaptive Graph Diffusion Forecasting Network.
pub struct Sagdfn {
    /// All trainable tensors (embedding, attention, encoder, decoder).
    pub params: Params,
    cfg: SagdfnConfig,
    variant: Variant,
    n: usize,
    /// Resolved node-shard count (≥ 1), fixed at construction:
    /// `SAGDFN_SHARDS` env > `cfg.shards` > memsim auto plan. See
    /// [`Sagdfn::shards`].
    shards: usize,
    embed: ParamId,
    attn: SparseSpatialAttention,
    body: Body,
    sampler: NeighborSampler,
    index: Vec<usize>,
    iter: usize,
    rng: Rng64,
    /// Fixed dense adjacency for [`Variant::WithoutSnsSsma`].
    topo: Option<Tensor>,
    /// Eval-mode adjacency cache: frozen slim weights, normalizer and CSR
    /// plan, shared across batches until the parameters can have changed.
    frozen: RefCell<Option<Rc<FrozenPlan>>>,
    /// Compiled eval schedules, one per batch shape seen (a sweep's tail
    /// batch compiles its own). Entries are tied to the `FrozenPlan` they
    /// were built from, so [`Sagdfn::invalidate_plan`] drops them too.
    planned: RefCell<Vec<PlanExecutor>>,
}

impl Sagdfn {
    /// Builds the full model for `n` nodes.
    pub fn new(n: usize, cfg: SagdfnConfig) -> Self {
        Sagdfn::with_variant(n, cfg, Variant::Full, None)
    }

    /// Builds an ablation variant. `topology` is required for
    /// [`Variant::WithoutSnsSsma`] (an `N×N` dense adjacency, typically
    /// the latent graph's top-k rows) and ignored otherwise.
    pub fn with_variant(
        n: usize,
        mut cfg: SagdfnConfig,
        variant: Variant,
        topology: Option<Tensor>,
    ) -> Self {
        cfg.validate(n);
        if variant == Variant::WithoutEntmax {
            cfg.alpha = 1.0; // softmax
        }
        let mut rng = Rng64::new(cfg.seed);
        let mut params = Params::new();
        let embed = params.add("E", init::normal_embedding(n, cfg.embed_dim, &mut rng));
        let attn = SparseSpatialAttention::new(&mut params, &cfg, &mut rng);
        let body = Body::new(&mut params, &cfg, &mut rng);
        let mut sampler = NeighborSampler::new(n, cfg.m, cfg.top_k, &mut rng);
        let index = match variant {
            // Fixed uniform sample, never refined.
            Variant::WithoutSns => rng.sample_indices(n, cfg.m),
            // Unused by the topology variant, but kept valid.
            Variant::WithoutSnsSsma => (0..cfg.m).collect(),
            _ => sampler.sample(params.get(embed), true, &mut rng),
        };
        let topo = match variant {
            Variant::WithoutSnsSsma => Some(
                topology.expect("WithoutSnsSsma requires a topology adjacency"),
            ),
            _ => None,
        };
        if let Some(t) = &topo {
            assert_eq!(t.dims(), &[n, n], "topology adjacency must be N x N");
        }
        let shards = resolve_shards(&cfg, n);
        Sagdfn {
            params,
            cfg,
            variant,
            n,
            shards,
            embed,
            attn,
            body,
            sampler,
            index,
            iter: 0,
            rng,
            topo,
            frozen: RefCell::new(None),
            planned: RefCell::new(Vec::new()),
        }
    }

    /// Number of nodes the model was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resolved node-shard count for the diffusion working set (≥ 1).
    /// Sharding is a memory-layout decision only: shards = 1 and
    /// shards = k produce bit-identical losses, gradients and
    /// predictions (DESIGN.md §14, `tests/sparse_dense.rs`).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The active configuration.
    pub fn config(&self) -> &SagdfnConfig {
        &self.cfg
    }

    /// The active variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The current significant-neighbor index set `I`.
    pub fn significant_index(&self) -> &[usize] {
        &self.index
    }

    /// Training iterations performed so far.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Runs Algorithm 1 if this variant and iteration call for it
    /// (Algorithm 2 lines 4–6). Called once per training step.
    pub fn maybe_resample(&mut self) {
        if !self.variant.uses_sns() {
            return;
        }
        if !self.iter.is_multiple_of(self.cfg.sns_every) {
            return;
        }
        let explore = self.iter < self.cfg.convergence_iter;
        self.index = self
            .sampler
            .sample(self.params.get(self.embed), explore, &mut self.rng);
        self.invalidate_plan();
    }

    /// Advances the iteration counter (Algorithm 2 line 16). Training
    /// steps mutate the parameters, so any frozen eval plan is stale.
    pub fn tick(&mut self) {
        self.iter += 1;
        self.invalidate_plan();
    }

    /// Deterministically re-derives the significant index set from the
    /// *current* embeddings with exploration off. Call after loading a
    /// checkpoint: the persisted weights include `E`, and the frozen
    /// post-convergence index is a pure function of `E`, so this recovers
    /// the index the trained model ended with.
    pub fn refresh_index(&mut self) {
        if !self.variant.uses_sns() {
            return;
        }
        self.index = self
            .sampler
            .sample(self.params.get(self.embed), false, &mut self.rng);
        self.invalidate_plan();
    }

    /// Drops the frozen eval-mode adjacency plan. Called whenever the
    /// parameters or the index set can have changed (training step,
    /// resampling, checkpoint load via [`Sagdfn::refresh_index`]); the
    /// next eval forward rebuilds it once.
    pub fn invalidate_plan(&self) {
        self.frozen.borrow_mut().take();
        self.planned.borrow_mut().clear();
    }

    /// The frozen eval-mode adjacency artifacts, built once per parameter
    /// state on a scratch no-grad tape (the exact same ops as the train
    /// path, so eval stays bit-identical) and reused across batches.
    ///
    /// With `shards > 1` and an attention-bearing variant, `A_s` is
    /// assembled one row shard at a time — each shard's pair table,
    /// head FFNs and entmax run on their own scratch tape that is torn
    /// down before the next shard starts, so the eval-graph peak holds a
    /// `(rows·M, 2d)` table instead of the full `(N·M, 2d)` one. Every op
    /// in that chain is row-independent, so the assembled adjacency is
    /// bit-identical to the unsharded build
    /// (`attention::tests::forward_rows_bit_identical_to_full_forward_block`).
    pub fn frozen_plan(&self) -> Rc<FrozenPlan> {
        if let Some(plan) = self.frozen.borrow().as_ref() {
            sagdfn_obs::tally_plan(true);
            return Rc::clone(plan);
        }
        sagdfn_obs::tally_plan(false);
        let batch_hint = self.cfg.batch_size;
        let uses_attn = !matches!(
            self.variant,
            Variant::WithoutSnsSsma | Variant::WithoutAttention
        );
        let frozen = if self.shards > 1 && uses_attn {
            let m = self.index.len();
            let rows_per = self.n.div_ceil(self.shards);
            let mut weights = Tensor::zeros([self.n, m]);
            let mut r0 = 0;
            while r0 < self.n {
                let r1 = (r0 + rows_per).min(self.n);
                let _span = sagdfn_obs::span("frozen_plan.attn_shard");
                let tape = Tape::new();
                let _guard = tape.no_grad();
                let bind = self.params.bind(&tape);
                let block = self
                    .attn
                    .forward_rows(&bind, bind.var(self.embed), &self.index, r0, r1, Mode::Eval)
                    .value();
                weights.as_mut_slice()[r0 * m..r1 * m].copy_from_slice(block.as_slice());
                r0 = r1;
            }
            let tape = Tape::new();
            let _guard = tape.no_grad();
            Adjacency::slim(tape.constant(weights), self.index.clone())
                .with_shards(self.shards)
                .freeze(batch_hint)
        } else {
            let tape = Tape::new();
            let _guard = tape.no_grad();
            let bind = self.params.bind(&tape);
            self.adjacency(&tape, &bind, Mode::Eval).freeze(batch_hint)
        };
        let plan = Rc::new(frozen);
        *self.frozen.borrow_mut() = Some(Rc::clone(&plan));
        plan
    }

    /// Computes this step's adjacency on the tape (Algorithm 2 line 7).
    pub fn adjacency<'t>(&self, tape: &'t Tape, bind: &Binding<'t>, mode: Mode) -> Adjacency<'t> {
        let adj = match self.variant {
            Variant::WithoutSnsSsma => {
                Adjacency::dense(tape.constant(self.topo.clone().expect("topology set")))
            }
            Variant::WithoutAttention => Adjacency::slim(inner_product_adjacency(
                    bind.var(self.embed),
                    &self.index,
                    self.cfg.alpha,
                ), self.index.clone()),
            _ => Adjacency::slim(
                self.attn.forward(bind, bind.var(self.embed), &self.index, mode),
                self.index.clone(),
            ),
        };
        adj.with_shards(self.shards)
    }

    /// Full encoder-decoder forward pass (Algorithm 2 lines 8–12).
    ///
    /// Returns raw-unit predictions `(f, B, N)` as a tape var, so the L1
    /// loss (Eq. 11) differentiates through the inverse scaling.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        mode: Mode,
    ) -> Var<'t> {
        self.forward_scheduled(tape, bind, batch, scaler, &[], mode)
    }

    /// Forward pass with a scheduled-sampling teacher mask: at decoder
    /// step `t` with `teacher[t] == true`, the decoder consumes the
    /// ground-truth observation of step `t-1` (scaled) instead of its own
    /// previous prediction. An empty mask disables teacher forcing (the
    /// paper's Algorithm 2). Only the GRU backbone has a feedback loop;
    /// direct backbones ignore the mask.
    pub fn forward_scheduled<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        teacher: &[bool],
        mode: Mode,
    ) -> Var<'t> {
        // Eval reuses the frozen adjacency artifacts across batches; train
        // recomputes them on the tape so gradients reach E and the SSMA.
        let adj = match mode {
            Mode::Train => self.adjacency(tape, bind, mode),
            Mode::Eval => {
                // The compiled plan executor covers the no-teacher GRU
                // forward; everything else falls back to the interpreter
                // over the frozen adjacency.
                if teacher.is_empty() {
                    if let Some(pred) = self.try_planned(batch, scaler) {
                        return tape.constant(pred);
                    }
                }
                Adjacency::from_plan(tape, &self.frozen_plan())
            }
        };
        let (_, _b, n) = (batch.x.dim(0), batch.x.dim(1), batch.x.dim(2));
        assert_eq!(n, self.n, "batch node count mismatch");
        self.body
            .forward(tape, bind, &adj, batch, scaler, self.cfg.hidden, teacher, mode)
    }

    /// Runs the planned eval forward if this model/mode is eligible,
    /// returning the raw-unit predictions `(f, B, N)`.
    fn try_planned(&self, batch: &Batch, scaler: ZScore) -> Option<Tensor> {
        if !plan::plan_enabled() || !matches!(self.body, Body::Gru { .. }) {
            return None;
        }
        let (f_len, b) = (batch.y.dim(0), batch.x.dim(1));
        let mut out = Tensor::zeros([f_len, b, self.n]);
        self.planned_forward_into(batch, scaler, &mut out)
            .then_some(out)
    }

    /// Runs the compiled eval schedule directly into `out` (shaped
    /// `(f, B, N)`), bypassing the tape entirely. Compiles the schedule
    /// on first use per batch shape; steady-state calls perform zero
    /// allocator acquires. Returns `false` without touching `out` when
    /// the planned path is ineligible (non-GRU backbone or
    /// `SAGDFN_PLAN=off`), in which case the caller falls back to
    /// [`Sagdfn::forward`]. Bit-identical to the interpreted eval
    /// forward (`tests/plan_executor.rs`).
    pub fn planned_forward_into(&self, batch: &Batch, scaler: ZScore, out: &mut Tensor) -> bool {
        if !plan::plan_enabled() {
            return false;
        }
        let Body::Gru {
            encoders,
            decoders,
            head,
        } = &self.body
        else {
            return false;
        };
        let frozen = self.frozen_plan();
        let dims = PlanDims {
            b: batch.x.dim(1),
            n: batch.x.dim(2),
            m: frozen.index().map_or(self.n, <[usize]>::len),
            h_len: batch.x.dim(0),
            f_len: batch.y.dim(0),
            hidden: self.cfg.hidden,
        };
        let mut cache = self.planned.borrow_mut();
        // Executors compiled against a dropped FrozenPlan can never match
        // again — the model's Rc was replaced — so prune them here
        // (invalidate_plan also clears; this catches rebuilds that
        // happened between invalidation and now).
        cache.retain(|e| e.same_frozen(&frozen));
        let exec = match cache
            .iter_mut()
            .position(|e| e.matches(&frozen, dims, scaler))
        {
            Some(i) => &mut cache[i],
            None => {
                cache.push(plan::compile(encoders, decoders, head, &frozen, dims, scaler));
                cache.last_mut().expect("just pushed")
            }
        };
        exec.run_into(&self.params, batch, out.as_mut_slice());
        true
    }

    /// Renders the most recently compiled eval schedule as a table
    /// (op kind, shape, kernel choice, buffer slots), or `None` when no
    /// planned forward has run yet. Surfaced by `sagdfn profile`.
    pub fn plan_table(&self) -> Option<String> {
        self.planned.borrow().last().map(PlanExecutor::table)
    }

    /// Scheduled-sampling teacher probability at a training iteration:
    /// `τ/(τ+exp(iter/τ))` (inverse sigmoid decay), or 0 when disabled.
    pub fn teacher_probability(&self, iter: usize) -> f32 {
        if !self.cfg.scheduled_sampling {
            return 0.0;
        }
        let tau = self.cfg.ss_decay as f64;
        (tau / (tau + (iter as f64 / tau).exp())) as f32
    }

    /// The configured temporal backbone.
    pub fn backbone(&self) -> Backbone {
        self.cfg.backbone
    }

    /// Loss mask excluding missing (zero) ground-truth entries.
    pub fn loss_mask(target: &Tensor) -> Tensor {
        let data = target
            .as_slice()
            .iter()
            .map(|&v| if v.abs() > 1e-4 { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, target.shape().clone())
    }
}

/// Resolves the node-shard count for a model over `n` nodes.
/// Precedence: the `SAGDFN_SHARDS` environment variable (`auto` or a
/// count ≥ 1; anything unparseable falls back to `auto`) beats
/// `cfg.shards` (0 = auto) beats the memsim auto plan — the smallest
/// shard count whose modeled peak fits a V100-32GB at the configured
/// batch size, which keeps small graphs unsharded and engages sharding
/// only at paper scale.
fn resolve_shards(cfg: &SagdfnConfig, n: usize) -> usize {
    let auto = || {
        sagdfn_memsim::plan_shards(n, cfg.batch_size, sagdfn_memsim::V100_32GB.capacity_bytes)
            .shards
    };
    match std::env::var("SAGDFN_SHARDS").as_deref() {
        Ok(v) => match v.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => auto(),
        },
        Err(_) if cfg.shards > 0 => cfg.shards,
        Err(_) => auto(),
    }
}

/// The temporal body of the forecaster (see [`Backbone`]).
enum Body {
    /// The paper's encoder-decoder of OneStepFastGConv cells; one cell
    /// per stacked layer (the paper uses a single layer).
    Gru {
        encoders: Vec<OneStepFastGConv>,
        decoders: Vec<OneStepFastGConv>,
        head: Linear,
    },
    /// Dilated causal temporal convolutions + slim diffusion + direct
    /// multi-horizon head (the paper's "compatible with TCNs" claim).
    Tcn {
        in_proj: Linear,
        /// Per layer: (current-step transform, dilated-lag transform).
        layers: Vec<(Linear, Linear)>,
        dilations: Vec<usize>,
        gconv: GConv,
        head: Linear,
        horizon: usize,
    },
    /// Temporal self-attention: the last step's state queries every
    /// history step, the attention-weighted context joins the last state,
    /// then slim diffusion and a direct head (the paper's "compatible
    /// with attention mechanisms" claim).
    SelfAttn {
        in_proj: Linear,
        wq: Linear,
        wk: Linear,
        wv: Linear,
        combine: Linear,
        gconv: GConv,
        head: Linear,
        horizon: usize,
    },
}

/// TCN horizon is fixed at build time; the paper's protocols use 12.
const TCN_HORIZON: usize = 12;

impl Body {
    fn new(params: &mut Params, cfg: &SagdfnConfig, rng: &mut Rng64) -> Self {
        match cfg.backbone {
            Backbone::Gru => {
                let cell = |params: &mut Params, rng: &mut Rng64, name: String, layer: usize| {
                    let input = if layer == 0 { INPUT_CHANNELS } else { cfg.hidden };
                    OneStepFastGConv::new(
                        params,
                        &name,
                        input,
                        cfg.hidden,
                        None,
                        cfg.diffusion_steps,
                        cfg.dropout,
                        rng,
                    )
                };
                Body::Gru {
                    encoders: (0..cfg.layers)
                        .map(|l| cell(params, rng, format!("encoder.{l}"), l))
                        .collect(),
                    decoders: (0..cfg.layers)
                        .map(|l| cell(params, rng, format!("decoder.{l}"), l))
                        .collect(),
                    head: Linear::new(params, "decoder.head", cfg.hidden, 1, true, rng),
                }
            }
            Backbone::SelfAttention => Body::SelfAttn {
                in_proj: Linear::new(params, "attn.in", INPUT_CHANNELS, cfg.hidden, true, rng),
                wq: Linear::new(params, "attn.wq", cfg.hidden, cfg.hidden, false, rng),
                wk: Linear::new(params, "attn.wk", cfg.hidden, cfg.hidden, false, rng),
                wv: Linear::new(params, "attn.wv", cfg.hidden, cfg.hidden, false, rng),
                combine: Linear::new(params, "attn.combine", 2 * cfg.hidden, cfg.hidden, true, rng),
                gconv: GConv::new(
                    params,
                    "attn.gconv",
                    cfg.hidden,
                    cfg.hidden,
                    cfg.diffusion_steps,
                    cfg.dropout,
                    rng,
                ),
                head: Linear::new(params, "attn.head", cfg.hidden, TCN_HORIZON, true, rng),
                horizon: TCN_HORIZON,
            },
            Backbone::Tcn => {
                let dilations = vec![1usize, 2, 4];
                let layers = dilations
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        (
                            Linear::new(
                                params,
                                &format!("tcn.{i}.cur"),
                                cfg.hidden,
                                cfg.hidden,
                                true,
                                rng,
                            ),
                            Linear::new(
                                params,
                                &format!("tcn.{i}.lag"),
                                cfg.hidden,
                                cfg.hidden,
                                false,
                                rng,
                            ),
                        )
                    })
                    .collect();
                Body::Tcn {
                    in_proj: Linear::new(
                        params,
                        "tcn.in",
                        INPUT_CHANNELS,
                        cfg.hidden,
                        true,
                        rng,
                    ),
                    layers,
                    dilations,
                    gconv: GConv::new(
                        params,
                        "tcn.gconv",
                        cfg.hidden,
                        cfg.hidden,
                        cfg.diffusion_steps,
                        cfg.dropout,
                        rng,
                    ),
                    head: Linear::new(params, "tcn.head", cfg.hidden, TCN_HORIZON, true, rng),
                    horizon: TCN_HORIZON,
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        adj: &Adjacency<'t>,
        batch: &Batch,
        scaler: ZScore,
        hidden: usize,
        teacher: &[bool],
        mode: Mode,
    ) -> Var<'t> {
        let (h_len, b, n) = (batch.x.dim(0), batch.x.dim(1), batch.x.dim(2));
        let f_len = batch.y.dim(0);
        let step_input = |t: usize| -> Tensor {
            batch
                .x
                .slice_axis(0, t, t + 1)
                .into_reshape([b, n, INPUT_CHANNELS])
        };
        match self {
            Body::Gru {
                encoders,
                decoders,
                head,
            } => {
                // Encoder over the history window (Algorithm 2 lines 8–9);
                // each stacked layer feeds its hidden output upward.
                let zero = || tape.constant(Tensor::zeros([b, n, hidden]));
                let mut enc_h: Vec<Var<'t>> = encoders.iter().map(|_| zero()).collect();
                for t in 0..h_len {
                    let mut x = tape.constant(step_input(t));
                    for (layer, cell) in encoders.iter().enumerate() {
                        enc_h[layer] = cell.step_hidden(bind, adj, x, enc_h[layer], mode);
                        x = enc_h[layer];
                    }
                }
                // Decoder (lines 10–12): seeded with the forecast-origin
                // observation, then feeds back its own predictions.
                let mut dec_h = enc_h;
                let mut value = tape.constant(
                    scaler
                        .transform(&batch.x_last_raw)
                        .into_reshape([b, n, 1]),
                );
                let mut preds = Vec::with_capacity(f_len);
                for t in 0..f_len {
                    // Scheduled sampling: replace the fed-back prediction
                    // with the scaled ground truth of the previous step.
                    if t > 0 && teacher.get(t).copied().unwrap_or(false) {
                        value = tape.constant(
                            scaler
                                .transform(&batch.y.slice_axis(0, t - 1, t))
                                .into_reshape([b, n, 1]),
                        );
                    }
                    let cov = tape.constant(
                        batch
                            .future_cov
                            .slice_axis(0, t, t + 1)
                            .into_reshape([b, n, 2]),
                    );
                    let mut x = Var::concat(&[value, cov], 2);
                    for (layer, cell) in decoders.iter().enumerate() {
                        dec_h[layer] = cell.step_hidden(bind, adj, x, dec_h[layer], mode);
                        x = dec_h[layer];
                    }
                    let pred = head.forward(bind, x);
                    preds.push(pred);
                    value = pred;
                }
                Var::stack(&preds, 0)
                    .reshape([f_len, b, n])
                    .scale(scaler.std)
                    .add_scalar(scaler.mean)
            }
            Body::SelfAttn {
                in_proj,
                wq,
                wk,
                wv,
                combine,
                gconv,
                head,
                horizon,
            } => {
                assert!(
                    f_len <= *horizon,
                    "attention backbone built for horizon {horizon}, batch wants {f_len}"
                );
                let states: Vec<Var<'t>> = (0..h_len)
                    .map(|t| {
                        in_proj
                            .forward(bind, tape.constant(step_input(t)))
                            .relu()
                    })
                    .collect();
                let last = states[h_len - 1];
                let q = wq.forward(bind, last); // (B, N, D)
                let scale = 1.0 / (hidden as f32).sqrt();
                // Scores over time: s_t = <q, k_t> / sqrt(D) -> (B, N, h).
                let scores: Vec<Var<'t>> = states
                    .iter()
                    .map(|&st| {
                        let k = wk.forward(bind, st);
                        q.mul(&k).sum_axis(2).scale(scale) // (B, N)
                    })
                    .collect();
                let weights = Var::stack(&scores, 2).softmax_rows(); // (B, N, h)
                // Context: Sum_t w_t * v_t.
                let mut context: Option<Var<'t>> = None;
                for (t, &st) in states.iter().enumerate() {
                    let v = wv.forward(bind, st); // (B, N, D)
                    let w_t = weights.slice_axis(2, t, t + 1); // (B, N, 1)
                    let term = v.mul(&w_t);
                    context = Some(match context {
                        Some(acc) => acc.add(&term),
                        None => term,
                    });
                }
                let context = context.expect("non-empty window");
                let joined = combine
                    .forward(bind, Var::concat(&[last, context], 2))
                    .relu();
                let mixed = gconv.forward(bind, adj, joined, mode).relu();
                let out = head.forward(bind, mixed); // (B, N, horizon)
                out.slice_axis(2, 0, f_len)
                    .reshape([b * n, f_len])
                    .transpose_last2()
                    .reshape([f_len, b, n])
                    .scale(scaler.std)
                    .add_scalar(scaler.mean)
            }
            Body::Tcn {
                in_proj,
                layers,
                dilations,
                gconv,
                head,
                horizon,
            } => {
                assert!(
                    f_len <= *horizon,
                    "TCN backbone built for horizon {horizon}, batch wants {f_len}"
                );
                // Per-step projection into the hidden width.
                let mut cur: Vec<Var<'t>> = (0..h_len)
                    .map(|t| {
                        in_proj
                            .forward(bind, tape.constant(step_input(t)))
                            .relu()
                    })
                    .collect();
                // Dilated causal conv layers with residual connections;
                // indices below zero clamp to the first step (reflection-
                // free causal padding).
                for ((wa, wb), &dil) in layers.iter().zip(dilations) {
                    let next: Vec<Var<'t>> = (0..h_len)
                        .map(|t| {
                            let lag = t.saturating_sub(dil);
                            let z = wa
                                .forward(bind, cur[t])
                                .add(&wb.forward(bind, cur[lag]))
                                .relu();
                            z.add(&cur[t])
                        })
                        .collect();
                    cur = next;
                }
                // Spatial mixing of the final state, then the direct head.
                let mixed = gconv.forward(bind, adj, cur[h_len - 1], mode).relu();
                let out = head.forward(bind, mixed); // (B, N, horizon)
                out.slice_axis(2, 0, f_len)
                    .reshape([b * n, f_len])
                    .transpose_last2()
                    .reshape([f_len, b, n])
                    .scale(scaler.std)
                    .add_scalar(scaler.mean)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};

    fn tiny_setup() -> (Sagdfn, ThreeWaySplit) {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let n = data.dataset.nodes();
        let cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        let model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(4, 4));
        (model, split)
    }

    #[test]
    fn forward_shapes_and_finite() {
        let (model, split) = tiny_setup();
        let batch = split.train.make_batch(&[0, 1, 2]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert_eq!(pred.dims(), vec![4, 3, model.n()]);
        assert!(pred.value().all_finite());
    }

    #[test]
    fn loss_backward_reaches_every_parameter() {
        let (model, split) = tiny_setup();
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        let mask = Sagdfn::loss_mask(&batch.y);
        let loss = sagdfn_nn::masked_mae(pred, &batch.y, &mask);
        let grads = loss.backward();
        for id in model.params.ids() {
            assert!(
                bind.grad(&grads, id).is_some(),
                "no gradient for {}",
                model.params.name(id)
            );
        }
    }

    #[test]
    fn resample_updates_index_before_convergence() {
        let (mut model, _) = tiny_setup();
        let before = model.significant_index().to_vec();
        // Force several resamples; exploration makes a change near-certain.
        let mut changed = false;
        for _ in 0..8 {
            model.maybe_resample();
            model.tick();
            if model.significant_index() != before.as_slice() {
                changed = true;
            }
        }
        assert!(changed, "exploration never changed the index set");
    }

    #[test]
    fn index_frozen_after_convergence_iteration() {
        let (mut model, _) = tiny_setup();
        // Jump past convergence and resample twice at a multiple of
        // sns_every: with explore off and fixed embeddings the set must
        // be identical.
        while model.iterations() < model.config().convergence_iter {
            model.tick();
        }
        while model.iterations() % model.config().sns_every != 0 {
            model.tick();
        }
        model.maybe_resample();
        let a = model.significant_index().to_vec();
        model.maybe_resample();
        let b = model.significant_index().to_vec();
        assert_eq!(a, b, "post-convergence sampling must be deterministic");
    }

    #[test]
    fn without_sns_never_resamples() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let n = data.dataset.nodes();
        let cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        let mut model = Sagdfn::with_variant(n, cfg, Variant::WithoutSns, None);
        let before = model.significant_index().to_vec();
        for _ in 0..5 {
            model.maybe_resample();
            model.tick();
        }
        assert_eq!(model.significant_index(), before.as_slice());
    }

    #[test]
    fn topology_variant_runs_forward() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let n = data.dataset.nodes();
        let cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        let topo = data.graph.adj.topk_rows(8).weights().clone();
        let model = Sagdfn::with_variant(n, cfg, Variant::WithoutSnsSsma, Some(topo));
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(4, 4));
        let batch = split.train.make_batch(&[0]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert!(pred.value().all_finite());
    }

    #[test]
    fn two_layer_stack_forward_and_grads() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.layers = 2;
        let model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(4, 4));
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert_eq!(pred.dims(), vec![4, 2, n]);
        let mask = Sagdfn::loss_mask(&batch.y);
        let grads = sagdfn_nn::masked_mae(pred, &batch.y, &mask).backward();
        for id in model.params.ids() {
            assert!(
                bind.grad(&grads, id).is_some(),
                "no gradient for {} (layer-2 cells must participate)",
                model.params.name(id)
            );
        }
    }

    #[test]
    fn deeper_stack_has_more_parameters() {
        let n = 20;
        let cfg1 = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        let mut cfg2 = cfg1.clone();
        cfg2.layers = 2;
        let p1 = Sagdfn::new(n, cfg1).params.num_scalars();
        let p2 = Sagdfn::new(n, cfg2).params.num_scalars();
        assert!(p2 > p1, "{p2} should exceed {p1}");
    }

    #[test]
    fn tcn_backbone_forward_and_grads() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.backbone = Backbone::Tcn;
        let model = Sagdfn::new(n, cfg);
        assert_eq!(model.backbone(), Backbone::Tcn);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert_eq!(pred.dims(), vec![12, 2, n]);
        assert!(pred.value().all_finite());
        let mask = Sagdfn::loss_mask(&batch.y);
        let loss = sagdfn_nn::masked_mae(pred, &batch.y, &mask);
        let grads = loss.backward();
        for id in model.params.ids() {
            assert!(
                bind.grad(&grads, id).is_some(),
                "no gradient for {}",
                model.params.name(id)
            );
        }
    }

    #[test]
    fn attention_backbone_forward_and_grads() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.backbone = Backbone::SelfAttention;
        let model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert_eq!(pred.dims(), vec![12, 2, n]);
        assert!(pred.value().all_finite());
        let mask = Sagdfn::loss_mask(&batch.y);
        let grads = sagdfn_nn::masked_mae(pred, &batch.y, &mask).backward();
        for id in model.params.ids() {
            assert!(
                bind.grad(&grads, id).is_some(),
                "no gradient for {}",
                model.params.name(id)
            );
        }
    }

    #[test]
    fn attention_backbone_trains() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.backbone = Backbone::SelfAttention;
        cfg.epochs = 2;
        cfg.sns_every = 8;
        let mut model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 400),
            SplitSpec::paper(12, 12),
        );
        let report = crate::trainer::fit(&mut model, &split);
        assert!(
            report.test[0].mae < 15.0,
            "attention backbone MAE {}",
            report.test[0].mae
        );
    }

    #[test]
    fn tcn_backbone_trains() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.backbone = Backbone::Tcn;
        cfg.epochs = 2;
        cfg.sns_every = 8;
        let mut model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 400),
            SplitSpec::paper(12, 12),
        );
        let report = crate::trainer::fit(&mut model, &split);
        assert!(report.test[0].mae < 15.0, "TCN MAE {}", report.test[0].mae);
    }

    #[test]
    fn teacher_forcing_changes_decoder_inputs() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        let model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(6, 6));
        let batch = split.train.make_batch(&[0, 1]);
        let run = |teacher: &[bool]| {
            let tape = Tape::new();
            let bind = model.params.bind(&tape);
            model
                .forward_scheduled(&tape, &bind, &batch, split.scaler, teacher, Mode::Train)
                .value()
        };
        let free = run(&[]);
        let forced = run(&[true; 6]);
        // Step 0 is identical (no previous step to force)...
        let d0: f32 = (0..batch.y.dim(2))
            .map(|i| (free.at(&[0, 0, i]) - forced.at(&[0, 0, i])).abs())
            .sum();
        assert!(d0 < 1e-5, "step 0 must be unaffected, diff {d0}");
        // ...but later steps diverge.
        let d3: f32 = (0..batch.y.dim(2))
            .map(|i| (free.at(&[3, 0, i]) - forced.at(&[3, 0, i])).abs())
            .sum();
        assert!(d3 > 1e-4, "teacher forcing had no effect at step 3");
    }

    #[test]
    fn teacher_probability_decays() {
        let n = 20;
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.scheduled_sampling = true;
        cfg.ss_decay = 100.0;
        let model = Sagdfn::new(n, cfg);
        let p0 = model.teacher_probability(0);
        let p_late = model.teacher_probability(2000);
        assert!(p0 > 0.9, "p(0) = {p0}");
        assert!(p_late < 0.1, "p(2000) = {p_late}");
        assert!(p0 > p_late);
        // Disabled by default.
        let plain = Sagdfn::new(n, SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n));
        assert_eq!(plain.teacher_probability(0), 0.0);
    }

    #[test]
    fn scheduled_sampling_training_runs() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let n = data.dataset.nodes();
        let mut cfg = SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n);
        cfg.scheduled_sampling = true;
        cfg.ss_decay = 50.0;
        cfg.epochs = 2;
        cfg.sns_every = 8;
        let mut model = Sagdfn::new(n, cfg);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 400),
            SplitSpec::paper(6, 6),
        );
        let report = crate::trainer::fit(&mut model, &split);
        assert!(report.test[0].mae < 15.0, "MAE {}", report.test[0].mae);
    }

    #[test]
    fn eval_forward_is_bitwise_train_and_records_nothing() {
        let (model, split) = tiny_setup();
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params.bind(&tape);
        let want = model
            .forward(&tape, &bind, &batch, split.scaler, Mode::Train)
            .value();

        let eval_tape = Tape::new();
        let _guard = eval_tape.no_grad();
        let bind = model.params.bind(&eval_tape);
        let got = model
            .forward(&eval_tape, &bind, &batch, split.scaler, Mode::Eval)
            .value();
        assert_eq!(eval_tape.len(), 0, "eval pass must record zero tape nodes");
        let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want_bits, got_bits, "eval must be bit-identical to train");
        assert!(model.frozen.borrow().is_some(), "plan must be cached");
        // A second eval reuses the cached plan; invalidation clears it.
        let plan = model.frozen_plan();
        assert!(Rc::ptr_eq(&plan, &model.frozen_plan()));
        model.invalidate_plan();
        assert!(model.frozen.borrow().is_none());
    }

    #[test]
    fn sharded_model_bit_identical_to_unsharded() {
        // shards = 1 vs shards = 3 must agree bitwise on the loss, every
        // parameter gradient, and the eval predictions (DESIGN.md §14).
        let run = |shards: usize| -> Vec<u32> {
            let data = sagdfn_data::metr_la_like(Scale::Tiny);
            let n = data.dataset.nodes();
            let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
            cfg.shards = shards;
            let model = Sagdfn::new(n, cfg);
            if std::env::var("SAGDFN_SHARDS").is_err() {
                assert_eq!(model.shards(), shards);
            }
            let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(4, 4));
            let batch = split.train.make_batch(&[0, 1]);
            let tape = Tape::new();
            let bind = model.params.bind(&tape);
            let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
            let mask = Sagdfn::loss_mask(&batch.y);
            let loss = sagdfn_nn::masked_mae(pred, &batch.y, &mask);
            let grads = loss.backward();
            let mut bits = vec![loss.value().as_slice()[0].to_bits()];
            for id in model.params.ids() {
                let g = bind.grad(&grads, id).expect("gradient");
                bits.extend(g.as_slice().iter().map(|v| v.to_bits()));
            }
            let eval_tape = Tape::new();
            let _guard = eval_tape.no_grad();
            let ebind = model.params.bind(&eval_tape);
            let ev = model
                .forward(&eval_tape, &ebind, &batch, split.scaler, Mode::Eval)
                .value();
            bits.extend(ev.as_slice().iter().map(|v| v.to_bits()));
            bits
        };
        assert_eq!(run(1), run(3), "sharding changed numerical results");
    }

    #[test]
    fn loss_mask_zeroes_missing() {
        let y = Tensor::from_vec(vec![0.0, 3.0, 0.00001, 7.0], [4]);
        let m = Sagdfn::loss_mask(&y);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }
}
