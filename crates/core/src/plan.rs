//! The fused plan executor: the frozen eval forward compiled once into a
//! linearized kernel schedule.
//!
//! [`FrozenPlan`](crate::gconv::FrozenPlan) caches the eval-mode
//! adjacency artifacts across batches. This module extends that idea to
//! the whole GRU encoder-decoder forward: a record-once walk of the eval
//! graph emits a flat [`Op`] schedule in which
//!
//! * every intermediate lives in a pre-resolved buffer slot — a
//!   lifetime-based linear scan maps the SSA-style virtual results onto
//!   a small arena of recycled buffers, so a steady-state planned
//!   forward performs **zero** allocator acquires;
//! * the GRU gate chains (`σ(r_pre) ⊙ h` and
//!   `σ(z_pre) ⊙ h + (1 − σ(z_pre)) ⊙ tanh(h̃_pre)`) and the diffusion
//!   epilogue (`(A·X_I + X) ⊙ (D+I)^{-1}`) run as single fused SIMD
//!   passes ([`sagdfn_tensor::simd`]), bit-identical to the unfused op
//!   sequences they replace;
//! * per-op kernel choices — sparse vs dense diffusion, pooled vs serial
//!   GEMM — are pinned at compile time from the frozen plan and the
//!   process-fixed worker pool.
//!
//! One scheduling improvement over the interpreter falls out of the
//! compile step for free: the reset and update gates convolve the *same*
//! concatenation `[X_t ‖ H_{t−1}]`, so the builder emits its diffusion
//! chain once and feeds both gates. The interpreter diffuses it twice;
//! the shared chain is bit-identical because every kernel involved is
//! deterministic on identical inputs.
//!
//! The interpreted eval path remains the semantic oracle: a planned
//! forward must be bit-identical to [`Sagdfn::forward`] in eval mode
//! (`tests/plan_executor.rs`), and the executor is stale exactly when the
//! frozen adjacency is (`tick`, `maybe_resample`, `refresh_index`): it
//! holds the `Rc<FrozenPlan>` it was compiled from and the model compares
//! pointers before every run.
//!
//! `SAGDFN_PLAN` (`auto`/`on`/`off`, default `auto` ≡ on) gates the
//! planned path, mirroring `SAGDFN_SPARSE`; [`set_plan_mode`] flips it
//! in-process for A/B benches and the determinism matrix.
//!
//! [`Sagdfn::forward`]: crate::model::Sagdfn::forward

use crate::cell::OneStepFastGConv;
use crate::gconv::FrozenPlan;
use crate::model::INPUT_CHANNELS;
use sagdfn_data::Batch;
use sagdfn_data::ZScore;
use sagdfn_nn::{Linear, ParamId, Params};
use sagdfn_obs as obs;
use sagdfn_tensor::{alloc, matmul, simd, sparse};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Decoder covariate channels (time-of-day, day-of-week).
const COV_CHANNELS: usize = INPUT_CHANNELS - 1;

// ---------------------------------------------------------------------
// SAGDFN_PLAN dispatch policy
// ---------------------------------------------------------------------

/// Whether eval forwards run through the compiled plan executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    /// Use the planned path whenever the forward is eligible (default).
    Auto,
    /// Same as `Auto`; named for symmetry with `SAGDFN_SPARSE=on`.
    On,
    /// Always run the interpreted eval path.
    Off,
}

fn mode_flag() -> &'static AtomicU8 {
    static FLAG: OnceLock<AtomicU8> = OnceLock::new();
    FLAG.get_or_init(|| {
        let mode = match std::env::var("SAGDFN_PLAN").as_deref() {
            Ok("on") | Ok("1") => PlanMode::On,
            Ok("off") | Ok("0") => PlanMode::Off,
            _ => PlanMode::Auto,
        };
        AtomicU8::new(mode as u8)
    })
}

fn mode_from_u8(v: u8) -> PlanMode {
    match v {
        1 => PlanMode::On,
        2 => PlanMode::Off,
        _ => PlanMode::Auto,
    }
}

/// The current plan-dispatch mode (`SAGDFN_PLAN`, default `auto`).
pub fn plan_mode() -> PlanMode {
    mode_from_u8(mode_flag().load(Ordering::Relaxed))
}

/// Sets the dispatch mode programmatically (benches and tests run
/// in-process A/B comparisons), returning the previous mode.
pub fn set_plan_mode(mode: PlanMode) -> PlanMode {
    mode_from_u8(mode_flag().swap(mode as u8, Ordering::SeqCst))
}

/// Whether the planned path may run at all under the current mode.
pub(crate) fn plan_enabled() -> bool {
    plan_mode() != PlanMode::Off
}

// ---------------------------------------------------------------------
// Schedule IR
// ---------------------------------------------------------------------

/// Problem dimensions a schedule is specialized for. A different batch
/// size (the tail batch of a sweep) compiles its own schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PlanDims {
    /// Batch size `B`.
    pub b: usize,
    /// Node count `N`.
    pub n: usize,
    /// Adjacency columns `M` (`== n` for a dense adjacency).
    pub m: usize,
    /// History length `h`.
    pub h_len: usize,
    /// Horizon `f`.
    pub f_len: usize,
    /// GRU width `D`.
    pub hidden: usize,
}

impl PlanDims {
    /// Rows of every per-step matrix: `B · N`.
    fn rows(&self) -> usize {
        self.b * self.n
    }
}

/// A non-slot operand of a concat: step `t` of an input tensor, read
/// directly from the batch's contiguous axis-0 slice (no staging copy).
#[derive(Clone, Copy, Debug)]
enum Src {
    /// A buffer slot (virtual id during building, physical after).
    Slot(usize),
    /// History input step `t`: `(B, N, INPUT_CHANNELS)` rows of `batch.x`.
    X(usize),
    /// Future covariate step `t`: `(B, N, COV_CHANNELS)` rows of
    /// `batch.future_cov`.
    Cov(usize),
}

/// One scheduled kernel. Slot fields are virtual ids while building and
/// physical arena indices in the finished schedule.
#[derive(Clone, Debug)]
enum Op {
    /// `dst = 0` (initial hidden state).
    Zero { dst: usize },
    /// `dst = (x_last_raw − mean) / std` — the decoder seed.
    Seed { dst: usize },
    /// Row-wise `dst = [a ‖ b]` over `B·N` rows.
    Concat2 {
        a: Src,
        ca: usize,
        b: Src,
        cb: usize,
        dst: usize,
    },
    /// `dst[B·N × n_out] = src[B·N × k] · W[k × n_out]`.
    Gemm {
        src: usize,
        w: ParamId,
        dst: usize,
        k: usize,
        n_out: usize,
        pooled: bool,
    },
    /// `dst[r][j] += bias[j]` in place.
    BiasAdd { dst: usize, bias: ParamId },
    /// `dst += src` in place (gconv depth accumulation).
    AddAssign { dst: usize, src: usize },
    /// Slim gather `dst[b][i] = src[b][index[i]]` rows of width `c`.
    Gather { src: usize, dst: usize, c: usize },
    /// CSR diffusion product `dst[b] = A · src[b]`, `(B, M, c) → (B, N, c)`.
    Spmm {
        src: usize,
        dst: usize,
        c: usize,
        pooled: bool,
    },
    /// Dense diffusion product: per-batch `A[N×M] · src[b][M×c]`.
    DenseMm {
        src: usize,
        dst: usize,
        c: usize,
        pooled: bool,
    },
    /// Fused `dst = (ax + x) ⊙ deg_inv` (diffusion normalizer).
    Epilogue {
        ax: usize,
        x: usize,
        dst: usize,
        c: usize,
    },
    /// Fused `dst = σ(pre) ⊙ h` (reset gate application).
    SigmoidMul { pre: usize, h: usize, dst: usize },
    /// Fused `dst = σ(z) ⊙ h + (1 − σ(z)) ⊙ tanh(hc)` (GRU output).
    GruCombine {
        z: usize,
        hc: usize,
        h: usize,
        dst: usize,
    },
    /// `out[t] = src · std + mean` — un-normalized prediction store.
    Store { src: usize, t: usize },
}

impl Op {
    /// The slot this op defines (first write of a fresh value), if any.
    /// In-place mutations (`BiasAdd`, `AddAssign`) and `Store` define
    /// nothing.
    fn def_slot(&self) -> Option<usize> {
        match *self {
            Op::Zero { dst }
            | Op::Seed { dst }
            | Op::Concat2 { dst, .. }
            | Op::Gemm { dst, .. }
            | Op::Gather { dst, .. }
            | Op::Spmm { dst, .. }
            | Op::DenseMm { dst, .. }
            | Op::Epilogue { dst, .. }
            | Op::SigmoidMul { dst, .. }
            | Op::GruCombine { dst, .. } => Some(dst),
            Op::BiasAdd { .. } | Op::AddAssign { .. } | Op::Store { .. } => None,
        }
    }

    /// Calls `f` for every slot the op touches (reads, in-place targets
    /// and the defined destination).
    fn for_each_slot(&self, mut f: impl FnMut(usize)) {
        let mut src = |s: &Src| {
            if let Src::Slot(i) = *s {
                f(i);
            }
        };
        match self {
            Op::Zero { dst } | Op::Seed { dst } => f(*dst),
            Op::Concat2 { a, b, dst, .. } => {
                src(a);
                src(b);
                f(*dst);
            }
            Op::Gemm { src: s, dst, .. }
            | Op::AddAssign { dst, src: s }
            | Op::Gather { src: s, dst, .. }
            | Op::Spmm { src: s, dst, .. }
            | Op::DenseMm { src: s, dst, .. } => {
                f(*s);
                f(*dst);
            }
            Op::BiasAdd { dst, .. } => f(*dst),
            Op::Epilogue { ax, x, dst, .. } => {
                f(*ax);
                f(*x);
                f(*dst);
            }
            Op::SigmoidMul { pre, h, dst } => {
                f(*pre);
                f(*h);
                f(*dst);
            }
            Op::GruCombine { z, hc, h, dst } => {
                f(*z);
                f(*hc);
                f(*h);
                f(*dst);
            }
            Op::Store { src: s, .. } => f(*s),
        }
    }

    /// Rewrites every slot id through `map` (virtual → physical).
    fn remap(&mut self, map: &[usize]) {
        let remap_src = |s: &mut Src| {
            if let Src::Slot(i) = s {
                *i = map[*i];
            }
        };
        match self {
            Op::Zero { dst } | Op::Seed { dst } | Op::BiasAdd { dst, .. } => *dst = map[*dst],
            Op::Concat2 { a, b, dst, .. } => {
                remap_src(a);
                remap_src(b);
                *dst = map[*dst];
            }
            Op::Gemm { src, dst, .. }
            | Op::AddAssign { dst, src }
            | Op::Gather { src, dst, .. }
            | Op::Spmm { src, dst, .. }
            | Op::DenseMm { src, dst, .. } => {
                *src = map[*src];
                *dst = map[*dst];
            }
            Op::Epilogue { ax, x, dst, .. } => {
                *ax = map[*ax];
                *x = map[*x];
                *dst = map[*dst];
            }
            Op::SigmoidMul { pre, h, dst } => {
                *pre = map[*pre];
                *h = map[*h];
                *dst = map[*dst];
            }
            Op::GruCombine { z, hc, h, dst } => {
                *z = map[*z];
                *hc = map[*hc];
                *h = map[*h];
                *dst = map[*dst];
            }
            Op::Store { src, .. } => *src = map[*src],
        }
    }

    /// Short kind label for the schedule table.
    fn kind(&self) -> &'static str {
        match self {
            Op::Zero { .. } => "zero",
            Op::Seed { .. } => "seed",
            Op::Concat2 { .. } => "concat2",
            Op::Gemm { .. } => "gemm",
            Op::BiasAdd { .. } => "bias_add",
            Op::AddAssign { .. } => "add_assign",
            Op::Gather { .. } => "gather",
            Op::Spmm { .. } => "spmm",
            Op::DenseMm { .. } => "dense_mm",
            Op::Epilogue { .. } => "diffuse_epi",
            Op::SigmoidMul { .. } => "sigmoid_mul",
            Op::GruCombine { .. } => "gru_combine",
            Op::Store { .. } => "store",
        }
    }
}

// ---------------------------------------------------------------------
// Builder: record-once walk of the eval forward
// ---------------------------------------------------------------------

struct Builder<'f> {
    ops: Vec<Op>,
    /// Virtual slot id → element count.
    sizes: Vec<usize>,
    dims: PlanDims,
    frozen: &'f FrozenPlan,
}

impl<'f> Builder<'f> {
    fn new(dims: PlanDims, frozen: &'f FrozenPlan) -> Self {
        Builder {
            ops: Vec::new(),
            sizes: Vec::new(),
            dims,
            frozen,
        }
    }

    fn fresh(&mut self, numel: usize) -> usize {
        self.sizes.push(numel);
        self.sizes.len() - 1
    }

    fn concat2(&mut self, a: Src, ca: usize, b: Src, cb: usize) -> usize {
        let dst = self.fresh(self.dims.rows() * (ca + cb));
        self.ops.push(Op::Concat2 { a, ca, b, cb, dst });
        dst
    }

    /// One normalized diffusion step on slot `x` of width `c`, with the
    /// sparse/dense and pooled/serial choices pinned from the frozen plan.
    fn diffuse(&mut self, x: usize, c: usize) -> usize {
        let d = self.dims;
        let gathered = if self.frozen.index().is_some() {
            let g = self.fresh(d.b * d.m * c);
            self.ops.push(Op::Gather { src: x, dst: g, c });
            g
        } else {
            x
        };
        let ax = self.fresh(d.rows() * c);
        // Only the full-sparse plan runs the eval product on the CSR;
        // the hybrid's CSR serves the training-time adjacency gradient
        // and its forward product stays on the (faster) dense GEMM.
        if self.frozen.products_sparse() {
            let pooled = sparse::spmm_pooled_hint(d.rows() * c, d.rows());
            self.ops.push(Op::Spmm {
                src: gathered,
                dst: ax,
                c,
                pooled,
            });
        } else {
            let pooled = matmul::gemm_pooled_hint(d.n, c);
            self.ops.push(Op::DenseMm {
                src: gathered,
                dst: ax,
                c,
                pooled,
            });
        }
        let out = self.fresh(d.rows() * c);
        self.ops.push(Op::Epilogue {
            ax,
            x,
            dst: out,
            c,
        });
        out
    }

    /// The learnable accumulation of Eq. 9 over a pre-built diffusion
    /// chain: `Σ_j W_j · chain[j]` (+ bias on `j = 0`).
    fn gconv_acc(&mut self, steps: &[Linear], chain: &[usize], k: usize) -> usize {
        let rows = self.dims.rows();
        let n_out = steps[0].out_dim();
        let pooled = matmul::gemm_pooled_hint(rows, n_out);
        let acc = self.fresh(rows * n_out);
        self.ops.push(Op::Gemm {
            src: chain[0],
            w: steps[0].weight(),
            dst: acc,
            k,
            n_out,
            pooled,
        });
        if let Some(bias) = steps[0].bias() {
            self.ops.push(Op::BiasAdd { dst: acc, bias });
        }
        for (step, &x) in steps.iter().zip(chain).skip(1) {
            let tmp = self.fresh(rows * n_out);
            self.ops.push(Op::Gemm {
                src: x,
                w: step.weight(),
                dst: tmp,
                k,
                n_out,
                pooled,
            });
            if let Some(bias) = step.bias() {
                self.ops.push(Op::BiasAdd { dst: tmp, bias });
            }
            self.ops.push(Op::AddAssign { dst: acc, src: tmp });
        }
        acc
    }

    /// One GRU cell step: input `x` (external or slot) of width `cx`,
    /// hidden slot `h`; returns the new hidden slot. The `[x ‖ h]`
    /// diffusion chain is shared by the reset and update gates.
    fn cell_step(&mut self, cell: &OneStepFastGConv, x: Src, cx: usize, h: usize) -> usize {
        let rows = self.dims.rows();
        let hidden = cell.hidden();
        let cat = cx + hidden;
        let xh = self.concat2(x, cx, Src::Slot(h), hidden);
        let depth_rz = cell.gconv_r().depth().max(cell.gconv_z().depth());
        let mut chain = vec![xh];
        for _ in 1..depth_rz {
            let last = *chain.last().expect("non-empty chain");
            chain.push(self.diffuse(last, cat));
        }
        let r_pre = self.gconv_acc(cell.gconv_r().steps(), &chain, cat);
        let z_pre = self.gconv_acc(cell.gconv_z().steps(), &chain, cat);
        let rh = self.fresh(rows * hidden);
        self.ops.push(Op::SigmoidMul {
            pre: r_pre,
            h,
            dst: rh,
        });
        let xrh = self.concat2(x, cx, Src::Slot(rh), hidden);
        let mut chain_h = vec![xrh];
        for _ in 1..cell.gconv_h().depth() {
            let last = *chain_h.last().expect("non-empty chain");
            chain_h.push(self.diffuse(last, cat));
        }
        let h_pre = self.gconv_acc(cell.gconv_h().steps(), &chain_h, cat);
        let h_new = self.fresh(rows * hidden);
        self.ops.push(Op::GruCombine {
            z: z_pre,
            hc: h_pre,
            h,
            dst: h_new,
        });
        h_new
    }
}

/// Resolves a concat operand to its backing rows: a buffer slot, or a
/// contiguous axis-0 step of the batch inputs read in place.
fn resolve_src<'s>(
    s: &Src,
    c: usize,
    slots: &'s [Vec<f32>],
    x_ext: &'s [f32],
    cov_ext: &'s [f32],
    rows: usize,
) -> &'s [f32] {
    match *s {
        Src::Slot(i) => &slots[i],
        Src::X(t) => {
            assert_eq!(c, INPUT_CHANNELS);
            &x_ext[t * rows * INPUT_CHANNELS..][..rows * c]
        }
        Src::Cov(t) => {
            assert_eq!(c, COV_CHANNELS);
            &cov_ext[t * rows * COV_CHANNELS..][..rows * c]
        }
    }
}

/// Maps the builder's virtual results onto a minimal physical arena via a
/// lifetime-based linear scan. A destination is always allocated *before*
/// the op's source slots are freed, so no op ever aliases its output with
/// an input. Returns the remapped ops and the physical slot sizes.
fn assign_slots(mut ops: Vec<Op>, sizes: &[usize]) -> (Vec<Op>, Vec<usize>) {
    let mut last_use = vec![0usize; sizes.len()];
    for (i, op) in ops.iter().enumerate() {
        op.for_each_slot(|v| last_use[v] = i);
    }
    let mut phys_of = vec![usize::MAX; sizes.len()];
    let mut phys_sizes: Vec<usize> = Vec::new();
    let mut free: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut touched: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(v) = op.def_slot() {
            phys_of[v] = match free.get_mut(&sizes[v]).and_then(Vec::pop) {
                Some(p) => p,
                None => {
                    phys_sizes.push(sizes[v]);
                    phys_sizes.len() - 1
                }
            };
        }
        touched.clear();
        op.for_each_slot(|v| touched.push(v));
        touched.sort_unstable();
        touched.dedup();
        for &v in &touched {
            if last_use[v] == i {
                free.entry(sizes[v]).or_default().push(phys_of[v]);
            }
        }
    }
    for op in &mut ops {
        op.remap(&phys_of);
    }
    (ops, phys_sizes)
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// A compiled eval forward: flat schedule, pre-sized buffer arena, and
/// the `FrozenPlan` the kernel choices were pinned from.
pub(crate) struct PlanExecutor {
    frozen: Rc<FrozenPlan>,
    dims: PlanDims,
    /// `(mean, std)` bit patterns the seed/store coefficients bake in.
    scaler_bits: (u32, u32),
    scaler: ZScore,
    ops: Vec<Op>,
    /// Physical buffer arena, acquired once at compile time.
    slots: Vec<Vec<f32>>,
    /// Number of virtual results the arena was compacted from.
    virtuals: usize,
    /// Cumulative per-op nanoseconds (tracked only while obs tracing is
    /// enabled) and completed runs.
    op_ns: Vec<u64>,
    execs: u64,
}

/// Compiles the GRU eval forward into a [`PlanExecutor`]. The caller
/// guarantees `frozen` matches the current parameters (it came from
/// [`Sagdfn::frozen_plan`](crate::model::Sagdfn::frozen_plan)).
pub(crate) fn compile(
    encoders: &[OneStepFastGConv],
    decoders: &[OneStepFastGConv],
    head: &Linear,
    frozen: &Rc<FrozenPlan>,
    dims: PlanDims,
    scaler: ZScore,
) -> PlanExecutor {
    let _sp = obs::span("plan_build");
    let rows = dims.rows();
    let mut b = Builder::new(dims, frozen);

    // Encoder over the history window; layer 0 reads batch.x directly.
    let mut enc_h: Vec<usize> = encoders
        .iter()
        .map(|cell| {
            let h0 = b.fresh(rows * cell.hidden());
            b.ops.push(Op::Zero { dst: h0 });
            h0
        })
        .collect();
    for t in 0..dims.h_len {
        let mut x = (Src::X(t), INPUT_CHANNELS);
        for (layer, cell) in encoders.iter().enumerate() {
            enc_h[layer] = b.cell_step(cell, x.0, x.1, enc_h[layer]);
            x = (Src::Slot(enc_h[layer]), cell.hidden());
        }
    }

    // Decoder: seeded with the scaled forecast-origin observation, then
    // feeds back its own predictions.
    let mut dec_h = enc_h;
    let mut value = b.fresh(rows);
    b.ops.push(Op::Seed { dst: value });
    for t in 0..dims.f_len {
        let x0 = b.concat2(Src::Slot(value), 1, Src::Cov(t), COV_CHANNELS);
        let mut x = (Src::Slot(x0), INPUT_CHANNELS);
        for (layer, cell) in decoders.iter().enumerate() {
            dec_h[layer] = b.cell_step(cell, x.0, x.1, dec_h[layer]);
            x = (Src::Slot(dec_h[layer]), cell.hidden());
        }
        let (Src::Slot(top), k) = x else {
            unreachable!("decoder has at least one layer")
        };
        let pred = b.fresh(rows * head.out_dim());
        b.ops.push(Op::Gemm {
            src: top,
            w: head.weight(),
            dst: pred,
            k,
            n_out: head.out_dim(),
            pooled: matmul::gemm_pooled_hint(rows, head.out_dim()),
        });
        if let Some(bias) = head.bias() {
            b.ops.push(Op::BiasAdd { dst: pred, bias });
        }
        b.ops.push(Op::Store { src: pred, t });
        value = pred;
    }

    let virtuals = b.sizes.len();
    let (ops, slot_sizes) = assign_slots(b.ops, &b.sizes);
    let slots = slot_sizes.iter().map(|&s| alloc::acquire_zeroed(s)).collect();
    obs::tally_plan_compile();
    let op_count = ops.len();
    PlanExecutor {
        frozen: Rc::clone(frozen),
        dims,
        scaler_bits: (scaler.mean.to_bits(), scaler.std.to_bits()),
        scaler,
        ops,
        slots,
        virtuals,
        op_ns: vec![0; op_count],
        execs: 0,
    }
}

impl PlanExecutor {
    /// Whether this schedule is still valid for the given frozen plan,
    /// dimensions and scaler. Pointer equality on the `FrozenPlan` is the
    /// staleness signal: the model drops it on `tick`/resample/refresh,
    /// so a surviving `Rc` proves the parameters haven't changed.
    pub(crate) fn matches(&self, frozen: &Rc<FrozenPlan>, dims: PlanDims, scaler: ZScore) -> bool {
        Rc::ptr_eq(&self.frozen, frozen)
            && self.dims == dims
            && self.scaler_bits == (scaler.mean.to_bits(), scaler.std.to_bits())
    }

    /// Whether this executor was compiled from the given frozen plan.
    pub(crate) fn same_frozen(&self, frozen: &Rc<FrozenPlan>) -> bool {
        Rc::ptr_eq(&self.frozen, frozen)
    }

    /// Runs the compiled schedule. `out` receives the raw-unit
    /// predictions, laid out `(f, B, N)`; it must be pre-sized. After the
    /// compile-time warmup this performs zero allocator acquires.
    pub(crate) fn run_into(&mut self, params: &Params, batch: &Batch, out: &mut [f32]) {
        let _sp = obs::span("plan_exec");
        let d = self.dims;
        let rows = d.rows();
        assert_eq!(out.len(), d.f_len * rows, "plan output buffer mismatch");
        let x_ext = batch.x.as_slice();
        let cov_ext = batch.future_cov.as_slice();
        assert_eq!(x_ext.len(), d.h_len * rows * INPUT_CHANNELS);
        assert_eq!(cov_ext.len(), d.f_len * rows * COV_CHANNELS);
        let seed_ext = batch.x_last_raw.as_slice();
        let index = self.frozen.index();
        let deg = self.frozen.deg_inv().as_slice();
        let weights = self.frozen.weights();
        let timing = obs::trace_mode() != obs::TraceMode::Off;
        let slots = &mut self.slots;
        for (op, ns) in self.ops.iter().zip(&mut self.op_ns) {
            let t0 = timing.then(Instant::now);
            match *op {
                Op::Zero { dst } => slots[dst].fill(0.0),
                Op::Seed { dst } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    simd::add_then_scale(
                        seed_ext,
                        -self.scaler.mean,
                        1.0 / self.scaler.std,
                        &mut dbuf,
                    );
                    slots[dst] = dbuf;
                }
                Op::Concat2 {
                    ref a,
                    ca,
                    ref b,
                    cb,
                    dst,
                } => {
                    // Taking the destination out of the arena makes any
                    // accidental src/dst aliasing a loud length panic.
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    let av = resolve_src(a, ca, slots, x_ext, cov_ext, rows);
                    let bv = resolve_src(b, cb, slots, x_ext, cov_ext, rows);
                    let stride = ca + cb;
                    for ((drow, arow), brow) in dbuf
                        .chunks_exact_mut(stride)
                        .zip(av.chunks_exact(ca))
                        .zip(bv.chunks_exact(cb))
                    {
                        drow[..ca].copy_from_slice(arow);
                        drow[ca..].copy_from_slice(brow);
                    }
                    slots[dst] = dbuf;
                }
                Op::Gemm {
                    src,
                    w,
                    dst,
                    k,
                    n_out,
                    pooled,
                } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    matmul::gemm_into(
                        &slots[src],
                        params.get(w).as_slice(),
                        &mut dbuf,
                        rows,
                        k,
                        n_out,
                        pooled,
                    );
                    slots[dst] = dbuf;
                }
                Op::BiasAdd { dst, bias } => {
                    simd::bias_add(&mut slots[dst], params.get(bias).as_slice());
                }
                Op::AddAssign { dst, src } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    let sv = &slots[src];
                    assert_eq!(dbuf.len(), sv.len());
                    for (dv, &s) in dbuf.iter_mut().zip(sv) {
                        *dv += s;
                    }
                    slots[dst] = dbuf;
                }
                Op::Gather { src, dst, c } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    let sv = &slots[src];
                    let index = index.expect("gather op requires a slim index");
                    for bb in 0..d.b {
                        let s_base = bb * d.n * c;
                        let d_base = bb * d.m * c;
                        for (i, &ix) in index.iter().enumerate() {
                            dbuf[d_base + i * c..d_base + (i + 1) * c]
                                .copy_from_slice(&sv[s_base + ix * c..s_base + (ix + 1) * c]);
                        }
                    }
                    slots[dst] = dbuf;
                }
                Op::Spmm {
                    src,
                    dst,
                    c,
                    pooled,
                } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    let csr = self.frozen.csr().expect("spmm op requires a CSR plan");
                    csr.spmm_into(&slots[src], d.b, c, &mut dbuf, pooled);
                    slots[dst] = dbuf;
                }
                Op::DenseMm {
                    src,
                    dst,
                    c,
                    pooled,
                } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    let sv = &slots[src];
                    let wv = weights.as_slice();
                    for (ob, xb) in dbuf
                        .chunks_exact_mut(d.n * c)
                        .zip(sv.chunks_exact(d.m * c))
                    {
                        matmul::gemm_into(wv, xb, ob, d.n, d.m, c, pooled);
                    }
                    slots[dst] = dbuf;
                }
                Op::Epilogue { ax, x, dst, c } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    simd::diffuse_epilogue(&slots[ax], &slots[x], deg, &mut dbuf, c);
                    slots[dst] = dbuf;
                }
                Op::SigmoidMul { pre, h, dst } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    simd::sigmoid_mul(&slots[pre], &slots[h], &mut dbuf);
                    slots[dst] = dbuf;
                }
                Op::GruCombine { z, hc, h, dst } => {
                    let mut dbuf = std::mem::take(&mut slots[dst]);
                    simd::gru_combine(&slots[z], &slots[hc], &slots[h], &mut dbuf);
                    slots[dst] = dbuf;
                }
                Op::Store { src, t } => {
                    simd::scale_then_add(
                        &slots[src],
                        self.scaler.std,
                        self.scaler.mean,
                        &mut out[t * rows..(t + 1) * rows],
                    );
                }
            }
            if let Some(t0) = t0 {
                *ns += t0.elapsed().as_nanos() as u64;
            }
        }
        self.execs += 1;
        obs::tally_plan_exec(self.ops.len() as u64);
    }

    /// Total bytes of the physical buffer arena.
    pub(crate) fn arena_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.len() * 4).sum()
    }

    /// Renders the compiled schedule as a table: a per-kind rollup
    /// followed by every op with its shape, kernel choice and slots.
    /// Mean per-op times appear once the executor has run under tracing.
    pub(crate) fn table(&self) -> String {
        let d = self.dims;
        let rows = d.rows();
        let mut out = format!(
            "compiled plan: {} ops, {} slots ({:.1} KiB arena, {} virtuals), dims b={} n={} m={} h={} f={} d={}\n",
            self.ops.len(),
            self.slots.len(),
            self.arena_bytes() as f64 / 1024.0,
            self.virtuals,
            d.b,
            d.n,
            d.m,
            d.h_len,
            d.f_len,
            d.hidden,
        );
        // Per-kind rollup.
        let mut kinds: Vec<(&'static str, u64, u64)> = Vec::new();
        for (op, &ns) in self.ops.iter().zip(&self.op_ns) {
            match kinds.iter_mut().find(|(k, _, _)| *k == op.kind()) {
                Some(row) => {
                    row.1 += 1;
                    row.2 += ns;
                }
                None => kinds.push((op.kind(), 1, ns)),
            }
        }
        kinds.sort_by_key(|row| std::cmp::Reverse(row.2));
        out.push_str(&format!(
            "{:<12} {:>6} {:>12} {:>10}\n",
            "op kind", "count", "total us", "us/run"
        ));
        for (kind, count, ns) in &kinds {
            let us = *ns as f64 / 1000.0;
            let per_run = if self.execs > 0 {
                us / self.execs as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{kind:<12} {count:>6} {us:>12.1} {per_run:>10.1}\n"
            ));
        }
        // Full schedule listing.
        out.push_str(&format!(
            "{:<5} {:<12} {:<26} {:<14} {}\n",
            "idx", "op", "shape", "kernel", "slots"
        ));
        for (i, (op, &ns)) in self.ops.iter().zip(&self.op_ns).enumerate() {
            let fmt_src = |s: &Src| match *s {
                Src::Slot(i) => format!("s{i}"),
                Src::X(t) => format!("x[{t}]"),
                Src::Cov(t) => format!("cov[{t}]"),
            };
            let (shape, kernel, slots): (String, String, String) = match *op {
                Op::Zero { dst } => (format!("({rows},?)"), "fill".into(), format!("s{dst}")),
                Op::Seed { dst } => (format!("({rows},1)"), "add_then_scale".into(), format!("s{dst}")),
                Op::Concat2 { ref a, ca, ref b, cb, dst } => (
                    format!("({rows},{ca}+{cb})"),
                    "row memcpy".into(),
                    format!("{}‖{} -> s{dst}", fmt_src(a), fmt_src(b)),
                ),
                Op::Gemm { src, dst, k, n_out, pooled, .. } => (
                    format!("({rows}x{k})·({k}x{n_out})"),
                    if pooled { "simd pooled" } else { "simd serial" }.into(),
                    format!("s{src} -> s{dst}"),
                ),
                Op::BiasAdd { dst, .. } => (format!("({rows},?)"), "bias_add".into(), format!("s{dst}")),
                Op::AddAssign { dst, src } => (format!("({rows},?)"), "add in place".into(), format!("s{dst} += s{src}")),
                Op::Gather { src, dst, c } => (
                    format!("({},{},{c})", d.b, d.m),
                    "index rows".into(),
                    format!("s{src} -> s{dst}"),
                ),
                Op::Spmm { src, dst, c, pooled } => (
                    format!("({},{},{c})", d.b, d.n),
                    if pooled { "csr pooled" } else { "csr serial" }.into(),
                    format!("s{src} -> s{dst}"),
                ),
                Op::DenseMm { src, dst, c, pooled } => (
                    format!("({},{},{c})", d.b, d.n),
                    if pooled { "gemm pooled" } else { "gemm serial" }.into(),
                    format!("s{src} -> s{dst}"),
                ),
                Op::Epilogue { ax, x, dst, c } => (
                    format!("({},{},{c})", d.b, d.n),
                    "fused simd".into(),
                    format!("s{ax},s{x} -> s{dst}"),
                ),
                Op::SigmoidMul { pre, h, dst } => (
                    format!("({rows},{})", d.hidden),
                    "fused simd".into(),
                    format!("s{pre},s{h} -> s{dst}"),
                ),
                Op::GruCombine { z, hc, h, dst } => (
                    format!("({rows},{})", d.hidden),
                    "fused simd".into(),
                    format!("s{z},s{hc},s{h} -> s{dst}"),
                ),
                Op::Store { src, t } => (
                    format!("({rows},1)"),
                    "scale_then_add".into(),
                    format!("s{src} -> out[{t}]"),
                ),
            };
            if self.execs > 0 {
                let us = ns as f64 / 1000.0 / self.execs as f64;
                out.push_str(&format!(
                    "{i:<5} {:<12} {shape:<26} {kernel:<14} {slots}  {us:.1}us\n",
                    op.kind()
                ));
            } else {
                out.push_str(&format!(
                    "{i:<5} {:<12} {shape:<26} {kernel:<14} {slots}\n",
                    op.kind()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_mode_roundtrip() {
        let prev = set_plan_mode(PlanMode::Off);
        assert_eq!(plan_mode(), PlanMode::Off);
        assert!(!plan_enabled());
        set_plan_mode(PlanMode::On);
        assert_eq!(plan_mode(), PlanMode::On);
        assert!(plan_enabled());
        set_plan_mode(PlanMode::Auto);
        assert!(plan_enabled());
        set_plan_mode(prev);
    }

    /// The linear-scan allocator must reuse dead slots and never alias an
    /// op's destination with one of its live sources.
    #[test]
    fn assign_slots_reuses_and_never_aliases() {
        // a = zero; b = sigmoid_mul(a, a)? Build a simple chain:
        // v0 = zero; v1 = f(v0); v2 = f(v1); v3 = f(v2) — all same size.
        let sizes = vec![64usize; 4];
        let ops = vec![
            Op::Zero { dst: 0 },
            Op::SigmoidMul { pre: 0, h: 0, dst: 1 },
            Op::SigmoidMul { pre: 1, h: 1, dst: 2 },
            Op::SigmoidMul { pre: 2, h: 2, dst: 3 },
        ];
        let (ops, phys) = assign_slots(ops, &sizes);
        // Four virtuals fit in two physical slots (ping-pong).
        assert_eq!(phys.len(), 2, "expected ping-pong reuse, got {phys:?}");
        for op in &ops {
            if let Op::SigmoidMul { pre, h, dst } = op {
                assert_ne!(pre, dst, "op aliases dst with a source");
                assert_ne!(h, dst, "op aliases dst with a source");
            }
        }
    }

    /// Distinct sizes never share a physical slot.
    #[test]
    fn assign_slots_respects_sizes() {
        let sizes = vec![64, 128, 64];
        let ops = vec![
            Op::Zero { dst: 0 },
            Op::Gather { src: 0, dst: 1, c: 1 },
            Op::Gather { src: 1, dst: 2, c: 1 },
        ];
        let (_, phys) = assign_slots(ops, &sizes);
        assert_eq!(phys.len(), 2);
        assert!(phys.contains(&64) && phys.contains(&128));
    }
}
