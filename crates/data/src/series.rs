//! The in-memory dataset container.

use sagdfn_tensor::Tensor;

/// Minutes per day/week, used to derive the time covariates the paper's
/// Definition 3 mentions (time of day, day of week).
const MIN_PER_DAY: u32 = 24 * 60;
const MIN_PER_WEEK: u32 = 7 * MIN_PER_DAY;

/// A complete multivariate time series: `T` steps × `N` nodes of scalar
/// observations recorded at a fixed interval, plus the wall-clock anchor
/// needed to compute time covariates.
#[derive(Clone, Debug)]
pub struct ForecastDataset {
    /// Dataset name for reporting (e.g. "metr-la-like").
    pub name: String,
    /// Observations, `(T, N)`.
    pub values: Tensor,
    /// Recording interval in minutes (5 for METR-LA-like, 60 for city-like).
    pub interval_min: u32,
    /// Minute-of-week of the first observation (0 = Monday 00:00).
    pub start_minute_of_week: u32,
}

impl ForecastDataset {
    /// Builds a dataset, checking the value tensor is `(T, N)`.
    pub fn new(
        name: impl Into<String>,
        values: Tensor,
        interval_min: u32,
        start_minute_of_week: u32,
    ) -> Self {
        assert_eq!(values.rank(), 2, "values must be (T, N)");
        assert!(interval_min > 0, "interval must be positive");
        ForecastDataset {
            name: name.into(),
            values,
            interval_min,
            start_minute_of_week: start_minute_of_week % MIN_PER_WEEK,
        }
    }

    /// Number of time steps `T`.
    pub fn steps(&self) -> usize {
        self.values.dim(0)
    }

    /// Number of nodes `N`.
    pub fn nodes(&self) -> usize {
        self.values.dim(1)
    }

    /// Time-of-day covariate at step `t`, in `[0, 1)`.
    pub fn time_of_day(&self, t: usize) -> f32 {
        let minute = (self.start_minute_of_week + t as u32 * self.interval_min) % MIN_PER_DAY;
        minute as f32 / MIN_PER_DAY as f32
    }

    /// Day-of-week covariate at step `t`, in `[0, 1)` (Monday = 0).
    pub fn day_of_week(&self, t: usize) -> f32 {
        let minute = (self.start_minute_of_week + t as u32 * self.interval_min) % MIN_PER_WEEK;
        (minute / MIN_PER_DAY) as f32 / 7.0
    }

    /// Restricts the dataset to the first `n` nodes — how the paper builds
    /// the London200 evaluation subset out of London2000 (Table IV).
    pub fn subset_nodes(&self, n: usize) -> ForecastDataset {
        assert!(n <= self.nodes(), "subset larger than dataset");
        let idx: Vec<usize> = (0..n).collect();
        ForecastDataset {
            name: format!("{}[0..{n}]", self.name),
            values: self.values.index_select(1, &idx),
            interval_min: self.interval_min,
            start_minute_of_week: self.start_minute_of_week,
        }
    }

    /// Restricts to a time range `[start, end)` of steps.
    pub fn subset_steps(&self, start: usize, end: usize) -> ForecastDataset {
        ForecastDataset {
            name: self.name.clone(),
            values: self.values.slice_axis(0, start, end),
            interval_min: self.interval_min,
            start_minute_of_week: (self.start_minute_of_week
                + (start as u32 * self.interval_min))
                % MIN_PER_WEEK,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(t: usize, n: usize, interval: u32) -> ForecastDataset {
        ForecastDataset::new(
            "test",
            Tensor::from_vec((0..t * n).map(|x| x as f32).collect(), [t, n]),
            interval,
            0,
        )
    }

    #[test]
    fn dims() {
        let d = ds(10, 3, 5);
        assert_eq!(d.steps(), 10);
        assert_eq!(d.nodes(), 3);
    }

    #[test]
    fn time_of_day_wraps_daily() {
        let d = ds(600, 1, 5); // 5-minute steps: 288 per day
        assert_eq!(d.time_of_day(0), 0.0);
        assert!((d.time_of_day(144) - 0.5).abs() < 1e-6); // noon
        assert_eq!(d.time_of_day(288), 0.0); // next midnight
    }

    #[test]
    fn day_of_week_advances() {
        let d = ds(24 * 8, 1, 60); // hourly steps
        assert_eq!(d.day_of_week(0), 0.0);
        assert!((d.day_of_week(24) - 1.0 / 7.0).abs() < 1e-6);
        assert_eq!(d.day_of_week(24 * 7), 0.0); // wraps after a week
    }

    #[test]
    fn start_offset_respected() {
        // Start on Tuesday 06:00 = (1 day + 6 h) * 60 min.
        let d = ForecastDataset::new("t", Tensor::zeros([10, 1]), 60, 30 * 60);
        assert!((d.time_of_day(0) - 0.25).abs() < 1e-6);
        assert!((d.day_of_week(0) - 1.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn subset_nodes_takes_prefix() {
        let d = ds(2, 4, 5);
        let s = d.subset_nodes(2);
        assert_eq!(s.nodes(), 2);
        assert_eq!(s.values.as_slice(), &[0., 1., 4., 5.]);
    }

    #[test]
    fn subset_steps_shifts_clock() {
        let d = ds(48, 1, 60);
        let s = d.subset_steps(24, 48);
        assert_eq!(s.steps(), 24);
        assert!((s.day_of_week(0) - 1.0 / 7.0).abs() < 1e-6);
    }
}
