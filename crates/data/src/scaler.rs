//! Global z-score normalization.
//!
//! Fit on the training portion only (standard METR-LA protocol) and shared
//! by all nodes; the inverse transform is affine with scalar coefficients,
//! which lets models un-normalize predictions inside the autodiff graph
//! with `scale` + `add_scalar`.

use sagdfn_tensor::Tensor;

/// `x ↦ (x − mean) / std` with scalars fit over an entire tensor.
#[derive(Clone, Copy, Debug)]
pub struct ZScore {
    /// Fitted mean.
    pub mean: f32,
    /// Fitted standard deviation (floored to avoid division by ~0).
    pub std: f32,
}

impl ZScore {
    /// Fits mean/std over all elements of `values`.
    pub fn fit(values: &Tensor) -> Self {
        let n = values.numel() as f64;
        let mean = values.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = values
            .as_slice()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        ZScore {
            mean: mean as f32,
            std: (var.sqrt() as f32).max(1e-6),
        }
    }

    /// Normalizes a tensor.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        x.add_scalar(-self.mean).scale(1.0 / self.std)
    }

    /// Un-normalizes a tensor.
    pub fn inverse(&self, x: &Tensor) -> Tensor {
        x.scale(self.std).add_scalar(self.mean)
    }

    /// Normalizes a scalar.
    pub fn transform_scalar(&self, v: f32) -> f32 {
        (v - self.mean) / self.std
    }

    /// Un-normalizes a scalar.
    pub fn inverse_scalar(&self, v: f32) -> f32 {
        v * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_moments() {
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [4]);
        let s = ZScore::fit(&x);
        assert!((s.mean - 5.0).abs() < 1e-6);
        assert!((s.std - 5.0f32.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn transform_produces_zero_mean_unit_std() {
        let x = Tensor::from_vec((0..100).map(|i| i as f32 * 3.0 + 7.0).collect(), [100]);
        let s = ZScore::fit(&x);
        let z = s.transform(&x);
        assert!(z.mean().abs() < 1e-4);
        let var = z.as_slice().iter().map(|v| v * v).sum::<f32>() / 100.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inverse_roundtrips() {
        let x = Tensor::from_vec(vec![1.0, 5.0, -3.0], [3]);
        let s = ZScore::fit(&x);
        let back = s.inverse(&s.transform(&x));
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!((s.inverse_scalar(s.transform_scalar(42.0)) - 42.0).abs() < 1e-4);
    }

    #[test]
    fn constant_input_does_not_divide_by_zero() {
        let x = Tensor::full([10], 3.0);
        let s = ZScore::fit(&x);
        let z = s.transform(&x);
        assert!(z.all_finite());
    }
}
