//! Sliding-window datasets and batch construction.
//!
//! Follows the paper's protocol: the raw sequence is split 70 / 10 / 20
//! into train / validation / test, the z-score scaler is fit on the train
//! portion only, and each sample is a pair *(past `h` steps, future `f`
//! steps)*. Batches are materialized as
//!
//! * `x`: `(h, B, N, C)` — scaled value plus the two time covariates
//!   (`C = 3`), laid out time-major so recurrent models slice one step at
//!   a time;
//! * `y`: `(f, B, N)` — *raw* target values (metrics and the paper's L1
//!   loss are computed in the original units);
//! * `x_last_raw`: `(B, N)` — the observation at the forecast origin, the
//!   decoder's first input (Algorithm 2 line 10);
//! * `future_cov`: `(f, B, N, 2)` — known covariates of the target steps,
//!   fed to the decoder alongside its own predictions.

use crate::scaler::ZScore;
use crate::series::ForecastDataset;
use sagdfn_tensor::{Rng64, Tensor};
use std::sync::Arc;

/// Windowing configuration.
#[derive(Clone, Copy, Debug)]
pub struct SplitSpec {
    /// History length `h` (model input steps).
    pub h: usize,
    /// Forecast horizon `f` (output steps).
    pub f: usize,
    /// Fraction of steps assigned to training (paper: 0.7).
    pub train_frac: f32,
    /// Fraction assigned to validation (paper: 0.1); the rest is test.
    pub val_frac: f32,
}

impl SplitSpec {
    /// The paper's 70/10/20 split with the given window lengths.
    pub fn paper(h: usize, f: usize) -> Self {
        SplitSpec {
            h,
            f,
            train_frac: 0.7,
            val_frac: 0.1,
        }
    }
}

/// Train / validation / test windowed views over one dataset, sharing a
/// scaler fit on the training portion.
pub struct ThreeWaySplit {
    /// Training windows.
    pub train: SlidingWindows,
    /// Validation windows.
    pub val: SlidingWindows,
    /// Test windows.
    pub test: SlidingWindows,
    /// Scaler fit on the train value range.
    pub scaler: ZScore,
}

impl ThreeWaySplit {
    /// Splits `data` per `spec`.
    ///
    /// # Panics
    /// Panics if any split is too short to hold a single window.
    pub fn new(data: ForecastDataset, spec: SplitSpec) -> Self {
        let t = data.steps();
        let window = spec.h + spec.f;
        assert!(
            t > window + 2,
            "dataset too short ({t} steps) for windows of {window}"
        );
        // Standard METR-LA protocol: enumerate every window start, then
        // split the *windows* 70/10/20 chronologically.
        let starts: Vec<usize> = (0..=t - window).collect();
        let n_windows = starts.len();
        let train_n = ((n_windows as f32 * spec.train_frac) as usize).max(1);
        let val_n = ((n_windows as f32 * spec.val_frac) as usize).max(1);
        assert!(
            train_n + val_n < n_windows,
            "dataset too short ({t} steps) for a 3-way split of {n_windows} windows"
        );
        // Scaler sees only values train windows can observe.
        let train_horizon = starts[train_n - 1] + window;
        let scaler = ZScore::fit(&data.values.slice_axis(0, 0, train_horizon));
        let data = Arc::new(data);
        let make = |range: &[usize]| SlidingWindows {
            data: Arc::clone(&data),
            scaler,
            h: spec.h,
            f: spec.f,
            starts: range.to_vec(),
        };
        ThreeWaySplit {
            train: make(&starts[..train_n]),
            val: make(&starts[train_n..train_n + val_n]),
            test: make(&starts[train_n + val_n..]),
            scaler,
        }
    }
}

/// One split's set of sliding windows over the shared dataset.
pub struct SlidingWindows {
    data: Arc<ForecastDataset>,
    scaler: ZScore,
    h: usize,
    f: usize,
    starts: Vec<usize>,
}

/// A materialized mini-batch (see module docs for layout).
pub struct Batch {
    /// Scaled inputs with covariates, `(h, B, N, 3)`.
    pub x: Tensor,
    /// Raw targets, `(f, B, N)`.
    pub y: Tensor,
    /// Raw observation at the forecast origin, `(B, N)`.
    pub x_last_raw: Tensor,
    /// Covariates of the target steps, `(f, B, N, 2)`.
    pub future_cov: Tensor,
}

impl SlidingWindows {
    /// Number of available windows.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when the split holds no complete window.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// History length `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Horizon `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of nodes `N`.
    pub fn nodes(&self) -> usize {
        self.data.nodes()
    }

    /// The shared scaler.
    pub fn scaler(&self) -> ZScore {
        self.scaler
    }

    /// Splits window ids into batches of `batch_size` (last batch may be
    /// short), optionally shuffling with `rng`.
    pub fn batch_ids(&self, batch_size: usize, rng: Option<&mut Rng64>) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut ids: Vec<usize> = (0..self.starts.len()).collect();
        if let Some(rng) = rng {
            rng.shuffle(&mut ids);
        }
        ids.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Materializes the batch for the given window ids.
    pub fn make_batch(&self, window_ids: &[usize]) -> Batch {
        assert!(!window_ids.is_empty(), "empty batch");
        let b = window_ids.len();
        let n = self.data.nodes();
        let (h, f) = (self.h, self.f);
        let vals = self.data.values.as_slice();

        // Recycled buffers: the loops below write every element of all four.
        let mut x = sagdfn_tensor::alloc::acquire(h * b * n * 3);
        let mut y = sagdfn_tensor::alloc::acquire(f * b * n);
        let mut x_last = sagdfn_tensor::alloc::acquire(b * n);
        let mut fut = sagdfn_tensor::alloc::acquire(f * b * n * 2);

        for (bi, &wid) in window_ids.iter().enumerate() {
            let s = self.starts[wid];
            for t in 0..h {
                let step = s + t;
                let tod = self.data.time_of_day(step);
                let dow = self.data.day_of_week(step);
                for node in 0..n {
                    let base = ((t * b + bi) * n + node) * 3;
                    x[base] = self.scaler.transform_scalar(vals[step * n + node]);
                    x[base + 1] = tod;
                    x[base + 2] = dow;
                }
            }
            for node in 0..n {
                x_last[bi * n + node] = vals[(s + h - 1) * n + node];
            }
            for t in 0..f {
                let step = s + h + t;
                let tod = self.data.time_of_day(step);
                let dow = self.data.day_of_week(step);
                for node in 0..n {
                    y[(t * b + bi) * n + node] = vals[step * n + node];
                    let base = ((t * b + bi) * n + node) * 2;
                    fut[base] = tod;
                    fut[base + 1] = dow;
                }
            }
        }
        Batch {
            x: Tensor::from_vec(x, [h, b, n, 3]),
            y: Tensor::from_vec(y, [f, b, n]),
            x_last_raw: Tensor::from_vec(x_last, [b, n]),
            future_cov: Tensor::from_vec(fut, [f, b, n, 2]),
        }
    }

    /// Convenience: the full split as one batch (for small evaluations).
    pub fn full_batch(&self) -> Batch {
        let ids: Vec<usize> = (0..self.len()).collect();
        self.make_batch(&ids)
    }

    /// The underlying dataset (classical models fit on the raw series).
    pub fn dataset(&self) -> &ForecastDataset {
        &self.data
    }

    /// Window start steps, in order.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Raw (unscaled) input and target of one window:
    /// `((h, N), (f, N))`.
    pub fn raw_window(&self, id: usize) -> (Tensor, Tensor) {
        let s = self.starts[id];
        (
            self.data.values.slice_axis(0, s, s + self.h),
            self.data
                .values
                .slice_axis(0, s + self.h, s + self.h + self.f),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(t: usize, n: usize) -> ForecastDataset {
        ForecastDataset::new(
            "test",
            Tensor::from_vec((0..t * n).map(|x| x as f32).collect(), [t, n]),
            5,
            0,
        )
    }

    #[test]
    fn split_counts_add_up() {
        let split = ThreeWaySplit::new(dataset(100, 2), SplitSpec::paper(6, 6));
        // train: starts 0..=58 (70-12), val: 70..=76-? etc. Just check
        // no overlap in *target* coverage and non-empty splits.
        assert!(!split.train.is_empty());
        assert!(!split.val.is_empty());
        assert!(!split.test.is_empty());
        assert!(split.train.len() > split.test.len());
    }

    #[test]
    fn scaler_fit_on_train_only() {
        // Values grow linearly, so a scaler fit on all data would have a
        // larger mean than one fit on the first 70%.
        let split = ThreeWaySplit::new(dataset(100, 1), SplitSpec::paper(4, 4));
        let all = ZScore::fit(&dataset(100, 1).values);
        assert!(split.scaler.mean < all.mean);
    }

    #[test]
    fn batch_shapes() {
        let split = ThreeWaySplit::new(dataset(200, 3), SplitSpec::paper(12, 12));
        let batch = split.train.make_batch(&[0, 1, 5]);
        assert_eq!(batch.x.dims(), &[12, 3, 3, 3]);
        assert_eq!(batch.y.dims(), &[12, 3, 3]);
        assert_eq!(batch.x_last_raw.dims(), &[3, 3]);
        assert_eq!(batch.future_cov.dims(), &[12, 3, 3, 2]);
    }

    #[test]
    fn batch_values_align_with_source() {
        let data = dataset(50, 2);
        let split = ThreeWaySplit::new(data.clone(), SplitSpec::paper(3, 2));
        let batch = split.train.make_batch(&[0]);
        // Window 0: input steps 0,1,2; target steps 3,4.
        // y[t=0, b=0, node=1] = value at step 3, node 1 = 3*2+1 = 7.
        assert_eq!(batch.y.at(&[0, 0, 1]), 7.0);
        assert_eq!(batch.y.at(&[1, 0, 0]), 8.0);
        // x_last_raw = raw value at step 2.
        assert_eq!(batch.x_last_raw.at(&[0, 0]), 4.0);
        // x channel 0 is the scaled value at that step.
        let expect = split.scaler.transform_scalar(4.0);
        assert!((batch.x.at(&[2, 0, 0, 0]) - expect).abs() < 1e-6);
    }

    #[test]
    fn covariates_populated() {
        let split = ThreeWaySplit::new(dataset(300, 1), SplitSpec::paper(4, 4));
        let batch = split.train.make_batch(&[10]);
        // time-of-day strictly increases within a same-day window.
        let tod0 = batch.x.at(&[0, 0, 0, 1]);
        let tod1 = batch.x.at(&[1, 0, 0, 1]);
        assert!(tod1 > tod0);
        // future covariates exist and are in [0, 1).
        let fc = batch.future_cov.at(&[0, 0, 0, 0]);
        assert!((0.0..1.0).contains(&fc));
    }

    #[test]
    fn batch_ids_cover_all_windows() {
        let split = ThreeWaySplit::new(dataset(100, 1), SplitSpec::paper(4, 4));
        let batches = split.train.batch_ids(7, None);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, split.train.len());
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..split.train.len()).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_batches_are_permutation() {
        let split = ThreeWaySplit::new(dataset(100, 1), SplitSpec::paper(4, 4));
        let mut rng = Rng64::new(1);
        let batches = split.train.batch_ids(5, Some(&mut rng));
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..split.train.len()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "dataset too short")]
    fn too_short_dataset_panics() {
        ThreeWaySplit::new(dataset(10, 1), SplitSpec::paper(12, 12));
    }
}
