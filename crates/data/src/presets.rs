//! Named dataset presets matching the paper's Table II, at three scales.
//!
//! | Preset | Paper dataset | N (paper scale) | interval |
//! |---|---|---|---|
//! | [`metr_la_like`] | METR-LA | 207 | 5 min |
//! | [`city2000_like`] (seed 0) | London2000 | 2000 | 60 min |
//! | [`city2000_like`] (seed 1) | NewYork2000 | 2000 | 60 min |
//! | [`carpark_like`] | CARPARK1918 | 1918 | 5 min |
//!
//! `tiny` and `small` shrink N and T so CPU training of the full baseline
//! roster stays tractable; the generators and models are identical across
//! scales, only the sizes change (see DESIGN.md §2, *Substitutions*).

use crate::synth::{CarparkConfig, CarparkData, TrafficConfig, TrafficData};

/// Run-size profile for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-model runs (CI, examples): tens of nodes, a few days.
    Tiny,
    /// Minutes-per-model runs: ~60-120 nodes, a week-plus of data.
    Small,
    /// The paper's actual dimensions (hours per model on CPU).
    Paper,
}

impl Scale {
    /// Parses `tiny` / `small` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// METR-LA-like: 5-minute traffic speeds over a k-NN sensor graph.
pub fn metr_la_like(scale: Scale) -> TrafficData {
    let (nodes, days) = match scale {
        Scale::Tiny => (24, 4),
        Scale::Small => (60, 8),
        Scale::Paper => (207, 122), // 1 Mar – 30 Jun 2012
    };
    TrafficConfig {
        nodes,
        steps: 288 * days,
        interval_min: 5,
        seed: 1204,
        ..TrafficConfig::default()
    }
    .generate("metr-la-like")
}

/// London2000 / NewYork2000-like: hourly traffic speeds, 2000 segments at
/// paper scale. `city_seed` 0 = "London", 1 = "NewYork" (different latent
/// topology and dynamics).
pub fn city2000_like(scale: Scale, city_seed: u64) -> TrafficData {
    let (nodes, days) = match scale {
        Scale::Tiny => (48, 30),
        Scale::Small => (120, 45),
        Scale::Paper => (2000, 91), // 1 Jan – 31 Mar 2020
    };
    let name = match city_seed {
        0 => "london2000-like",
        1 => "newyork2000-like",
        _ => "city2000-like",
    };
    TrafficConfig {
        nodes,
        steps: 24 * days,
        interval_min: 60,
        knn: 8,
        // City arterials: lower speeds, stronger rush response than METR-LA.
        speed_lo: 15.0,
        speed_hi: 35.0,
        rush_strength: 0.45,
        noise_scale: 1.0,
        missing_frac: 0.0,
        incident_rate: 2.0,
        seed: 9000 + city_seed,
    }
    .generate(name)
}

/// CARPARK1918-like: 5-minute carpark availability counts.
pub fn carpark_like(scale: Scale) -> CarparkData {
    let (nodes, days) = match scale {
        Scale::Tiny => (32, 4),
        Scale::Small => (64, 8),
        Scale::Paper => (1918, 61), // 1 May – 30 Jun 2021
    };
    CarparkConfig {
        nodes,
        steps: 288 * days,
        interval_min: 5,
        seed: 1918,
        ..CarparkConfig::default()
    }
    .generate("carpark1918-like")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn tiny_presets_have_expected_shapes() {
        let m = metr_la_like(Scale::Tiny);
        assert_eq!(m.dataset.nodes(), 24);
        assert_eq!(m.dataset.steps(), 288 * 4);
        assert_eq!(m.dataset.interval_min, 5);

        let c = city2000_like(Scale::Tiny, 0);
        assert_eq!(c.dataset.nodes(), 48);
        assert_eq!(c.dataset.interval_min, 60);

        let p = carpark_like(Scale::Tiny);
        assert_eq!(p.dataset.nodes(), 32);
    }

    #[test]
    fn cities_differ_by_seed() {
        let london = city2000_like(Scale::Tiny, 0);
        let newyork = city2000_like(Scale::Tiny, 1);
        assert_ne!(london.dataset.values, newyork.dataset.values);
        assert_eq!(london.dataset.name, "london2000-like");
        assert_eq!(newyork.dataset.name, "newyork2000-like");
    }

    #[test]
    fn city_speeds_in_urban_range() {
        let c = city2000_like(Scale::Tiny, 0);
        let mean = c.dataset.values.mean();
        assert!(
            (10.0..40.0).contains(&mean),
            "urban mean speed {mean} out of range"
        );
    }
}
