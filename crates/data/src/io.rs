//! Dataset import/export.
//!
//! CSV layout: one header row `node_0,node_1,...`, then one row per time
//! step. Metadata (interval, clock anchor) travels in a `# key=value`
//! comment preamble so a file round-trips losslessly. This is how a user
//! brings the *real* METR-LA (or any `(T, N)` panel) into the pipeline in
//! place of the synthetic generators.

use crate::series::ForecastDataset;
use sagdfn_tensor::Tensor;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from dataset IO.
#[derive(Debug)]
pub enum DataIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem with the CSV contents.
    Format(String),
}

impl std::fmt::Display for DataIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataIoError::Io(e) => write!(f, "dataset io: {e}"),
            DataIoError::Format(m) => write!(f, "dataset format: {m}"),
        }
    }
}

impl std::error::Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e)
    }
}

/// Writes a dataset as commented-header CSV.
pub fn write_csv(dataset: &ForecastDataset, mut w: impl Write) -> Result<(), DataIoError> {
    writeln!(w, "# name={}", dataset.name)?;
    writeln!(w, "# interval_min={}", dataset.interval_min)?;
    writeln!(w, "# start_minute_of_week={}", dataset.start_minute_of_week)?;
    let n = dataset.nodes();
    let header: Vec<String> = (0..n).map(|i| format!("node_{i}")).collect();
    writeln!(w, "{}", header.join(","))?;
    let vals = dataset.values.as_slice();
    for t in 0..dataset.steps() {
        let row: Vec<String> = (0..n).map(|i| format!("{}", vals[t * n + i])).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_csv`] (or any headered CSV panel;
/// missing metadata falls back to name "imported", 5-minute interval,
/// Monday-midnight anchor).
pub fn read_csv(r: impl Read) -> Result<ForecastDataset, DataIoError> {
    let reader = BufReader::new(r);
    let mut name = "imported".to_string();
    let mut interval_min = 5u32;
    let mut start_minute = 0u32;
    let mut n: Option<usize> = None;
    let mut values: Vec<f32> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            if let Some((k, v)) = meta.trim().split_once('=') {
                match k.trim() {
                    "name" => name = v.trim().to_string(),
                    "interval_min" => {
                        interval_min = v.trim().parse().map_err(|_| {
                            DataIoError::Format(format!("bad interval_min '{v}'"))
                        })?
                    }
                    "start_minute_of_week" => {
                        start_minute = v.trim().parse().map_err(|_| {
                            DataIoError::Format(format!("bad start_minute_of_week '{v}'"))
                        })?
                    }
                    _ => {} // unknown metadata is fine
                }
            }
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        match n {
            None => {
                // Header row: only consumed for the column count.
                if cells.is_empty() {
                    return Err(DataIoError::Format("empty header".into()));
                }
                n = Some(cells.len());
            }
            Some(n) => {
                if cells.len() != n {
                    return Err(DataIoError::Format(format!(
                        "line {}: expected {n} cells, got {}",
                        lineno + 1,
                        cells.len()
                    )));
                }
                for c in cells {
                    values.push(c.trim().parse().map_err(|_| {
                        DataIoError::Format(format!("line {}: bad number '{c}'", lineno + 1))
                    })?);
                }
            }
        }
    }
    let n = n.ok_or_else(|| DataIoError::Format("no header row".into()))?;
    if values.is_empty() {
        return Err(DataIoError::Format("no data rows".into()));
    }
    let t = values.len() / n;
    Ok(ForecastDataset::new(
        name,
        Tensor::from_vec(values, [t, n]),
        interval_min,
        start_minute,
    ))
}

/// Convenience: write to a filesystem path.
pub fn write_csv_path(
    dataset: &ForecastDataset,
    path: impl AsRef<std::path::Path>,
) -> Result<(), DataIoError> {
    write_csv(dataset, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Convenience: read from a filesystem path.
pub fn read_csv_path(path: impl AsRef<std::path::Path>) -> Result<ForecastDataset, DataIoError> {
    read_csv(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForecastDataset {
        ForecastDataset::new(
            "roundtrip",
            Tensor::from_vec(vec![1.5, 2.0, 3.25, -4.0, 0.0, 7.125], [3, 2]),
            15,
            120,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.name, "roundtrip");
        assert_eq!(back.interval_min, 15);
        assert_eq!(back.start_minute_of_week, 120);
        assert_eq!(back.values, d.values);
    }

    #[test]
    fn reads_plain_csv_without_metadata() {
        let csv = "a,b\n1,2\n3,4\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.nodes(), 2);
        assert_eq!(d.steps(), 2);
        assert_eq!(d.interval_min, 5);
        assert_eq!(d.values.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataIoError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let csv = "a\n1\nfoo\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty_file() {
        assert!(read_csv(b"".as_slice()).is_err());
        assert!(read_csv(b"# name=x\n".as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip_through_pipeline() {
        // Import must feed the windowing pipeline untouched.
        let d = crate::presets::metr_la_like(crate::presets::Scale::Tiny).dataset;
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        let split =
            crate::window::ThreeWaySplit::new(back, crate::window::SplitSpec::paper(12, 12));
        assert!(split.train.len() > 100);
    }
}
