//! Evaluation metrics: masked MAE, RMSE, MAPE.
//!
//! The paper reports all three per forecasting horizon (3, 6, 12). We use
//! the standard METR-LA masking convention: entries whose ground truth is
//! (near) zero are excluded from every metric, since zeros encode missing
//! sensor readings in the traffic datasets and MAPE is undefined there.

use sagdfn_tensor::Tensor;

/// Ground-truth magnitudes at or below this count as "missing".
const MASK_EPS: f32 = 1e-4;

/// The paper's three error metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Mean absolute error.
    pub mae: f32,
    /// Root mean squared error.
    pub rmse: f32,
    /// Mean absolute percentage error, as a fraction (0.08 = 8 %).
    pub mape: f32,
}

impl Metrics {
    /// Computes masked metrics between flat prediction/target slices.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn compute(pred: &[f32], target: &[f32]) -> Metrics {
        assert_eq!(pred.len(), target.len(), "metric length mismatch");
        let mut n = 0usize;
        let (mut abs, mut sq, mut pct) = (0.0f64, 0.0f64, 0.0f64);
        for (&p, &t) in pred.iter().zip(target) {
            if t.abs() <= MASK_EPS {
                continue;
            }
            let e = (p - t) as f64;
            abs += e.abs();
            sq += e * e;
            pct += (e / t as f64).abs();
            n += 1;
        }
        if n == 0 {
            return Metrics {
                mae: 0.0,
                rmse: 0.0,
                mape: 0.0,
            };
        }
        Metrics {
            mae: (abs / n as f64) as f32,
            rmse: ((sq / n as f64).sqrt()) as f32,
            mape: (pct / n as f64) as f32,
        }
    }

    /// Formats like the paper's tables: `MAE RMSE MAPE%`.
    pub fn row(&self) -> String {
        format!("{:6.2} {:6.2} {:5.1}%", self.mae, self.rmse, self.mape * 100.0)
    }
}

/// Per-horizon metrics for `(f, B, N)` prediction/target tensors: returns
/// one [`Metrics`] per horizon step (so index 2 is "Horizon 3" in the
/// paper's 1-based convention).
pub fn horizon_metrics(pred: &Tensor, target: &Tensor) -> Vec<Metrics> {
    assert_eq!(
        pred.dims(),
        target.dims(),
        "prediction {:?} vs target {:?}",
        pred.dims(),
        target.dims()
    );
    assert_eq!(pred.rank(), 3, "expected (f, B, N)");
    let f = pred.dim(0);
    let per = pred.numel() / f;
    (0..f)
        .map(|t| {
            Metrics::compute(
                &pred.as_slice()[t * per..(t + 1) * per],
                &target.as_slice()[t * per..(t + 1) * per],
            )
        })
        .collect()
}

/// Per-node metrics over all horizons of `(f, B, N)` tensors: one
/// [`Metrics`] per node. Used to locate which sensors a model struggles
/// with (e.g. Figure 4's sensor picks).
pub fn node_metrics(pred: &Tensor, target: &Tensor) -> Vec<Metrics> {
    assert_eq!(pred.dims(), target.dims(), "shape mismatch");
    assert_eq!(pred.rank(), 3, "expected (f, B, N)");
    let (f, b, n) = (pred.dim(0), pred.dim(1), pred.dim(2));
    let (p, t) = (pred.as_slice(), target.as_slice());
    (0..n)
        .map(|node| {
            let mut ps = Vec::with_capacity(f * b);
            let mut ts = Vec::with_capacity(f * b);
            for i in 0..f * b {
                ps.push(p[i * n + node]);
                ts.push(t[i * n + node]);
            }
            Metrics::compute(&ps, &ts)
        })
        .collect()
}

/// Averages metrics over all horizons (used for validation selection).
pub fn average(metrics: &[Metrics]) -> Metrics {
    let n = metrics.len().max(1) as f32;
    Metrics {
        mae: metrics.iter().map(|m| m.mae).sum::<f32>() / n,
        rmse: metrics.iter().map(|m| m.rmse).sum::<f32>() / n,
        mape: metrics.iter().map(|m| m.mape).sum::<f32>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let m = Metrics::compute(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mape, 0.0);
    }

    #[test]
    fn known_errors() {
        // errors: +1, -1 on targets 2, 4.
        let m = Metrics::compute(&[3.0, 3.0], &[2.0, 4.0]);
        assert!((m.mae - 1.0).abs() < 1e-6);
        assert!((m.rmse - 1.0).abs() < 1e-6);
        assert!((m.mape - 0.375).abs() < 1e-6); // (1/2 + 1/4) / 2
    }

    #[test]
    fn rmse_at_least_mae() {
        let m = Metrics::compute(&[0.0, 10.0], &[1.0, 1.0]);
        assert!(m.rmse >= m.mae);
    }

    #[test]
    fn zero_targets_masked_out() {
        // Second entry has zero ground truth: ignored entirely.
        let m = Metrics::compute(&[3.0, 999.0], &[2.0, 0.0]);
        assert!((m.mae - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_masked_returns_zero() {
        let m = Metrics::compute(&[5.0], &[0.0]);
        assert_eq!(m.mae, 0.0);
    }

    #[test]
    fn horizon_metrics_split_by_step() {
        // f=2, B=1, N=2. Horizon 0 perfect, horizon 1 off by 2.
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], [2, 1, 2]);
        let target = Tensor::from_vec(vec![1.0, 2.0, 1.0, 3.0], [2, 1, 2]);
        let ms = horizon_metrics(&pred, &target);
        assert_eq!(ms[0].mae, 0.0);
        assert!((ms[1].mae - 2.0).abs() < 1e-6);
    }

    #[test]
    fn node_metrics_isolate_bad_sensor() {
        // Node 0 perfect, node 1 off by 3 everywhere.
        let pred = Tensor::from_vec(vec![1.0, 5.0, 2.0, 7.0], [2, 1, 2]);
        let target = Tensor::from_vec(vec![1.0, 2.0, 2.0, 4.0], [2, 1, 2]);
        let per_node = node_metrics(&pred, &target);
        assert_eq!(per_node.len(), 2);
        assert_eq!(per_node[0].mae, 0.0);
        assert!((per_node[1].mae - 3.0).abs() < 1e-6);
    }

    #[test]
    fn average_combines() {
        let a = Metrics {
            mae: 1.0,
            rmse: 2.0,
            mape: 0.1,
        };
        let b = Metrics {
            mae: 3.0,
            rmse: 4.0,
            mape: 0.3,
        };
        let avg = average(&[a, b]);
        assert_eq!(avg.mae, 2.0);
        assert_eq!(avg.rmse, 3.0);
        assert!((avg.mape - 0.2).abs() < 1e-6);
    }

    #[test]
    fn row_format() {
        let m = Metrics {
            mae: 2.56,
            rmse: 5.0,
            mape: 0.065,
        };
        let row = m.row();
        assert!(row.contains("2.56"));
        assert!(row.contains("6.5%"));
    }
}
