//! Carpark-availability dataset generator (CARPARK1918-like).
//!
//! Each carpark has an integer capacity and a *type* (office, residential,
//! retail) drawn with spatial correlation over a latent city graph —
//! neighboring carparks serve the same district and fill together. The
//! observable is the number of **available** lots:
//!
//! ```text
//! avail_i(t) = capacity_i − occ_i(t),
//! occ_i(t)   = capacity_i · profile(type_i, t) + AR-noise, clamped to [0, cap]
//! ```
//!
//! Office lots fill on weekday mornings and drain at night; residential
//! lots are the inverse; retail peaks on evenings/weekends. This creates
//! the sharp bounded dynamics that make CARPARK1918 the hardest dataset in
//! the paper (largest MAE scale in Table V).

use crate::series::ForecastDataset;
use sagdfn_graph::{knn_geometric, GeoGraph};
use sagdfn_tensor::{Rng64, Tensor};

/// Carpark category, decided by a spatially-smoothed latent field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkType {
    /// Fills during working hours on weekdays.
    Office,
    /// Fills overnight; empties during working hours.
    Residential,
    /// Fills evenings and weekends.
    Retail,
}

/// Configuration for [`CarparkConfig::generate`].
#[derive(Clone, Debug)]
pub struct CarparkConfig {
    /// Number of carparks `N`.
    pub nodes: usize,
    /// Number of time steps `T`.
    pub steps: usize,
    /// Recording interval in minutes (paper: 5).
    pub interval_min: u32,
    /// Latent-graph neighbors per node.
    pub knn: usize,
    /// Capacity range (inclusive bounds, lots).
    pub capacity_lo: u32,
    /// Upper capacity bound.
    pub capacity_hi: u32,
    /// AR(1) noise scale as a fraction of capacity.
    pub noise_frac: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CarparkConfig {
    fn default() -> Self {
        CarparkConfig {
            nodes: 1918,
            steps: 288 * 14,
            interval_min: 5,
            knn: 6,
            capacity_lo: 80,
            capacity_hi: 600,
            noise_frac: 0.03,
            seed: 7,
        }
    }
}

/// Generated dataset plus latent graph and node metadata.
pub struct CarparkData {
    /// The `(T, N)` available-lots series (non-negative integers as f32).
    pub dataset: ForecastDataset,
    /// Latent district graph.
    pub graph: GeoGraph,
    /// Capacity per carpark.
    pub capacities: Vec<u32>,
    /// Category per carpark.
    pub types: Vec<ParkType>,
}

/// Target occupancy fraction for a park type at wall-clock `hour`
/// (0.0–24.0) on a weekday/weekend.
fn occupancy_profile(ty: ParkType, hour: f32, weekend: bool) -> f32 {
    let bump = |center: f32, width: f32| (-(hour - center).powi(2) / width).exp();
    match ty {
        ParkType::Office => {
            let work = bump(13.0, 28.0); // broad 9-17 plateau
            if weekend {
                0.15 + 0.1 * work
            } else {
                0.15 + 0.75 * work
            }
        }
        ParkType::Residential => {
            // High at night: complement of a daytime bump.
            let day = bump(13.5, 30.0);
            0.9 - 0.55 * day * if weekend { 0.4 } else { 1.0 }
        }
        ParkType::Retail => {
            let evening = bump(19.0, 12.0);
            let midday = bump(13.0, 10.0);
            let weekend_boost = if weekend { 0.3 } else { 0.0 };
            0.2 + 0.45 * evening + (0.2 + weekend_boost) * midday
        }
    }
}

impl CarparkConfig {
    /// Synthesizes the dataset deterministically from the seed.
    pub fn generate(&self, name: &str) -> CarparkData {
        assert!(self.nodes > self.knn, "need nodes > knn");
        let mut rng = Rng64::new(self.seed);
        let graph = knn_geometric(self.nodes, self.knn, &mut rng);
        let n = self.nodes;

        // District field: diffuse a random scalar and threshold into types,
        // so neighboring carparks share a category.
        let raw = Tensor::rand_normal([n, 1], 0.0, 1.0, &mut rng);
        let field = graph.adj.diffuse(&raw, 4);
        let types: Vec<ParkType> = field
            .as_slice()
            .iter()
            .map(|&v| {
                if v > 0.25 {
                    ParkType::Office
                } else if v < -0.25 {
                    ParkType::Residential
                } else {
                    ParkType::Retail
                }
            })
            .collect();

        let capacities: Vec<u32> = (0..n)
            .map(|_| {
                self.capacity_lo
                    + rng.next_below((self.capacity_hi - self.capacity_lo + 1) as usize) as u32
            })
            .collect();

        let mut noise = vec![0.0f32; n];
        let mut values = vec![0.0f32; self.steps * n];
        for t in 0..self.steps {
            let minute = (t as u32 * self.interval_min) % (24 * 60);
            let day = ((t as u32 * self.interval_min) / (24 * 60)) % 7;
            let weekend = day >= 5;
            let hour = minute as f32 / 60.0;
            for i in 0..n {
                noise[i] = 0.9 * noise[i] + rng.next_gaussian() * self.noise_frac;
                let cap = capacities[i] as f32;
                let occ_frac =
                    (occupancy_profile(types[i], hour, weekend) + noise[i]).clamp(0.0, 1.0);
                let avail = (cap * (1.0 - occ_frac)).round().clamp(0.0, cap);
                values[t * n + i] = avail;
            }
        }

        CarparkData {
            dataset: ForecastDataset::new(
                name,
                Tensor::from_vec(values, [self.steps, n]),
                self.interval_min,
                0,
            ),
            graph,
            capacities,
            types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CarparkConfig {
        CarparkConfig {
            nodes: 30,
            steps: 288 * 3,
            ..CarparkConfig::default()
        }
    }

    #[test]
    fn availability_within_capacity() {
        let d = small().generate("cp");
        let n = 30;
        for t in 0..d.dataset.steps() {
            for i in 0..n {
                let v = d.dataset.values.as_slice()[t * n + i];
                assert!(v >= 0.0 && v <= d.capacities[i] as f32);
                assert_eq!(v, v.round(), "availability must be integral");
            }
        }
    }

    #[test]
    fn office_lots_fill_at_midday() {
        let d = CarparkConfig {
            nodes: 60,
            steps: 288 * 2,
            ..CarparkConfig::default()
        }
        .generate("cp");
        let n = 60;
        let vals = d.dataset.values.as_slice();
        for i in 0..n {
            if d.types[i] != ParkType::Office {
                continue;
            }
            // Monday 13:00 (t = 156) vs Monday 03:00 (t = 36).
            let midday = vals[156 * n + i];
            let night = vals[36 * n + i];
            assert!(
                midday < night,
                "office park {i}: midday {midday} night {night}"
            );
        }
    }

    #[test]
    fn residential_is_the_inverse() {
        let d = CarparkConfig {
            nodes: 60,
            steps: 288 * 2,
            ..CarparkConfig::default()
        }
        .generate("cp");
        let n = 60;
        let vals = d.dataset.values.as_slice();
        let mut checked = 0;
        for i in 0..n {
            if d.types[i] != ParkType::Residential {
                continue;
            }
            let midday = vals[156 * n + i];
            let night = vals[36 * n + i];
            assert!(midday > night, "residential {i}: {midday} vs {night}");
            checked += 1;
        }
        assert!(checked > 0, "no residential parks drawn — adjust threshold");
    }

    #[test]
    fn types_are_spatially_clustered() {
        let d = CarparkConfig {
            nodes: 100,
            steps: 10,
            ..CarparkConfig::default()
        }
        .generate("cp");
        // Fraction of graph edges whose endpoints share a type must beat
        // the chance rate implied by the type distribution.
        let n = 100;
        let w = d.graph.adj.weights().as_slice();
        let mut same = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in 0..n {
                if w[i * n + j] > 0.0 {
                    total += 1;
                    if d.types[i] == d.types[j] {
                        same += 1;
                    }
                }
            }
        }
        let observed = same as f32 / total as f32;
        let mut counts = [0usize; 3];
        for t in &d.types {
            counts[match t {
                ParkType::Office => 0,
                ParkType::Residential => 1,
                ParkType::Retail => 2,
            }] += 1;
        }
        let chance: f32 = counts
            .iter()
            .map(|&c| (c as f32 / n as f32).powi(2))
            .sum();
        assert!(
            observed > chance + 0.1,
            "edge same-type rate {observed} vs chance {chance}"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = small().generate("cp");
        let b = small().generate("cp");
        assert_eq!(a.dataset.values, b.dataset.values);
        assert_eq!(a.capacities, b.capacities);
    }

    #[test]
    fn weekday_weekend_profiles_differ() {
        assert!(
            occupancy_profile(ParkType::Office, 13.0, false)
                > occupancy_profile(ParkType::Office, 13.0, true)
        );
        assert!(
            occupancy_profile(ParkType::Retail, 13.0, true)
                > occupancy_profile(ParkType::Retail, 13.0, false)
        );
    }
}
