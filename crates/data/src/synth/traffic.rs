//! Traffic-speed dataset generator (METR-LA-like and London/NewYork-like).
//!
//! Per node `i` and step `t` the speed is
//!
//! ```text
//! v_i(t) = base_i · (1 − rush(t) · intensity_i − incident_i(t)) + ε_i(t)
//! ```
//!
//! * `base_i` — free-flow speed, uniform in `[speed_lo, speed_hi]`;
//! * `rush(t)` — double-peaked daily congestion profile (8:00 and 18:00),
//!   damped on weekends;
//! * `intensity_i` — how strongly the node reacts to rush hour; produced
//!   by diffusing a random field over the latent road graph, so *nearby
//!   nodes congest together* — the spatial correlation SAGDFN learns;
//! * `incident_i(t)` — sparse incidents that start at a random node, decay
//!   exponentially in time and spill over graph edges;
//! * `ε_i(t)` — AR(1)-in-time noise, spatially diffused each step.
//!
//! A small fraction of readings is zeroed to model missing data, matching
//! the METR-LA convention that metrics mask zeros.

use crate::series::ForecastDataset;
use sagdfn_graph::{knn_geometric, GeoGraph};
use sagdfn_tensor::{Rng64, Tensor};

/// Configuration for [`TrafficConfig::generate`].
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Number of sensors `N`.
    pub nodes: usize,
    /// Number of time steps `T`.
    pub steps: usize,
    /// Recording interval in minutes (5 = METR-LA-like, 60 = city-like).
    pub interval_min: u32,
    /// Latent-graph neighbors per node.
    pub knn: usize,
    /// Free-flow speed range (mph or km/h — units are nominal).
    pub speed_lo: f32,
    /// Upper free-flow speed.
    pub speed_hi: f32,
    /// Peak rush-hour congestion factor (fraction of base speed lost).
    pub rush_strength: f32,
    /// Expected incidents per node per 1000 steps.
    pub incident_rate: f32,
    /// AR(1) noise scale (same nominal units as speed).
    pub noise_scale: f32,
    /// Fraction of readings replaced by 0 (missing data).
    pub missing_frac: f32,
    /// RNG seed — cities differ only by seed and topology draw.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            nodes: 207,
            steps: 288 * 14,
            interval_min: 5,
            knn: 6,
            speed_lo: 45.0,
            speed_hi: 70.0,
            rush_strength: 0.55,
            incident_rate: 1.5,
            noise_scale: 2.0,
            missing_frac: 0.002,
            seed: 42,
        }
    }
}

/// Generated dataset plus its latent road graph (used as the "predefined
/// adjacency" by DCRNN-style baselines and the w/o SNS&SSMA ablation).
pub struct TrafficData {
    /// The `(T, N)` speed series.
    pub dataset: ForecastDataset,
    /// Latent sensor graph the data was diffused over.
    pub graph: GeoGraph,
}

impl TrafficConfig {
    /// Synthesizes the dataset deterministically from the seed.
    pub fn generate(&self, name: &str) -> TrafficData {
        assert!(self.nodes > self.knn, "need nodes > knn");
        let mut rng = Rng64::new(self.seed);
        let graph = knn_geometric(self.nodes, self.knn, &mut rng);
        let n = self.nodes;
        let t_steps = self.steps;

        // Spatially correlated rush-hour intensity: random field diffused
        // over the latent graph, then squashed into [0.3, 1.0].
        let raw = Tensor::rand_normal([n, 1], 0.0, 1.0, &mut rng);
        let smooth = graph.adj.diffuse(&raw, 3);
        let intensity: Vec<f32> = smooth
            .as_slice()
            .iter()
            .map(|&v| 0.65 + 0.35 * (2.0 * v).tanh())
            .collect();

        let base: Vec<f32> = (0..n)
            .map(|_| self.speed_lo + (self.speed_hi - self.speed_lo) * rng.next_f32())
            .collect();

        // Incident field, updated per step: new incidents inject a deficit
        // at a node; the field decays and diffuses over edges.
        let mut incident = vec![0.0f32; n];
        let incident_prob = self.incident_rate * n as f32 / 1000.0;
        let adj = graph.adj.weights().as_slice();
        let deg: Vec<f32> = graph.adj.degrees();

        // AR(1) noise field with spatial mixing.
        let mut noise = vec![0.0f32; n];

        let mut values = vec![0.0f32; t_steps * n];
        let mut tmp = vec![0.0f32; n];
        for t in 0..t_steps {
            let minute = (t as u32 * self.interval_min) % (24 * 60);
            let day = ((t as u32 * self.interval_min) / (24 * 60)) % 7;
            let weekend = day >= 5;
            let hour = minute as f32 / 60.0;
            // Two Gaussian congestion bumps (8:00, 18:00).
            let mut rush = (-(hour - 8.0).powi(2) / 4.5).exp()
                + 0.9 * (-(hour - 18.0).powi(2) / 6.0).exp();
            if weekend {
                rush *= 0.35;
            }

            // Evolve incidents: decay, diffuse, spawn.
            for v in incident.iter_mut() {
                *v *= 0.92;
            }
            // One matrix-vector diffusion of 15% of the field.
            for (i, ti) in tmp.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for j in 0..n {
                    let w = adj[i * n + j];
                    if w > 0.0 {
                        acc += w * incident[j];
                    }
                }
                *ti = 0.85 * incident[i] + 0.15 * acc / (deg[i] + 1.0);
            }
            incident.copy_from_slice(&tmp);
            if rng.next_f32() < incident_prob {
                let site = rng.next_below(n);
                incident[site] = (incident[site] + 0.5).min(0.8);
            }

            // Evolve AR(1) noise whose *innovations* are spatially
            // correlated: draw an iid field, average it with graph
            // neighbors, then feed it into the AR recursion. Correlated
            // innovations survive differencing, so even detrended series
            // co-move along graph edges.
            let fresh: Vec<f32> = (0..n).map(|_| rng.next_gaussian()).collect();
            for (i, ti) in tmp.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for j in 0..n {
                    let w = adj[i * n + j];
                    if w > 0.0 {
                        acc += w * fresh[j];
                    }
                }
                let innovation = 0.3 * fresh[i] + 0.7 * acc / deg[i].max(1e-6);
                *ti = 0.8 * noise[i] + self.noise_scale * innovation;
            }
            noise.copy_from_slice(&tmp);

            for i in 0..n {
                let congestion = (rush * intensity[i] * self.rush_strength
                    + incident[i])
                    .min(0.92);
                let mut v = base[i] * (1.0 - congestion) + noise[i];
                v = v.clamp(3.0, self.speed_hi + 8.0);
                if rng.next_f32() < self.missing_frac {
                    v = 0.0;
                }
                values[t * n + i] = v;
            }
        }

        TrafficData {
            dataset: ForecastDataset::new(
                name,
                Tensor::from_vec(values, [t_steps, n]),
                self.interval_min,
                0,
            ),
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrafficConfig {
        TrafficConfig {
            nodes: 24,
            steps: 288 * 3,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn shapes_and_determinism() {
        let a = small().generate("t");
        let b = small().generate("t");
        assert_eq!(a.dataset.values.dims(), &[288 * 3, 24]);
        assert_eq!(a.dataset.values, b.dataset.values);
    }

    #[test]
    fn speeds_in_physical_range() {
        let d = small().generate("t");
        for &v in d.dataset.values.as_slice() {
            assert!(v == 0.0 || (3.0..=78.0).contains(&v), "speed {v}");
        }
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let d = small().generate("t");
        let vals = d.dataset.values.as_slice();
        let n = 24;
        // Average 8:00 weekday speeds vs 3:00 speeds over the first 3 days.
        let at_hour = |h: usize| -> f32 {
            let mut acc = 0.0;
            let mut cnt = 0;
            for day in 0..3 {
                let t = day * 288 + h * 12;
                for i in 0..n {
                    if vals[t * n + i] > 0.0 {
                        acc += vals[t * n + i];
                        cnt += 1;
                    }
                }
            }
            acc / cnt as f32
        };
        assert!(
            at_hour(8) < at_hour(3) - 5.0,
            "rush {} vs night {}",
            at_hour(8),
            at_hour(3)
        );
    }

    #[test]
    fn neighbors_more_correlated_than_strangers() {
        // The headline property: correlation should follow the latent graph.
        let d = TrafficConfig {
            nodes: 40,
            steps: 288 * 5,
            noise_scale: 1.0,
            ..TrafficConfig::default()
        }
        .generate("t");
        let n = 40;
        let vals = d.dataset.values.as_slice();
        let t_steps = d.dataset.steps();
        let series = |i: usize| -> Vec<f32> {
            (0..t_steps).map(|t| vals[t * n + i]).collect()
        };
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                num += (x - ma) * (y - mb);
                da += (x - ma).powi(2);
                db += (y - mb).powi(2);
            }
            num / (da.sqrt() * db.sqrt() + 1e-9)
        };
        // After removing the shared daily cycle (by differencing), graph
        // neighbors should still co-move more than random pairs.
        let detrend = |s: &[f32]| -> Vec<f32> {
            s.windows(2).map(|w| w[1] - w[0]).collect()
        };
        let w = d.graph.adj.weights().as_slice();
        let mut neigh = Vec::new();
        let mut far = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let c = corr(&detrend(&series(i)), &detrend(&series(j)));
                if w[i * n + j] > 0.0 {
                    neigh.push(c);
                } else {
                    far.push(c);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        // "Far" pairs include 2-hop neighbors (also correlated), so we
        // require a clear multiplicative gap rather than a huge absolute one.
        assert!(
            mean(&neigh) > mean(&far) * 1.5 && mean(&neigh) > mean(&far) + 0.005,
            "neighbor corr {} vs far {}",
            mean(&neigh),
            mean(&far)
        );
    }

    #[test]
    fn missing_fraction_approximate() {
        let d = TrafficConfig {
            nodes: 30,
            steps: 1000,
            missing_frac: 0.05,
            ..TrafficConfig::default()
        }
        .generate("t");
        let zeros = d
            .dataset
            .values
            .as_slice()
            .iter()
            .filter(|&&v| v == 0.0)
            .count();
        let frac = zeros as f32 / (30.0 * 1000.0);
        assert!((frac - 0.05).abs() < 0.01, "missing frac {frac}");
    }

    #[test]
    fn different_seeds_are_different_cities() {
        let a = TrafficConfig {
            seed: 1,
            ..small()
        }
        .generate("a");
        let b = TrafficConfig {
            seed: 2,
            ..small()
        }
        .generate("b");
        assert_ne!(a.dataset.values, b.dataset.values);
    }
}
