//! Energy-demand dataset generator.
//!
//! The paper motivates multivariate forecasting with "meteorology, stock
//! market, traffic flow, energy consumption"; this generator provides the
//! energy instance: substation-level electricity load with
//!
//! * a strong daily cycle (morning/evening peaks) and weekend damping,
//! * a *shared weather driver* (smooth temperature-like process) whose
//!   influence is spatially correlated over a latent feeder graph —
//!   hot afternoons raise cooling load across neighboring substations,
//! * multiplicative heteroskedastic noise (demand variance scales with
//!   level).
//!
//! Like the traffic/carpark generators, the observable regime is
//! *seasonality + graph-local correlation*, which is what separates the
//! spatial models from the temporal-only ones.

use crate::series::ForecastDataset;
use sagdfn_graph::{knn_geometric, GeoGraph};
use sagdfn_tensor::{Rng64, Tensor};

/// Configuration for [`EnergyConfig::generate`].
#[derive(Clone, Debug)]
pub struct EnergyConfig {
    /// Number of substations `N`.
    pub nodes: usize,
    /// Number of time steps `T`.
    pub steps: usize,
    /// Recording interval in minutes (typical smart-meter: 15 or 60).
    pub interval_min: u32,
    /// Latent feeder-graph neighbors per node.
    pub knn: usize,
    /// Base load range in MW.
    pub base_lo: f32,
    /// Upper base load.
    pub base_hi: f32,
    /// Weather sensitivity (fraction of base swung by the weather driver).
    pub weather_gain: f32,
    /// Multiplicative noise scale.
    pub noise_frac: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            nodes: 100,
            steps: 24 * 60,
            interval_min: 60,
            knn: 5,
            base_lo: 5.0,
            base_hi: 60.0,
            weather_gain: 0.35,
            noise_frac: 0.04,
            seed: 230,
        }
    }
}

/// Generated dataset plus its latent feeder graph.
pub struct EnergyData {
    /// The `(T, N)` load series (MW).
    pub dataset: ForecastDataset,
    /// Latent feeder graph.
    pub graph: GeoGraph,
}

impl EnergyConfig {
    /// Synthesizes the dataset deterministically from the seed.
    pub fn generate(&self, name: &str) -> EnergyData {
        assert!(self.nodes > self.knn, "need nodes > knn");
        let mut rng = Rng64::new(self.seed);
        let graph = knn_geometric(self.nodes, self.knn, &mut rng);
        let n = self.nodes;

        let base: Vec<f32> = (0..n)
            .map(|_| self.base_lo + (self.base_hi - self.base_lo) * rng.next_f32())
            .collect();
        // Spatially correlated weather sensitivity (coastal vs inland
        // feeders react differently to the same weather).
        let raw = Tensor::rand_normal([n, 1], 0.0, 1.0, &mut rng);
        let sens: Vec<f32> = graph
            .adj
            .diffuse(&raw, 3)
            .as_slice()
            .iter()
            .map(|&v| 0.6 + 0.4 * (1.5 * v).tanh())
            .collect();

        // Shared weather driver: slow AR(1) with a diurnal component.
        let mut weather = 0.0f32;
        let steps_per_day = (24 * 60 / self.interval_min) as usize;
        let mut values = vec![0.0f32; self.steps * n];
        for t in 0..self.steps {
            weather = 0.995 * weather + 0.03 * rng.next_gaussian();
            let minute = (t as u32 * self.interval_min) % (24 * 60);
            let day = ((t as u32 * self.interval_min) / (24 * 60)) % 7;
            let weekend = day >= 5;
            let hour = minute as f32 / 60.0;
            // Double-peak demand profile: 8:00 and 19:00.
            let mut profile = 0.55
                + 0.3 * (-(hour - 8.0).powi(2) / 8.0).exp()
                + 0.45 * (-(hour - 19.0).powi(2) / 7.0).exp();
            if weekend {
                profile *= 0.85;
            }
            // Afternoon weather load (cooling) follows the shared driver.
            let afternoon = (-(hour - 15.0).powi(2) / 18.0).exp();
            let _ = steps_per_day;
            for i in 0..n {
                let weather_load = self.weather_gain * sens[i] * weather.tanh() * afternoon;
                let mut v = base[i] * (profile + weather_load).max(0.1);
                v *= 1.0 + self.noise_frac * rng.next_gaussian();
                values[t * n + i] = v.max(0.0);
            }
        }
        EnergyData {
            dataset: ForecastDataset::new(
                name,
                Tensor::from_vec(values, [self.steps, n]),
                self.interval_min,
                0,
            ),
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EnergyConfig {
        EnergyConfig {
            nodes: 20,
            steps: 24 * 21,
            ..EnergyConfig::default()
        }
    }

    #[test]
    fn loads_positive_and_deterministic() {
        let a = small().generate("e");
        let b = small().generate("e");
        assert_eq!(a.dataset.values, b.dataset.values);
        assert!(a.dataset.values.min() >= 0.0);
        assert!(a.dataset.values.all_finite());
    }

    #[test]
    fn evening_peak_exceeds_night_valley() {
        let d = small().generate("e");
        let n = 20;
        let vals = d.dataset.values.as_slice();
        let avg_at = |hour: usize| -> f32 {
            let mut acc = 0.0;
            let mut cnt = 0;
            for day in 0..14 {
                let t = day * 24 + hour;
                for i in 0..n {
                    acc += vals[t * n + i];
                    cnt += 1;
                }
            }
            acc / cnt as f32
        };
        assert!(
            avg_at(19) > 1.3 * avg_at(3),
            "evening {} vs night {}",
            avg_at(19),
            avg_at(3)
        );
    }

    #[test]
    fn weekends_lighter_than_weekdays() {
        let d = small().generate("e");
        let n = 20;
        let vals = d.dataset.values.as_slice();
        let day_mean = |day: usize| -> f32 {
            let mut acc = 0.0;
            for h in 0..24 {
                let t = day * 24 + h;
                for i in 0..n {
                    acc += vals[t * n + i];
                }
            }
            acc / (24 * n) as f32
        };
        // Average 2 weekends vs 2 mid-weeks.
        let weekend = (day_mean(5) + day_mean(6) + day_mean(12) + day_mean(13)) / 4.0;
        let weekday = (day_mean(1) + day_mean(2) + day_mean(8) + day_mean(9)) / 4.0;
        assert!(weekend < weekday, "weekend {weekend} vs weekday {weekday}");
    }

    #[test]
    fn weather_couples_neighbors() {
        // Detrended neighbor series should co-move more than distant ones
        // thanks to the shared, spatially-modulated weather driver.
        let d = EnergyConfig {
            nodes: 30,
            steps: 24 * 40,
            noise_frac: 0.02,
            ..EnergyConfig::default()
        }
        .generate("e");
        let n = 30;
        let vals = d.dataset.values.as_slice();
        let t_len = d.dataset.steps();
        // Remove the daily profile by differencing across days.
        let day_detrended = |i: usize| -> Vec<f32> {
            (24..t_len)
                .map(|t| vals[t * n + i] - vals[(t - 24) * n + i])
                .collect()
        };
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                num += (x - ma) * (y - mb);
                da += (x - ma).powi(2);
                db += (y - mb).powi(2);
            }
            num / (da.sqrt() * db.sqrt() + 1e-9)
        };
        let w = d.graph.adj.weights().as_slice();
        let (mut neigh, mut far) = (Vec::new(), Vec::new());
        for i in 0..n {
            let si = day_detrended(i);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let c = corr(&si, &day_detrended(j));
                if w[i * n + j] > 0.0 {
                    neigh.push(c);
                } else {
                    far.push(c);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&neigh) > mean(&far),
            "neighbors {} vs far {}",
            mean(&neigh),
            mean(&far)
        );
    }
}
