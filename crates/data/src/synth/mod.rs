//! Synthetic dataset generators.
//!
//! Both generators share a recipe: draw a latent geometric road graph,
//! derive *spatially correlated* node attributes by diffusing random
//! fields over that graph, then synthesize each node's series from a
//! seasonal profile modulated by those attributes plus spatio-temporally
//! correlated noise. The result exposes the exact structure the paper's
//! models compete on: strong daily/weekly seasonality (temporal models can
//! exploit it) *and* graph-localized correlation (only spatial models can
//! exploit that).

pub mod carpark;
pub mod energy;
pub mod traffic;

pub use carpark::{CarparkConfig, CarparkData};
pub use energy::{EnergyConfig, EnergyData};
pub use traffic::{TrafficConfig, TrafficData};
