//! # sagdfn-data
//!
//! Multivariate time-series datasets for the SAGDFN reproduction.
//!
//! The paper evaluates on four proprietary/real datasets (METR-LA,
//! London2000, NewYork2000, CARPARK1918). This crate provides
//! *deterministic synthetic generators* that reproduce the statistical
//! regimes those datasets expose to the models — strong daily/weekly
//! seasonality, congestion dynamics that propagate over a latent road
//! graph, bounded occupancy counts — plus the full data pipeline:
//!
//! * [`series::ForecastDataset`] — `(T, N)` values with time covariates;
//! * [`scaler::ZScore`] — global z-score normalization fit on train data;
//! * [`window`] — sliding-window train/val/test splits and batch tensors;
//! * [`metrics`] — masked MAE / RMSE / MAPE, the paper's three metrics;
//! * [`synth`] — the traffic & carpark generators;
//! * [`presets`] — `metr_la_like`, `city2000_like`, `carpark_like`, and
//!   the London200 subset, each at `tiny` / `small` / `paper` scale.

pub mod diagnostics;
pub mod io;
pub mod metrics;
pub mod presets;
pub mod scaler;
pub mod series;
pub mod synth;
pub mod window;

pub use diagnostics::{inspect, DatasetReport};
pub use metrics::{average, horizon_metrics, node_metrics, Metrics};
pub use presets::{carpark_like, city2000_like, metr_la_like, Scale};
pub use scaler::ZScore;
pub use series::ForecastDataset;
pub use window::{Batch, SlidingWindows, SplitSpec, ThreeWaySplit};
