//! Dataset diagnostics: quick statistical characterization of a
//! multivariate panel — is there enough temporal seasonality and spatial
//! correlation for an STGNN to exploit? Used by the CLI's `inspect`
//! subcommand and by tests validating the synthetic generators.

use crate::series::ForecastDataset;

/// Summary statistics of a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetReport {
    /// Node count `N`.
    pub nodes: usize,
    /// Step count `T`.
    pub steps: usize,
    /// Steps per day at this recording interval.
    pub steps_per_day: usize,
    /// Global mean of non-missing values.
    pub mean: f32,
    /// Global standard deviation of non-missing values.
    pub std: f32,
    /// Fraction of exactly-zero readings (the missing-data convention).
    pub missing_frac: f32,
    /// Mean autocorrelation at lag 1 over nodes (short-term smoothness).
    pub lag1_autocorr: f32,
    /// Mean autocorrelation at the daily lag over nodes (seasonality
    /// strength); NaN-free, 0 when the series is shorter than two days.
    pub daily_autocorr: f32,
    /// Mean pairwise correlation across a node sample (spatial signal).
    pub mean_cross_corr: f32,
}

impl DatasetReport {
    /// Renders a human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "nodes: {}\nsteps: {} ({} per day)\nmean: {:.2}  std: {:.2}\n\
             missing: {:.2}%\nautocorr lag-1: {:.3}\nautocorr daily: {:.3}\n\
             mean cross-correlation: {:.3}",
            self.nodes,
            self.steps,
            self.steps_per_day,
            self.mean,
            self.std,
            self.missing_frac * 100.0,
            self.lag1_autocorr,
            self.daily_autocorr,
            self.mean_cross_corr
        )
    }
}

fn autocorr(series: &[f32], lag: usize) -> f32 {
    if series.len() <= lag + 2 {
        return 0.0;
    }
    let n = series.len();
    let mean = series.iter().sum::<f32>() / n as f32;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for t in 0..n {
        let d = (series[t] - mean) as f64;
        den += d * d;
        if t + lag < n {
            num += d * (series[t + lag] - mean) as f64;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den) as f32
    }
}

fn pearson(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    if n < 3 {
        return 0.0;
    }
    let ma = a[..n].iter().sum::<f32>() / n as f32;
    let mb = b[..n].iter().sum::<f32>() / n as f32;
    let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..n {
        let (x, y) = ((a[i] - ma) as f64, (b[i] - mb) as f64);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    let den = (da * db).sqrt();
    if den == 0.0 {
        0.0
    } else {
        (num / den) as f32
    }
}

/// Computes a [`DatasetReport`]. Cross-correlation uses up to
/// `max_pairs` random-ish node pairs to stay cheap on wide panels.
pub fn inspect(dataset: &ForecastDataset) -> DatasetReport {
    let (t_len, n) = (dataset.steps(), dataset.nodes());
    let vals = dataset.values.as_slice();
    let steps_per_day = ((24 * 60) / dataset.interval_min as usize).max(1);

    // Global moments over non-missing entries.
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut zeros = 0usize;
    for &v in vals {
        if v == 0.0 {
            zeros += 1;
        } else {
            sum += v as f64;
            count += 1;
        }
    }
    let mean = if count > 0 { (sum / count as f64) as f32 } else { 0.0 };
    let mut var = 0.0f64;
    for &v in vals {
        if v != 0.0 {
            var += ((v - mean) as f64).powi(2);
        }
    }
    let std = if count > 0 {
        ((var / count as f64).sqrt()) as f32
    } else {
        0.0
    };

    // Per-node autocorrelations over a bounded node sample.
    let sample: Vec<usize> = (0..n).step_by((n / 24).max(1)).collect();
    let series = |i: usize| -> Vec<f32> { (0..t_len).map(|t| vals[t * n + i]).collect() };
    let mut l1 = 0.0f32;
    let mut ld = 0.0f32;
    for &i in &sample {
        let s = series(i);
        l1 += autocorr(&s, 1);
        ld += autocorr(&s, steps_per_day);
    }
    l1 /= sample.len() as f32;
    ld /= sample.len() as f32;

    // Mean pairwise correlation across consecutive sampled nodes.
    let mut cc = 0.0f32;
    let mut pairs = 0usize;
    for w in sample.windows(2) {
        cc += pearson(&series(w[0]), &series(w[1]));
        pairs += 1;
    }
    if pairs > 0 {
        cc /= pairs as f32;
    }

    DatasetReport {
        nodes: n,
        steps: t_len,
        steps_per_day,
        mean,
        std,
        missing_frac: zeros as f32 / vals.len() as f32,
        lag1_autocorr: l1,
        daily_autocorr: ld,
        mean_cross_corr: cc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_tensor::Tensor;

    #[test]
    fn constant_series_report() {
        let d = ForecastDataset::new("c", Tensor::full([100, 3], 5.0), 60, 0);
        let r = inspect(&d);
        assert_eq!(r.nodes, 3);
        assert_eq!(r.missing_frac, 0.0);
        assert!((r.mean - 5.0).abs() < 1e-6);
        assert_eq!(r.std, 0.0);
    }

    #[test]
    fn missing_fraction_counts_zeros() {
        let mut vals = vec![1.0f32; 100];
        for v in vals.iter_mut().take(25) {
            *v = 0.0;
        }
        let d = ForecastDataset::new("m", Tensor::from_vec(vals, [50, 2]), 5, 0);
        assert!((inspect(&d).missing_frac - 0.25).abs() < 1e-6);
    }

    #[test]
    fn daily_seasonality_detected_on_sine() {
        // Perfect daily sine at hourly resolution: daily autocorr ≈ 1.
        let t_len = 24 * 14;
        let vals: Vec<f32> = (0..t_len)
            .map(|t| 10.0 + (2.0 * std::f32::consts::PI * (t % 24) as f32 / 24.0).sin())
            .collect();
        let d = ForecastDataset::new("s", Tensor::from_vec(vals, [t_len, 1]), 60, 0);
        let r = inspect(&d);
        assert!(r.daily_autocorr > 0.9, "daily autocorr {}", r.daily_autocorr);
        assert!(r.lag1_autocorr > 0.9);
    }

    #[test]
    fn white_noise_has_no_structure() {
        let mut rng = sagdfn_tensor::Rng64::new(4);
        let vals: Vec<f32> = (0..2000).map(|_| 10.0 + rng.next_gaussian()).collect();
        let d = ForecastDataset::new("w", Tensor::from_vec(vals, [1000, 2]), 60, 0);
        let r = inspect(&d);
        assert!(r.lag1_autocorr.abs() < 0.1, "{}", r.lag1_autocorr);
        assert!(r.daily_autocorr.abs() < 0.1, "{}", r.daily_autocorr);
    }

    #[test]
    fn synthetic_traffic_has_the_right_regime() {
        // The generators must produce what the models assume: smooth,
        // daily-seasonal, cross-correlated panels.
        let data = crate::presets::metr_la_like(crate::presets::Scale::Tiny);
        let r = inspect(&data.dataset);
        assert!(r.lag1_autocorr > 0.8, "lag1 {}", r.lag1_autocorr);
        assert!(r.daily_autocorr > 0.3, "daily {}", r.daily_autocorr);
        assert!(r.mean_cross_corr > 0.2, "cross {}", r.mean_cross_corr);
    }

    #[test]
    fn render_contains_key_fields() {
        let d = ForecastDataset::new("c", Tensor::full([48, 2], 3.0), 60, 0);
        let text = inspect(&d).render();
        assert!(text.contains("nodes: 2"));
        assert!(text.contains("per day"));
    }
}
