//! One-stop construction of every model in the paper's tables.

use crate::classical::{Arima, HistoricalAverage, Svr, Var};
use crate::deep::DeepConfig;
use crate::graph::{DirectGraphNet, RecurrentGraphNet};
use crate::sagdfn_adapter::SagdfnForecaster;
use crate::temporal::{Ets, FedLite, LstmSeq2Seq, TimesNetLite};
use crate::Forecaster;
use sagdfn_core::SagdfnConfig;
use sagdfn_data::Scale;
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;

/// Everything needed to instantiate any model for one dataset.
#[derive(Clone)]
pub struct BuildContext {
    /// Node count of the dataset.
    pub n: usize,
    /// History window length.
    pub h: usize,
    /// Forecast horizon.
    pub f: usize,
    /// Run scale (sizes the deep configs).
    pub scale: Scale,
    /// Latent-topology adjacency for predefined-graph models (top-k
    /// filtered upstream).
    pub topology: Tensor,
}

/// GTS/STEP node-feature width (mean, std + 6 daily-profile buckets —
/// must match `GraphSource::series_features(_, _, 6)`).
pub const PAIRWISE_FEATURES: usize = 8;

/// Builds one model by family. `Svr` and `Var` cover the classical rows;
/// `ModelFamily::Sagdfn` returns the full model.
pub fn build(family: ModelFamily, ctx: &BuildContext) -> Box<dyn Forecaster> {
    let cfg = DeepConfig::for_scale(ctx.scale);
    match family {
        ModelFamily::Arima => Box::new(Arima::new()),
        ModelFamily::Var => Box::new(Var::new()),
        ModelFamily::Svr => Box::new(Svr::new()),
        ModelFamily::Lstm => Box::new(LstmSeq2Seq::new(cfg)),
        ModelFamily::Dcrnn => Box::new(RecurrentGraphNet::dcrnn(ctx.topology.clone(), cfg)),
        ModelFamily::Stgcn => Box::new(DirectGraphNet::stgcn(
            ctx.topology.clone(),
            ctx.h,
            ctx.f,
            cfg,
        )),
        ModelFamily::GraphWaveNet => Box::new(DirectGraphNet::graph_wavenet(
            ctx.topology.clone(),
            ctx.h,
            ctx.f,
            cfg,
        )),
        ModelFamily::Gman => Box::new(DirectGraphNet::gman(ctx.n, ctx.h, ctx.f, cfg)),
        ModelFamily::Agcrn => Box::new(RecurrentGraphNet::agcrn(ctx.n, cfg)),
        ModelFamily::Mtgnn => Box::new(DirectGraphNet::mtgnn(ctx.n, ctx.h, ctx.f, cfg)),
        ModelFamily::Astgcn => Box::new(DirectGraphNet::astgcn(ctx.n, ctx.h, ctx.f, cfg)),
        ModelFamily::Stsgcn => Box::new(DirectGraphNet::stsgcn(
            ctx.topology.clone(),
            ctx.h,
            ctx.f,
            cfg,
        )),
        ModelFamily::Gts => Box::new(RecurrentGraphNet::gts(PAIRWISE_FEATURES, cfg)),
        ModelFamily::Step => Box::new(RecurrentGraphNet::step(PAIRWISE_FEATURES, cfg)),
        ModelFamily::D2stgnn => Box::new(RecurrentGraphNet::d2stgnn(ctx.topology.clone(), cfg)),
        ModelFamily::Sagdfn => Box::new(SagdfnForecaster::new(
            ctx.n,
            SagdfnConfig::for_scale(ctx.scale, ctx.n),
        )),
    }
}

/// Extra non-table-III models: HA floor and the Table IX temporal roster.
pub fn build_extra(name: &str, ctx: &BuildContext) -> Option<Box<dyn Forecaster>> {
    let cfg = DeepConfig::for_scale(ctx.scale);
    match name {
        "HA" => Some(Box::new(HistoricalAverage)),
        "ETS" => Some(Box::new(Ets::new())),
        "FED" => Some(Box::new(FedLite::new())),
        "TIMESNET" => Some(Box::new(TimesNetLite::new(ctx.h, ctx.f, cfg))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BuildContext {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        BuildContext {
            n: data.dataset.nodes(),
            h: 4,
            f: 4,
            scale: Scale::Tiny,
            topology: data.graph.adj.topk_rows(6).weights().clone(),
        }
    }

    #[test]
    fn builds_all_sixteen_families() {
        let ctx = ctx();
        for family in ModelFamily::ALL {
            let model = build(family, &ctx);
            assert_eq!(model.family(), family, "{}", model.name());
            assert_eq!(model.name(), family.name(), "registry name mismatch");
        }
    }

    #[test]
    fn builds_extras() {
        let ctx = ctx();
        for name in ["HA", "ETS", "FED", "TIMESNET"] {
            assert!(build_extra(name, &ctx).is_some(), "{name}");
        }
        assert!(build_extra("NOPE", &ctx).is_none());
    }
}
