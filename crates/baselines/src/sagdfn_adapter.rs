//! [`Forecaster`] adapter for the SAGDFN model itself, so the harness
//! tables iterate one `Vec<Box<dyn Forecaster>>` including the paper's
//! model and its ablation variants.

use crate::{FitSummary, Forecaster};
use sagdfn_core::{trainer, Sagdfn, SagdfnConfig, Variant};
use sagdfn_data::{Metrics, SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;

/// SAGDFN behind the common baseline interface.
pub struct SagdfnForecaster {
    model: Sagdfn,
    /// The last fit's full report (for Table X timings).
    pub last_report: Option<trainer::TrainReport>,
}

impl SagdfnForecaster {
    /// Full model.
    pub fn new(n: usize, cfg: SagdfnConfig) -> Self {
        SagdfnForecaster {
            model: Sagdfn::new(n, cfg),
            last_report: None,
        }
    }

    /// Ablation variant (Table VIII rows).
    pub fn variant(
        n: usize,
        cfg: SagdfnConfig,
        variant: Variant,
        topology: Option<Tensor>,
    ) -> Self {
        SagdfnForecaster {
            model: Sagdfn::with_variant(n, cfg, variant, topology),
            last_report: None,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Sagdfn {
        &self.model
    }
}

impl Forecaster for SagdfnForecaster {
    fn name(&self) -> &'static str {
        self.model.variant().name()
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Sagdfn
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let report = trainer::fit(&mut self.model, split);
        let summary = FitSummary {
            train_seconds: report.train_seconds,
            epoch_seconds: report.train_seconds / report.epochs.len().max(1) as f64,
            param_count: report.param_count,
            epochs_run: report.epochs.len(),
        };
        self.last_report = Some(report);
        summary
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        trainer::predict(&self.model, windows, self.model.config().batch_size)
    }

    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        trainer::evaluate(&self.model, windows, self.model.config().batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};

    #[test]
    fn adapter_roundtrip() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let n = data.dataset.nodes();
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 350),
            SplitSpec::paper(4, 4),
        );
        let mut cfg = SagdfnConfig::for_scale(Scale::Tiny, n);
        cfg.epochs = 2;
        cfg.batch_size = 16;
        cfg.sns_every = 8;
        let mut model = SagdfnForecaster::new(n, cfg);
        assert_eq!(model.name(), "SAGDFN");
        let s = model.fit(&split);
        assert!(s.param_count > 0 && s.epochs_run >= 1);
        assert!(model.last_report.is_some());
        let m = model.evaluate(&split.test);
        assert_eq!(m.len(), 4);
        assert!(m[0].mae < 15.0, "SAGDFN horizon-1 MAE {}", m[0].mae);
    }
}
