//! LSTM seq2seq baseline: weights shared across nodes, no graph.

use crate::deep::{evaluate_deep, fit_deep, predict_deep, DeepConfig, DeepForecast};
use crate::{FitSummary, Forecaster};
use sagdfn_autodiff::{Tape, Var};
use sagdfn_data::{Batch, Metrics, SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_nn::lstm::LstmState;
use sagdfn_nn::{Binding, Linear, LstmCell, Mode, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// Encoder-decoder LSTM over each node's series independently (weights
/// shared across nodes, batch dimension `B·N`).
pub struct LstmSeq2Seq {
    params: Params,
    encoder: LstmCell,
    decoder: LstmCell,
    head: Linear,
    hidden: usize,
    cfg: DeepConfig,
}

impl LstmSeq2Seq {
    /// Builds the model with the shared deep-baseline config.
    pub fn new(cfg: DeepConfig) -> Self {
        let mut params = Params::new();
        let mut rng = Rng64::new(cfg.seed);
        let encoder = LstmCell::new(&mut params, "enc", 3, cfg.hidden, &mut rng);
        let decoder = LstmCell::new(&mut params, "dec", 3, cfg.hidden, &mut rng);
        let head = Linear::new(&mut params, "head", cfg.hidden, 1, true, &mut rng);
        LstmSeq2Seq {
            params,
            encoder,
            decoder,
            head,
            hidden: cfg.hidden,
            cfg,
        }
    }
}

impl DeepForecast for LstmSeq2Seq {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        _mode: Mode,
    ) -> Var<'t> {
        let (h_len, b, n) = (batch.x.dim(0), batch.x.dim(1), batch.x.dim(2));
        let f_len = batch.y.dim(0);
        let rows = b * n;
        let mut state = LstmState {
            h: tape.constant(Tensor::zeros([rows, self.hidden])),
            c: tape.constant(Tensor::zeros([rows, self.hidden])),
        };
        for t in 0..h_len {
            let x_t =
                tape.constant(batch.x.slice_axis(0, t, t + 1).into_reshape([rows, 3]));
            state = self.encoder.step(bind, x_t, &state);
        }
        let mut value =
            tape.constant(scaler.transform(&batch.x_last_raw).into_reshape([rows, 1]));
        let mut preds = Vec::with_capacity(f_len);
        for t in 0..f_len {
            let cov = tape.constant(
                batch
                    .future_cov
                    .slice_axis(0, t, t + 1)
                    .into_reshape([rows, 2]),
            );
            let dec_in = Var::concat(&[value, cov], 1);
            state = self.decoder.step(bind, dec_in, &state);
            let pred = self.head.forward(bind, state.h); // (rows, 1)
            preds.push(pred);
            value = pred;
        }
        Var::stack(&preds, 0)
            .reshape([f_len, b, n])
            .scale(scaler.std)
            .add_scalar(scaler.mean)
    }
}

impl Forecaster for LstmSeq2Seq {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Lstm
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let cfg = self.cfg.clone();
        fit_deep(self, split, &cfg)
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        predict_deep(self, windows, self.cfg.batch_size)
    }

    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        evaluate_deep(self, windows, self.cfg.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};

    #[test]
    fn trains_and_beats_terrible_baseline() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 400),
            SplitSpec::paper(4, 4),
        );
        let mut cfg = DeepConfig::for_scale(Scale::Tiny);
        cfg.epochs = 3;
        cfg.batch_size = 16;
        let mut model = LstmSeq2Seq::new(cfg);
        let summary = model.fit(&split);
        assert!(summary.param_count > 0);
        let m = model.evaluate(&split.test);
        // Mean traffic speed is ~50; a trained model must be far better
        // than a zero predictor and in a plausible error band.
        assert!(m[0].mae < 15.0, "horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn forward_shape() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 300),
            SplitSpec::paper(4, 4),
        );
        let model = LstmSeq2Seq::new(DeepConfig::for_scale(Scale::Tiny));
        let batch = split.train.make_batch(&[0, 1]);
        let tape = Tape::new();
        let bind = model.params().bind(&tape);
        let out = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
        assert_eq!(out.dims(), vec![4, 2, data.dataset.nodes()]);
    }
}
