//! TimesNet-lite: an MLP over the window with periodic clock features.
//!
//! TimesNet folds a series by its dominant period and applies 2-D convs.
//! At forecasting windows of 12–24 steps the fold degenerates, so the
//! proxy keeps the *periodicity-aware, temporal-only, nonlinear* essence:
//! a shared MLP mapping `[scaled window ‖ clock harmonics] → f horizons`
//! per node, trained with the common deep protocol.

use crate::deep::{evaluate_deep, fit_deep, flatten_window, predict_deep, DeepConfig, DeepForecast};
use crate::{FitSummary, Forecaster};
use sagdfn_autodiff::{Tape, Var};
use sagdfn_data::{Batch, Metrics, SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_nn::{Activation, Binding, Mlp, Mode, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// Window-MLP forecaster.
pub struct TimesNetLite {
    params: Params,
    mlp: Mlp,
    h: usize,
    f: usize,
    cfg: DeepConfig,
}

impl TimesNetLite {
    /// Builds for fixed window/horizon lengths.
    pub fn new(h: usize, f: usize, cfg: DeepConfig) -> Self {
        let mut params = Params::new();
        let mut rng = Rng64::new(cfg.seed ^ 0x7157);
        let input = h * 3; // value + tod + dow per step
        let mlp = Mlp::new(
            &mut params,
            "timesnet",
            &[input, cfg.hidden * 2, cfg.hidden, f],
            Activation::Relu,
            &mut rng,
        );
        TimesNetLite {
            params,
            mlp,
            h,
            f,
            cfg,
        }
    }
}

impl DeepForecast for TimesNetLite {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        _mode: Mode,
    ) -> Var<'t> {
        let (b, n) = (batch.x.dim(1), batch.x.dim(2));
        assert_eq!(batch.x.dim(0), self.h, "window length mismatch");
        let x = tape.constant(flatten_window(&batch.x)); // (B·N, h·3)
        let out = self.mlp.forward(bind, x); // (B·N, f)
        out.transpose_last2()
            .reshape([self.f, b, n])
            .scale(scaler.std)
            .add_scalar(scaler.mean)
    }
}

impl Forecaster for TimesNetLite {
    fn name(&self) -> &'static str {
        "TimesNet(lite)"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Lstm // temporal-only memory profile
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let cfg = self.cfg.clone();
        fit_deep(self, split, &cfg)
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        predict_deep(self, windows, self.cfg.batch_size)
    }

    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        evaluate_deep(self, windows, self.cfg.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};

    #[test]
    fn trains_to_reasonable_error() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 500),
            SplitSpec::paper(6, 4),
        );
        let mut cfg = DeepConfig::for_scale(Scale::Tiny);
        cfg.epochs = 4;
        cfg.batch_size = 32;
        let mut model = TimesNetLite::new(6, 4, cfg);
        model.fit(&split);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae < 12.0, "horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn rejects_wrong_window() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 300),
            SplitSpec::paper(8, 4),
        );
        let model = TimesNetLite::new(6, 4, DeepConfig::for_scale(Scale::Tiny));
        let batch = split.train.make_batch(&[0]);
        let tape = Tape::new();
        let bind = model.params().bind(&tape);
        model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
    }
}
