//! FEDformer-lite: ridge regression on lags + Fourier time features.
//!
//! FEDformer's core idea is modeling the series in the frequency domain.
//! The closed-form proxy keeps that essence at our window sizes: each
//! horizon step gets a linear model over the scaled lag window plus
//! sin/cos harmonics of time-of-day and day-of-week (the dominant
//! frequencies of traffic/occupancy data), fit by ridge least squares
//! over all training windows and nodes jointly.

use crate::classical::arima::solve_dense;
use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::{Rng64, Tensor};
use std::time::Instant;

/// Number of (sin, cos) harmonic pairs for each clock covariate.
const HARMONICS: usize = 2;

/// Linear-in-frequency-features forecaster.
pub struct FedLite {
    /// Ridge regularizer.
    pub ridge: f64,
    /// Max training samples drawn for the normal equations.
    pub max_samples: usize,
    weights: Vec<Vec<f32>>, // [f][dim]
    scaler: Option<ZScore>,
    h: usize,
}

impl FedLite {
    /// Defaults.
    pub fn new() -> Self {
        FedLite {
            ridge: 1e-2,
            max_samples: 50_000,
            weights: Vec::new(),
            scaler: None,
            h: 0,
        }
    }

    fn feature_dim(h: usize) -> usize {
        h + 4 * HARMONICS + 1
    }

    /// Features: scaled lags, harmonics of (tod, dow), intercept.
    fn features(scaled_lags: &[f32], tod: f32, dow: f32) -> Vec<f64> {
        let mut x: Vec<f64> = scaled_lags.iter().map(|&v| v as f64).collect();
        for k in 1..=HARMONICS {
            let w = 2.0 * std::f64::consts::PI * k as f64;
            x.push((w * tod as f64).sin());
            x.push((w * tod as f64).cos());
            x.push((w * dow as f64).sin());
            x.push((w * dow as f64).cos());
        }
        x.push(1.0);
        x
    }
}

impl Default for FedLite {
    fn default() -> Self {
        FedLite::new()
    }
}

impl Forecaster for FedLite {
    fn name(&self) -> &'static str {
        "FEDformer(FED-lite)"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Lstm // temporal-only memory profile
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let start = Instant::now();
        let windows = &split.train;
        let scaler = split.scaler;
        self.scaler = Some(scaler);
        self.h = windows.h();
        let (h, f, n) = (windows.h(), windows.f(), windows.nodes());
        let dim = Self::feature_dim(h);
        let mut ata = vec![0.0f64; dim * dim];
        let mut atb = vec![vec![0.0f64; dim]; f];
        let mut rng = Rng64::new(99);
        let total = windows.len() * n;
        let samples = total.min(self.max_samples);
        for _ in 0..samples {
            let w = rng.next_below(windows.len());
            let node = rng.next_below(n);
            let (input, target) = windows.raw_window(w);
            let scaled: Vec<f32> = (0..h)
                .map(|t| scaler.transform_scalar(input.as_slice()[t * n + node]))
                .collect();
            let start_step = windows.starts()[w];
            let tod = windows.dataset().time_of_day(start_step + h);
            let dow = windows.dataset().day_of_week(start_step + h);
            let x = Self::features(&scaled, tod, dow);
            for i in 0..dim {
                let xi = x[i];
                for j in 0..dim {
                    ata[i * dim + j] += xi * x[j];
                }
            }
            for (step, atb_step) in atb.iter_mut().enumerate() {
                let y = scaler.transform_scalar(target.as_slice()[step * n + node]) as f64;
                for i in 0..dim {
                    atb_step[i] += x[i] * y;
                }
            }
        }
        for i in 0..dim {
            ata[i * dim + i] += self.ridge * samples as f64;
        }
        self.weights = atb
            .into_iter()
            .map(|mut b| {
                let mut a = ata.clone();
                solve_dense(&mut a, &mut b, dim)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect()
            })
            .collect();
        FitSummary {
            train_seconds: start.elapsed().as_secs_f64(),
            epoch_seconds: start.elapsed().as_secs_f64(),
            param_count: f * dim,
            epochs_run: 1,
        }
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        assert!(!self.weights.is_empty(), "fit() before predict()");
        let scaler = self.scaler.expect("scaler set");
        let (h, f, n) = (windows.h(), windows.f(), windows.nodes());
        assert_eq!(h, self.h, "window length changed between fit and predict");
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            let start_step = windows.starts()[w];
            let tod = windows.dataset().time_of_day(start_step + h);
            let dow = windows.dataset().day_of_week(start_step + h);
            for node in 0..n {
                let scaled: Vec<f32> = (0..h)
                    .map(|t| scaler.transform_scalar(input.as_slice()[t * n + node]))
                    .collect();
                let x = Self::features(&scaled, tod, dow);
                for step in 0..f {
                    let z: f64 = self.weights[step]
                        .iter()
                        .zip(&x)
                        .map(|(&wgt, &xi)| wgt as f64 * xi)
                        .sum();
                    preds[(step * num + w) * n + node] = scaler.inverse_scalar(z as f32);
                    targets[(step * num + w) * n + node] = target.as_slice()[step * n + node];
                }
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};

    #[test]
    fn captures_daily_seasonality() {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 6));
        let mut fed = FedLite::new();
        fed.fit(&split);
        let m = fed.evaluate(&split.test);
        // Traffic speeds ~ 20-70; a seasonal-aware linear model should get
        // single-digit MAE at horizon 1.
        assert!(m[0].mae < 8.0, "horizon-1 MAE {}", m[0].mae);
        let mut ha = crate::classical::HistoricalAverage;
        ha.fit(&split);
        let ha_m = ha.evaluate(&split.test);
        assert!(
            m[5].mae < ha_m[5].mae,
            "FED-lite {} should beat HA {} at horizon 6",
            m[5].mae,
            ha_m[5].mae
        );
    }

    #[test]
    fn feature_dim_consistent() {
        assert_eq!(FedLite::feature_dim(12), 12 + 8 + 1);
        let x = FedLite::features(&[0.0; 12], 0.5, 0.3);
        assert_eq!(x.len(), FedLite::feature_dim(12));
    }
}
