//! Holt's linear-trend exponential smoothing — the ETSformer proxy.
//!
//! Per window and node, run the level/trend recursions over the `h`
//! history steps and extrapolate `f` steps ahead. Closed form, no
//! training; the smoothing constants are the only knobs.

use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;

/// Holt's linear method.
pub struct Ets {
    /// Level smoothing constant.
    pub alpha: f32,
    /// Trend smoothing constant.
    pub beta: f32,
    /// Trend damping applied per forecast step (1 = undamped).
    pub phi: f32,
}

impl Ets {
    /// Defaults suited to 5-minute traffic/occupancy windows.
    pub fn new() -> Self {
        Ets {
            alpha: 0.5,
            beta: 0.1,
            phi: 0.9,
        }
    }

    fn forecast(&self, history: &[f32], f: usize) -> Vec<f32> {
        let mut level = history[0];
        let mut trend = if history.len() > 1 {
            history[1] - history[0]
        } else {
            0.0
        };
        for &y in &history[1..] {
            let prev_level = level;
            level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        // Damped-trend forecast: ŷ_{t+k} = level + (φ + φ² + … + φᵏ)·trend.
        let mut out = Vec::with_capacity(f);
        let mut damp = self.phi;
        let mut cum = 0.0f32;
        for _ in 0..f {
            cum += damp;
            out.push(level + trend * cum);
            damp *= self.phi;
        }
        out
    }
}

impl Default for Ets {
    fn default() -> Self {
        Ets::new()
    }
}

impl Forecaster for Ets {
    fn name(&self) -> &'static str {
        "ETSformer(ETS-lite)"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Lstm // temporal-only memory profile
    }

    fn fit(&mut self, _split: &ThreeWaySplit) -> FitSummary {
        FitSummary::default()
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        let (f, n) = (windows.f(), windows.nodes());
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            let h = input.dim(0);
            for node in 0..n {
                let history: Vec<f32> =
                    (0..h).map(|t| input.as_slice()[t * n + node]).collect();
                let fc = self.forecast(&history, f);
                for t in 0..f {
                    preds[(t * num + w) * n + node] = fc[t];
                    targets[(t * num + w) * n + node] = target.as_slice()[t * n + node];
                }
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{ForecastDataset, SplitSpec, ThreeWaySplit};

    #[test]
    fn constant_series_is_exact() {
        let data = ForecastDataset::new("c", Tensor::full([100, 2], 9.0), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(6, 4));
        let ets = Ets::new();
        let m = ets.evaluate(&split.test);
        assert!(m.iter().all(|m| m.mae < 1e-3), "{m:?}");
    }

    #[test]
    fn follows_linear_trend_better_than_last_value() {
        let vals: Vec<f32> = (0..200).map(|t| 5.0 + 0.5 * t as f32).collect();
        let data = ForecastDataset::new("t", Tensor::from_vec(vals, [200, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(8, 6));
        let ets = Ets::new();
        let m = ets.evaluate(&split.test);
        // Last-value prediction would err by 0.5·t per horizon: 3.0 at t=6.
        assert!(m[5].mae < 2.0, "horizon-6 MAE {}", m[5].mae);
    }

    #[test]
    fn damping_keeps_long_horizon_bounded() {
        // A single spike at the end of the window should not explode the
        // extrapolation thanks to trend damping.
        let mut vals = vec![10.0f32; 100];
        for chunk in vals.chunks_mut(10) {
            chunk[9] = 20.0;
        }
        let data = ForecastDataset::new("s", Tensor::from_vec(vals, [100, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(6, 6));
        let ets = Ets::new();
        let (pred, _) = ets.predict(&split.test);
        // Undamped trend would extrapolate a ±10-per-step slope to ±60 by
        // horizon 6; damping must keep the range well inside that.
        assert!(
            pred.max() < 60.0 && pred.min() > -50.0,
            "range [{}, {}]",
            pred.min(),
            pred.max()
        );
    }
}
