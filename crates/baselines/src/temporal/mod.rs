//! Temporal-only baselines (no spatial modeling).
//!
//! * [`LstmSeq2Seq`] — the paper's LSTM row: shared-weight per-node
//!   encoder-decoder LSTM.
//! * [`Ets`] — Holt's linear trend per window; the closed-form proxy for
//!   ETSformer in Table IX.
//! * [`FedLite`] — ridge regression on lags plus Fourier time features;
//!   the frequency-domain proxy for FEDformer.
//! * [`TimesNetLite`] — an MLP on the window with periodic time features;
//!   the proxy for TimesNet.
//!
//! All four see exactly the same inputs as the graph models but cannot
//! route information between series — which is why they trail the STGNNs
//! on spatially-correlated data (paper Tables III & IX).

pub mod ets;
pub mod fed_lite;
pub mod lstm;
pub mod timesnet_lite;

pub use ets::Ets;
pub use fed_lite::FedLite;
pub use lstm::LstmSeq2Seq;
pub use timesnet_lite::TimesNetLite;
