//! Shared training/evaluation loop for all gradient-trained baselines.
//!
//! Every deep baseline (temporal or graph) exposes a tape-level forward
//! pass through [`DeepForecast`]; [`fit_deep`] drives Adam with gradient
//! clipping, epoch shuffling, validation early-stopping and best-weight
//! restore — the same protocol `sagdfn-core::trainer` uses for SAGDFN, so
//! Table X's timing comparison is apples-to-apples.

use crate::FitSummary;
use sagdfn_autodiff::{Tape, Var};
use sagdfn_data::{average, Batch, SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_nn::{masked_mae, Adam, Mode, Optimizer, Params};
use sagdfn_tensor::{Rng64, Tensor};
use std::time::Instant;

/// Hyper-parameters shared by the deep baselines, sized per run scale.
#[derive(Clone, Debug)]
pub struct DeepConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Node-embedding width (adaptive-graph models).
    pub embed: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Early-stop patience in epochs.
    pub patience: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl DeepConfig {
    /// Sizing that mirrors `SagdfnConfig::for_scale`.
    pub fn for_scale(scale: sagdfn_data::Scale) -> Self {
        match scale {
            sagdfn_data::Scale::Tiny => DeepConfig {
                hidden: 16,
                embed: 8,
                epochs: 6,
                batch_size: 8,
                lr: 1e-2,
                grad_clip: 5.0,
                patience: 3,
                seed: 5,
            },
            sagdfn_data::Scale::Small => DeepConfig {
                hidden: 32,
                embed: 16,
                epochs: 10,
                batch_size: 16,
                lr: 1e-2,
                grad_clip: 5.0,
                patience: 5,
                seed: 5,
            },
            sagdfn_data::Scale::Paper => DeepConfig {
                hidden: 64,
                embed: 100,
                epochs: 60,
                batch_size: 64,
                lr: 1e-2,
                grad_clip: 5.0,
                patience: 10,
                seed: 5,
            },
        }
    }
}

/// A model trainable by [`fit_deep`].
pub trait DeepForecast {
    /// The parameter registry (bound to a fresh tape each step).
    fn params(&self) -> &Params;

    /// Mutable registry access for the optimizer.
    fn params_mut(&mut self) -> &mut Params;

    /// Tape-level forward pass returning raw-unit predictions `(f, B, N)`.
    /// `mode` carries train/eval semantics (dropout, cached structure) for
    /// models that distinguish them; stateless models may ignore it.
    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &sagdfn_nn::Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        mode: Mode,
    ) -> Var<'t>;
}

/// Rearranges a `(h, B, N, C)` window tensor into `(B·N, h·C)` rows —
/// the input layout of the direct (non-recurrent) models.
pub fn flatten_window(x: &Tensor) -> Tensor {
    let (h, b, n, c) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let src = x.as_slice();
    let mut out = vec![0.0f32; b * n * h * c];
    for t in 0..h {
        for bi in 0..b {
            for node in 0..n {
                let dst = ((bi * n + node) * h + t) * c;
                let s = ((t * b + bi) * n + node) * c;
                out[dst..dst + c].copy_from_slice(&src[s..s + c]);
            }
        }
    }
    Tensor::from_vec(out, [b * n, h * c])
}

/// Builds the zero-for-missing loss mask.
pub fn loss_mask(target: &Tensor) -> Tensor {
    let data = target
        .as_slice()
        .iter()
        .map(|&v| if v.abs() > 1e-4 { 1.0 } else { 0.0 })
        .collect();
    Tensor::from_vec(data, target.shape().clone())
}

/// Trains `model` with the shared protocol and returns timing/size stats.
pub fn fit_deep<M: DeepForecast + ?Sized>(
    model: &mut M,
    split: &ThreeWaySplit,
    cfg: &DeepConfig,
) -> FitSummary {
    let start = Instant::now();
    let mut opt = Adam::new(cfg.lr).with_clip(cfg.grad_clip);
    let mut shuffle_rng = Rng64::new(cfg.seed ^ 0xDEE9);
    let mut best_val = f32::INFINITY;
    let mut best_weights = model.params().snapshot();
    let mut stale = 0usize;
    let mut epochs_run = 0usize;
    for _epoch in 0..cfg.epochs {
        for ids in split.train.batch_ids(cfg.batch_size, Some(&mut shuffle_rng)) {
            let batch = split.train.make_batch(&ids);
            let tape = Tape::new();
            let bind = model.params().bind(&tape);
            let pred = model.forward(&tape, &bind, &batch, split.scaler, Mode::Train);
            let mask = loss_mask(&batch.y);
            let loss = masked_mae(pred, &batch.y, &mask);
            let grads = loss.backward();
            opt.step(model.params_mut(), &bind, &grads);
        }
        epochs_run += 1;
        let val = average(&evaluate_deep(model, &split.val, cfg.batch_size)).mae;
        if val < best_val {
            best_val = val;
            best_weights = model.params().snapshot();
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.patience {
                break;
            }
        }
    }
    model.params_mut().restore(&best_weights);
    let train_seconds = start.elapsed().as_secs_f64();
    FitSummary {
        train_seconds,
        epoch_seconds: train_seconds / epochs_run.max(1) as f64,
        param_count: model.params().num_scalars(),
        epochs_run,
    }
}

/// Predictions and targets over a split as `(f, ΣB, N)` raw tensors.
pub fn predict_deep<M: DeepForecast + ?Sized>(
    model: &M,
    windows: &SlidingWindows,
    batch_size: usize,
) -> (Tensor, Tensor) {
    assert!(!windows.is_empty(), "cannot predict on an empty split");
    let mut pred_parts = Vec::new();
    let mut target_parts = Vec::new();
    for ids in windows.batch_ids(batch_size, None) {
        let batch = windows.make_batch(&ids);
        let tape = Tape::new();
        let _no_grad = tape.no_grad();
        let bind = model.params().bind(&tape);
        let pred = model.forward(&tape, &bind, &batch, windows.scaler(), Mode::Eval);
        pred_parts.push(pred.value());
        target_parts.push(batch.y);
    }
    (
        Tensor::concat(&pred_parts.iter().collect::<Vec<_>>(), 1),
        Tensor::concat(&target_parts.iter().collect::<Vec<_>>(), 1),
    )
}

/// Per-horizon metrics of a deep model over a split.
pub fn evaluate_deep<M: DeepForecast + ?Sized>(
    model: &M,
    windows: &SlidingWindows,
    batch_size: usize,
) -> Vec<sagdfn_data::Metrics> {
    let (pred, target) = predict_deep(model, windows, batch_size);
    sagdfn_data::horizon_metrics(&pred, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_nn::{Activation, Mlp};

    /// Minimal DeepForecast: an MLP mapping the flattened window to all
    /// horizons at once.
    struct TinyDirect {
        params: Params,
        mlp: Mlp,
        h: usize,
        f: usize,
    }

    impl TinyDirect {
        fn new(h: usize, f: usize) -> Self {
            let mut params = Params::new();
            let mut rng = Rng64::new(0);
            let mlp = Mlp::new(
                &mut params,
                "mlp",
                &[h * 3, 16, f],
                Activation::Tanh,
                &mut rng,
            );
            TinyDirect { params, mlp, h, f }
        }
    }

    struct TinyWrapper(TinyDirect);
    impl DeepForecast for TinyWrapper {
        fn params(&self) -> &Params {
            &self.0.params
        }
        fn params_mut(&mut self) -> &mut Params {
            &mut self.0.params
        }
        fn forward<'t>(
            &self,
            tape: &'t Tape,
            bind: &sagdfn_nn::Binding<'t>,
            batch: &Batch,
            scaler: ZScore,
            _mode: Mode,
        ) -> Var<'t> {
            let (b, n) = (batch.x.dim(1), batch.x.dim(2));
            let mut steps = Vec::new();
            for t in 0..self.0.h {
                steps.push(
                    batch
                        .x
                        .slice_axis(0, t, t + 1)
                        .into_reshape([b * n, 3]),
                );
            }
            let x = Tensor::concat(&steps.iter().collect::<Vec<_>>(), 1);
            let xv = tape.constant(x);
            let out = self.0.mlp.forward(bind, xv); // (B*N, f)
            // (B*N, f) -> (f, B*N) -> (f, B, N)
            out.transpose_last2()
                .reshape([self.0.f, b, n])
                .scale(scaler.std)
                .add_scalar(scaler.mean)
        }
    }

    #[test]
    fn flatten_window_layout() {
        // (h=2, B=1, N=2, C=3): row (b,n) must hold [x_{t0}, x_{t1}] in
        // time order with channels adjacent.
        let x = Tensor::from_vec(
            (0..12).map(|v| v as f32).collect(),
            [2, 1, 2, 3],
        );
        let f = flatten_window(&x);
        assert_eq!(f.dims(), &[2, 6]);
        // Node 0: t0 channels (0,1,2) then t1 channels (6,7,8).
        assert_eq!(&f.as_slice()[0..6], &[0., 1., 2., 6., 7., 8.]);
        // Node 1: t0 (3,4,5) then t1 (9,10,11).
        assert_eq!(&f.as_slice()[6..12], &[3., 4., 5., 9., 10., 11.]);
    }

    #[test]
    fn deep_config_scales_are_ordered() {
        let t = DeepConfig::for_scale(sagdfn_data::Scale::Tiny);
        let s = DeepConfig::for_scale(sagdfn_data::Scale::Small);
        let p = DeepConfig::for_scale(sagdfn_data::Scale::Paper);
        assert!(t.hidden < s.hidden && s.hidden < p.hidden);
        assert!(t.epochs < s.epochs && s.epochs < p.epochs);
    }

    #[test]
    fn loss_mask_matches_convention() {
        let y = Tensor::from_vec(vec![0.0, 1.0, -2.0, 0.00001], [4]);
        assert_eq!(loss_mask(&y).as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn fit_deep_trains_and_early_stops_sanely() {
        let data = sagdfn_data::metr_la_like(sagdfn_data::Scale::Tiny);
        let split = sagdfn_data::ThreeWaySplit::new(
            data.dataset.subset_steps(0, 400),
            sagdfn_data::SplitSpec::paper(4, 4),
        );
        let mut model = TinyWrapper(TinyDirect::new(4, 4));
        let cfg = DeepConfig {
            epochs: 3,
            batch_size: 32,
            ..DeepConfig::for_scale(sagdfn_data::Scale::Tiny)
        };
        let summary = fit_deep(&mut model, &split, &cfg);
        assert!(summary.epochs_run >= 1 && summary.epochs_run <= 3);
        assert!(summary.param_count > 0);
        let metrics = evaluate_deep(&model, &split.test, 32);
        assert_eq!(metrics.len(), 4);
        // Should at least be in the right ballpark after 3 epochs.
        assert!(metrics[0].mae < 30.0, "MAE {}", metrics[0].mae);
    }
}
