//! Direct (non-recurrent) graph baselines: flatten-time projection,
//! residual graph-diffusion layers, direct multi-horizon head — the
//! STGCN / Graph WaveNet / MTGNN template. Family members differ in
//! their [`GraphSource`] and layer count.

use crate::deep::{
    evaluate_deep, fit_deep, flatten_window, predict_deep, DeepConfig, DeepForecast,
};
use crate::graph::learner::GraphSource;
use crate::{FitSummary, Forecaster};
use sagdfn_autodiff::{Tape, Var};
use sagdfn_core::gconv::Adjacency;
use sagdfn_data::{Batch, Metrics, SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_nn::{Binding, Linear, Mode, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// Flatten-time graph network with residual diffusion blocks.
pub struct DirectGraphNet {
    params: Params,
    source: GraphSource,
    in_proj: Linear,
    blocks: Vec<Linear>,
    head: Linear,
    h: usize,
    f: usize,
    cfg: DeepConfig,
    name: &'static str,
    family: ModelFamily,
}

impl DirectGraphNet {
    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &'static str,
        family: ModelFamily,
        h: usize,
        f: usize,
        layers: usize,
        cfg: DeepConfig,
        make_source: impl FnOnce(&mut Params, &mut Rng64) -> GraphSource,
    ) -> Self {
        let mut params = Params::new();
        let mut rng = Rng64::new(cfg.seed ^ (family as u64) << 3);
        let source = make_source(&mut params, &mut rng);
        let in_proj = Linear::new(&mut params, "in", h * 3, cfg.hidden, true, &mut rng);
        let blocks = (0..layers)
            .map(|i| {
                Linear::new(
                    &mut params,
                    &format!("block{i}"),
                    cfg.hidden,
                    cfg.hidden,
                    true,
                    &mut rng,
                )
            })
            .collect();
        let head = Linear::new(&mut params, "head", cfg.hidden, f, true, &mut rng);
        DirectGraphNet {
            params,
            source,
            in_proj,
            blocks,
            head,
            h,
            f,
            cfg,
            name,
            family,
        }
    }

    /// STGCN: predefined topology, 2 blocks.
    pub fn stgcn(topology: Tensor, h: usize, f: usize, cfg: DeepConfig) -> Self {
        Self::build("STGCN", ModelFamily::Stgcn, h, f, 2, cfg, move |_, _| {
            GraphSource::Predefined(topology)
        })
    }

    /// Graph WaveNet: mixed predefined + adaptive support, 2 blocks.
    pub fn graph_wavenet(topology: Tensor, h: usize, f: usize, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build(
            "GRAPH WaveNet",
            ModelFamily::GraphWaveNet,
            h,
            f,
            2,
            cfg,
            move |p, r| GraphSource::mixed(p, topology, d, r),
        )
    }

    /// MTGNN: unidirectional bi-embedding adjacency, 3 blocks.
    pub fn mtgnn(n: usize, h: usize, f: usize, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build("MTGNN", ModelFamily::Mtgnn, h, f, 3, cfg, move |p, r| {
            GraphSource::adaptive_bi(p, n, d, true, r)
        })
    }

    /// GMAN: embedding attention adjacency, 2 blocks.
    pub fn gman(n: usize, h: usize, f: usize, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build("GMAN", ModelFamily::Gman, h, f, 2, cfg, move |p, r| {
            GraphSource::attention(p, n, d, r)
        })
    }

    /// ASTGCN: attention adjacency with a deeper stack.
    pub fn astgcn(n: usize, h: usize, f: usize, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build("ASTGCN", ModelFamily::Astgcn, h, f, 3, cfg, move |p, r| {
            GraphSource::attention(p, n, d, r)
        })
    }

    /// STSGCN: predefined topology with a deeper synchronous stack.
    pub fn stsgcn(topology: Tensor, h: usize, f: usize, cfg: DeepConfig) -> Self {
        Self::build("STSGCN", ModelFamily::Stsgcn, h, f, 3, cfg, move |_, _| {
            GraphSource::Predefined(topology)
        })
    }
}

impl DeepForecast for DirectGraphNet {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        _mode: Mode,
    ) -> Var<'t> {
        let (b, n) = (batch.x.dim(1), batch.x.dim(2));
        assert_eq!(batch.x.dim(0), self.h, "window length mismatch");
        let adj = Adjacency::dense(self.source.adjacency(tape, bind));
        let x = tape.constant(flatten_window(&batch.x)); // (B·N, h·3)
        let mut hcur = self
            .in_proj
            .forward(bind, x)
            .relu()
            .reshape([b, n, self.cfg.hidden]);
        for block in &self.blocks {
            let mixed = adj.diffuse(hcur);
            hcur = block.forward(bind, mixed).relu().add(&hcur);
        }
        let out = self.head.forward(bind, hcur); // (B, N, f)
        out.reshape([b * n, self.f])
            .transpose_last2() // (f, B·N)
            .reshape([self.f, b, n])
            .scale(scaler.std)
            .add_scalar(scaler.mean)
    }
}

impl Forecaster for DirectGraphNet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn family(&self) -> ModelFamily {
        self.family
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let cfg = self.cfg.clone();
        fit_deep(self, split, &cfg)
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        predict_deep(self, windows, self.cfg.batch_size)
    }

    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        evaluate_deep(self, windows, self.cfg.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec};

    fn tiny() -> (sagdfn_data::synth::TrafficData, ThreeWaySplit, DeepConfig) {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 350).clone(),
            SplitSpec::paper(4, 4),
        );
        let mut cfg = DeepConfig::for_scale(Scale::Tiny);
        cfg.epochs = 2;
        cfg.batch_size = 16;
        (data, split, cfg)
    }

    #[test]
    fn stgcn_trains_to_sane_error() {
        let (data, split, cfg) = tiny();
        let topo = data.graph.adj.topk_rows(6).weights().clone();
        let mut model = DirectGraphNet::stgcn(topo, 4, 4, cfg);
        model.fit(&split);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae < 15.0, "STGCN horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn mtgnn_and_gman_run() {
        let (data, split, cfg) = tiny();
        let n = data.dataset.nodes();
        for mut model in [
            DirectGraphNet::mtgnn(n, 4, 4, cfg.clone()),
            DirectGraphNet::gman(n, 4, 4, cfg.clone()),
        ] {
            model.fit(&split);
            let m = model.evaluate(&split.test);
            assert!(m[0].mae.is_finite() && m[0].mae < 20.0, "{}", model.name());
        }
    }

    #[test]
    fn names_match_paper_rows() {
        let (data, _, cfg) = tiny();
        let n = data.dataset.nodes();
        let topo = data.graph.adj.weights().clone();
        assert_eq!(
            DirectGraphNet::graph_wavenet(topo.clone(), 4, 4, cfg.clone()).name(),
            "GRAPH WaveNet"
        );
        assert_eq!(DirectGraphNet::astgcn(n, 4, 4, cfg.clone()).name(), "ASTGCN");
        assert_eq!(DirectGraphNet::stsgcn(topo, 4, 4, cfg).name(), "STSGCN");
    }
}
