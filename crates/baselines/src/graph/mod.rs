//! Graph-based baselines, organized by the paper's own taxonomy
//! (Section V.A): *predefined* adjacency, *adaptive inner-product*
//! adjacency, *attention* adjacency, and *pairwise-FFN* adjacency.
//!
//! Two architectural templates cover the ten graph baselines:
//!
//! * [`recurrent::RecurrentGraphNet`] — encoder-decoder GRU with graph
//!   convolutions (reusing `sagdfn-core`'s `OneStepFastGConv` with a
//!   dense adjacency): DCRNN, AGCRN, GTS, STEP, D2STGNN;
//! * [`direct::DirectGraphNet`] — flatten-time projection, residual
//!   diffusion layers, direct multi-horizon head: STGCN, Graph WaveNet,
//!   MTGNN, GMAN, ASTGCN, STSGCN.
//!
//! Each model keeps the *graph-learning mechanism* of its namesake —
//! that mechanism is what the paper's comparison isolates — while depth
//! and embellishments are reduced (see DESIGN.md §2).

pub mod direct;
pub mod learner;
pub mod recurrent;

pub use direct::DirectGraphNet;
pub use learner::GraphSource;
pub use recurrent::RecurrentGraphNet;
