//! Graph-learning mechanisms of the baseline families.

use sagdfn_autodiff::{Tape, Var};
use sagdfn_nn::{Activation, Binding, Linear, Mlp, ParamId, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// How a baseline derives its dense `N×N` adjacency each step.
pub enum GraphSource {
    /// Fixed topology matrix (DCRNN, STGCN, STSGCN).
    Predefined(Tensor),
    /// `softmax(relu(E E^T))` from one embedding table (AGCRN).
    AdaptiveInner {
        /// Node embeddings `E ∈ R^{N×d}`.
        e: ParamId,
    },
    /// Bidirectional embeddings (Graph WaveNet / MTGNN):
    /// `act(E1 E2^T)` row-normalized; `uni = true` uses MTGNN's
    /// antisymmetric `relu(tanh(E1 E2^T − E2 E1^T))`.
    AdaptiveBi {
        /// Source embeddings.
        e1: ParamId,
        /// Destination embeddings.
        e2: ParamId,
        /// MTGNN's unidirectional construction.
        uni: bool,
    },
    /// Blend of a predefined topology and an adaptive inner-product
    /// matrix (Graph WaveNet's double support; D2STGNN's decoupled graph).
    Mixed {
        /// The fixed support.
        topo: Tensor,
        /// Adaptive embeddings.
        e: ParamId,
    },
    /// Query/key attention over static node embeddings (GMAN, ASTGCN).
    Attention {
        /// Embeddings attended over.
        e: ParamId,
        /// Query projection.
        wq: Linear,
        /// Key projection.
        wk: Linear,
        /// `1/√d_k` temperature.
        scale: f32,
    },
    /// Pairwise FFN over per-node features extracted from the training
    /// series (GTS, STEP): `A_ij = σ(FFN([φ_i ‖ φ_j]))`. Features are
    /// supplied at fit time via [`GraphSource::set_features`].
    Pairwise {
        /// Per-node feature table `(N, F)`; `None` until fit.
        feats: Option<Tensor>,
        /// The pairwise scorer.
        mlp: Mlp,
    },
}

impl GraphSource {
    /// AGCRN-style source.
    pub fn adaptive_inner(params: &mut Params, n: usize, d: usize, rng: &mut Rng64) -> Self {
        GraphSource::AdaptiveInner {
            e: params.add("graph.e", Tensor::rand_normal([n, d], 0.0, 0.3, rng)),
        }
    }

    /// Graph WaveNet / MTGNN-style source.
    pub fn adaptive_bi(
        params: &mut Params,
        n: usize,
        d: usize,
        uni: bool,
        rng: &mut Rng64,
    ) -> Self {
        GraphSource::AdaptiveBi {
            e1: params.add("graph.e1", Tensor::rand_normal([n, d], 0.0, 0.3, rng)),
            e2: params.add("graph.e2", Tensor::rand_normal([n, d], 0.0, 0.3, rng)),
            uni,
        }
    }

    /// Mixed predefined + adaptive source.
    pub fn mixed(params: &mut Params, topo: Tensor, d: usize, rng: &mut Rng64) -> Self {
        let n = topo.dim(0);
        GraphSource::Mixed {
            topo,
            e: params.add("graph.e", Tensor::rand_normal([n, d], 0.0, 0.3, rng)),
        }
    }

    /// GMAN/ASTGCN-style attention source.
    pub fn attention(params: &mut Params, n: usize, d: usize, rng: &mut Rng64) -> Self {
        GraphSource::Attention {
            e: params.add("graph.e", Tensor::rand_normal([n, d], 0.0, 0.3, rng)),
            wq: Linear::new(params, "graph.wq", d, d, false, rng),
            wk: Linear::new(params, "graph.wk", d, d, false, rng),
            scale: 1.0 / (d as f32).sqrt(),
        }
    }

    /// GTS/STEP-style pairwise source. `depth` ≥ 1 hidden layers (STEP's
    /// "pre-training enhanced" scorer gets a deeper stack).
    pub fn pairwise(params: &mut Params, feat_dim: usize, depth: usize, rng: &mut Rng64) -> Self {
        let mut dims = vec![2 * feat_dim];
        for _ in 0..depth {
            dims.push(feat_dim.max(8));
        }
        dims.push(1);
        GraphSource::Pairwise {
            feats: None,
            mlp: Mlp::new(params, "graph.pairwise", &dims, Activation::Relu, rng),
        }
    }

    /// Installs the per-node feature table (pairwise sources only).
    pub fn set_features(&mut self, features: Tensor) {
        if let GraphSource::Pairwise { feats, .. } = self {
            *feats = Some(features);
        }
    }

    /// Extracts GTS-style node features from a training series: per-node
    /// mean, std, and a `buckets`-point average daily profile, z-scored
    /// across nodes per column.
    pub fn series_features(
        values: &Tensor,
        steps_per_day: usize,
        buckets: usize,
    ) -> Tensor {
        let (t_len, n) = (values.dim(0), values.dim(1));
        let v = values.as_slice();
        let fdim = 2 + buckets;
        let mut out = vec![0.0f32; n * fdim];
        for node in 0..n {
            let series: Vec<f32> = (0..t_len).map(|t| v[t * n + node]).collect();
            let mean = series.iter().sum::<f32>() / t_len as f32;
            let var =
                series.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t_len as f32;
            out[node * fdim] = mean;
            out[node * fdim + 1] = var.sqrt();
            let mut sums = vec![0.0f32; buckets];
            let mut counts = vec![0usize; buckets];
            for (t, &x) in series.iter().enumerate() {
                let slot = (t % steps_per_day) * buckets / steps_per_day.max(1);
                sums[slot.min(buckets - 1)] += x;
                counts[slot.min(buckets - 1)] += 1;
            }
            for bkt in 0..buckets {
                out[node * fdim + 2 + bkt] = sums[bkt] / counts[bkt].max(1) as f32;
            }
        }
        // z-score each column so FFN inputs are well-conditioned.
        for col in 0..fdim {
            let mean = (0..n).map(|i| out[i * fdim + col]).sum::<f32>() / n as f32;
            let var = (0..n)
                .map(|i| (out[i * fdim + col] - mean).powi(2))
                .sum::<f32>()
                / n as f32;
            let std = var.sqrt().max(1e-6);
            for i in 0..n {
                out[i * fdim + col] = (out[i * fdim + col] - mean) / std;
            }
        }
        Tensor::from_vec(out, [n, fdim])
    }

    /// Computes the dense adjacency for this step.
    pub fn adjacency<'t>(&self, tape: &'t Tape, bind: &Binding<'t>) -> Var<'t> {
        match self {
            GraphSource::Predefined(topo) => tape.constant(topo.clone()),
            GraphSource::AdaptiveInner { e } => {
                let ev = bind.var(*e);
                ev.matmul(&ev.transpose_last2()).relu().softmax_rows()
            }
            GraphSource::AdaptiveBi { e1, e2, uni } => {
                let a = bind.var(*e1).matmul(&bind.var(*e2).transpose_last2());
                if *uni {
                    a.sub(&a.transpose_last2()).tanh().relu()
                } else {
                    a.relu().softmax_rows()
                }
            }
            GraphSource::Mixed { topo, e } => {
                let ev = bind.var(*e);
                let adaptive = ev.matmul(&ev.transpose_last2()).relu().softmax_rows();
                let fixed = tape.constant(topo.clone());
                adaptive.scale(0.5).add(&fixed.scale(0.5))
            }
            GraphSource::Attention { e, wq, wk, scale } => {
                let ev = bind.var(*e);
                let q = wq.forward(bind, ev);
                let k = wk.forward(bind, ev);
                q.matmul(&k.transpose_last2()).scale(*scale).softmax_rows()
            }
            GraphSource::Pairwise { feats, mlp } => {
                let feats = feats
                    .as_ref()
                    .expect("pairwise graph source needs set_features() before use");
                let n = feats.dim(0);
                let fv = tape.constant(feats.clone());
                let left: Vec<usize> =
                    (0..n).flat_map(|i| std::iter::repeat_n(i, n)).collect();
                let right: Vec<usize> = (0..n).flat_map(|_| 0..n).collect();
                let pair = Var::concat(
                    &[fv.index_select(0, &left), fv.index_select(0, &right)],
                    1,
                ); // (N², 2F)
                mlp.forward(bind, pair).sigmoid().reshape([n, n])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_autodiff::Tape;

    fn check_shape_and_grad(build: impl FnOnce(&mut Params, &mut Rng64) -> GraphSource, n: usize) {
        let mut params = Params::new();
        let mut rng = Rng64::new(0);
        let src = build(&mut params, &mut rng);
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let a = src.adjacency(&tape, &bind);
        assert_eq!(a.dims(), vec![n, n]);
        assert!(a.value().all_finite());
        if !params.is_empty() {
            let grads = a.square().sum().backward();
            let any = params.ids().any(|id| bind.grad(&grads, id).is_some());
            assert!(any, "no parameter received gradients");
        }
    }

    #[test]
    fn predefined_is_constant() {
        let topo = Tensor::rand_uniform([6, 6], 0.0, 1.0, &mut Rng64::new(1));
        check_shape_and_grad(|_, _| GraphSource::Predefined(topo.clone()), 6);
    }

    #[test]
    fn adaptive_inner_rows_are_distributions() {
        let mut params = Params::new();
        let mut rng = Rng64::new(2);
        let src = GraphSource::adaptive_inner(&mut params, 8, 4, &mut rng);
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let a = src.adjacency(&tape, &bind).value();
        for row in a.as_slice().chunks(8) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
    }

    #[test]
    fn adaptive_bi_uni_is_nonnegative() {
        let mut params = Params::new();
        let mut rng = Rng64::new(3);
        let src = GraphSource::adaptive_bi(&mut params, 7, 4, true, &mut rng);
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let a = src.adjacency(&tape, &bind).value();
        assert!(a.as_slice().iter().all(|&v| v >= 0.0));
        // Antisymmetric construction: a_ij > 0 implies a_ji == 0.
        for i in 0..7 {
            for j in 0..7 {
                let (x, y) = (a.at(&[i, j]), a.at(&[j, i]));
                assert!(x == 0.0 || y == 0.0, "both directions active at ({i},{j})");
            }
        }
    }

    #[test]
    fn attention_and_mixed_shapes() {
        check_shape_and_grad(|p, r| GraphSource::attention(p, 5, 4, r), 5);
        let topo = Tensor::rand_uniform([5, 5], 0.0, 1.0, &mut Rng64::new(4));
        check_shape_and_grad(|p, r| GraphSource::mixed(p, topo.clone(), 4, r), 5);
    }

    #[test]
    fn pairwise_needs_features() {
        let mut params = Params::new();
        let mut rng = Rng64::new(5);
        let mut src = GraphSource::pairwise(&mut params, 6, 1, &mut rng);
        src.set_features(Tensor::rand_uniform([4, 6], -1.0, 1.0, &mut rng));
        let tape = Tape::new();
        let bind = params.bind(&tape);
        let a = src.adjacency(&tape, &bind).value();
        assert_eq!(a.dims(), &[4, 4]);
        assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "set_features")]
    fn pairwise_without_features_panics() {
        let mut params = Params::new();
        let mut rng = Rng64::new(6);
        let src = GraphSource::pairwise(&mut params, 6, 1, &mut rng);
        let tape = Tape::new();
        let bind = params.bind(&tape);
        src.adjacency(&tape, &bind);
    }

    #[test]
    fn series_features_shape_and_normalization() {
        let mut rng = Rng64::new(7);
        let vals = Tensor::rand_uniform([288 * 2, 5], 10.0, 60.0, &mut rng);
        let f = GraphSource::series_features(&vals, 288, 8);
        assert_eq!(f.dims(), &[5, 10]);
        // Columns are z-scored: per-column mean ≈ 0.
        for col in 0..10 {
            let mean: f32 = (0..5).map(|i| f.as_slice()[i * 10 + col]).sum::<f32>() / 5.0;
            assert!(mean.abs() < 1e-4, "col {col} mean {mean}");
        }
    }
}
