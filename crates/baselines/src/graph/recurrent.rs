//! Recurrent graph baselines: encoder-decoder GRU with dense graph
//! convolutions — the DCRNN family. Reuses `sagdfn-core`'s
//! `OneStepFastGConv` cell with [`Adjacency::Dense`], which is exactly
//! DCRNN's diffusion-convolutional GRU; the family members differ only in
//! where the adjacency comes from ([`GraphSource`]) and whether a
//! decoupled per-node temporal branch is added (D2STGNN).

use crate::deep::{evaluate_deep, fit_deep, predict_deep, DeepConfig, DeepForecast};
use crate::graph::learner::GraphSource;
use crate::{FitSummary, Forecaster};
use sagdfn_autodiff::{Tape, Var};
use sagdfn_core::cell::OneStepFastGConv;
use sagdfn_core::gconv::Adjacency;
use sagdfn_data::{Batch, Metrics, SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_nn::{Binding, GruCell, Linear, Mode, Params};
use sagdfn_tensor::{Rng64, Tensor};

/// Encoder-decoder graph GRU with a pluggable adjacency source.
pub struct RecurrentGraphNet {
    params: Params,
    source: GraphSource,
    encoder: OneStepFastGConv,
    decoder: OneStepFastGConv,
    /// D2STGNN's decoupled temporal branch: a per-node GRU whose
    /// prediction is averaged with the graph branch's.
    temporal_branch: Option<(GruCell, Linear)>,
    hidden: usize,
    cfg: DeepConfig,
    name: &'static str,
    family: ModelFamily,
}

impl RecurrentGraphNet {
    fn build(
        name: &'static str,
        family: ModelFamily,
        cfg: DeepConfig,
        depth: usize,
        make_source: impl FnOnce(&mut Params, &mut Rng64) -> GraphSource,
        dual: bool,
    ) -> Self {
        let mut params = Params::new();
        let mut rng = Rng64::new(cfg.seed ^ family as u64);
        let source = make_source(&mut params, &mut rng);
        let encoder =
            OneStepFastGConv::new(&mut params, "enc", 3, cfg.hidden, None, depth, 0.0, &mut rng);
        let decoder =
            OneStepFastGConv::new(&mut params, "dec", 3, cfg.hidden, Some(1), depth, 0.0, &mut rng);
        let temporal_branch = dual.then(|| {
            (
                GruCell::new(&mut params, "tbranch", 3, cfg.hidden, &mut rng),
                Linear::new(&mut params, "tbranch.head", cfg.hidden, 1, true, &mut rng),
            )
        });
        RecurrentGraphNet {
            params,
            source,
            encoder,
            decoder,
            temporal_branch,
            hidden: cfg.hidden,
            cfg,
            name,
            family,
        }
    }

    /// DCRNN: predefined row-topology adjacency.
    pub fn dcrnn(topology: Tensor, cfg: DeepConfig) -> Self {
        Self::build(
            "DCRNN",
            ModelFamily::Dcrnn,
            cfg,
            2,
            move |_, _| GraphSource::Predefined(topology),
            false,
        )
    }

    /// AGCRN: adaptive inner-product adjacency.
    pub fn agcrn(n: usize, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build(
            "AGCRN",
            ModelFamily::Agcrn,
            cfg,
            2,
            move |p, r| GraphSource::adaptive_inner(p, n, d, r),
            false,
        )
    }

    /// GTS: pairwise-FFN adjacency over training-series features.
    pub fn gts(feat_dim: usize, cfg: DeepConfig) -> Self {
        Self::build(
            "GTS",
            ModelFamily::Gts,
            cfg,
            2,
            move |p, r| GraphSource::pairwise(p, feat_dim, 1, r),
            false,
        )
    }

    /// STEP: GTS with a deeper (pretraining-enhanced) pairwise scorer.
    pub fn step(feat_dim: usize, cfg: DeepConfig) -> Self {
        Self::build(
            "STEP",
            ModelFamily::Step,
            cfg,
            3,
            move |p, r| GraphSource::pairwise(p, feat_dim, 2, r),
            false,
        )
    }

    /// D2STGNN(c): mixed predefined/adaptive graph plus a decoupled
    /// per-node temporal branch.
    pub fn d2stgnn(topology: Tensor, cfg: DeepConfig) -> Self {
        let d = cfg.embed;
        Self::build(
            "D2STGNN(c)",
            ModelFamily::D2stgnn,
            cfg,
            2,
            move |p, r| GraphSource::mixed(p, topology, d, r),
            true,
        )
    }

    /// Installs pairwise features (GTS/STEP) from the training series.
    fn prime_features(&mut self, split: &ThreeWaySplit) {
        if matches!(self.source, GraphSource::Pairwise { .. }) {
            let data = split.train.dataset();
            let steps_per_day = (24 * 60 / data.interval_min as usize).max(1);
            let feats = GraphSource::series_features(&data.values, steps_per_day, 6);
            self.source.set_features(feats);
        }
    }
}

impl DeepForecast for RecurrentGraphNet {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bind: &Binding<'t>,
        batch: &Batch,
        scaler: ZScore,
        mode: Mode,
    ) -> Var<'t> {
        let (h_len, b, n) = (batch.x.dim(0), batch.x.dim(1), batch.x.dim(2));
        let f_len = batch.y.dim(0);
        let adj = Adjacency::dense(self.source.adjacency(tape, bind));

        let mut h = tape.constant(Tensor::zeros([b, n, self.hidden]));
        let mut h_temporal = tape.constant(Tensor::zeros([b * n, self.hidden]));
        for t in 0..h_len {
            let x_t = batch.x.slice_axis(0, t, t + 1);
            let xg = tape.constant(x_t.reshape([b, n, 3]));
            h = self.encoder.step_hidden(bind, &adj, xg, h, mode);
            if let Some((gru, _)) = &self.temporal_branch {
                let xt = tape.constant(x_t.into_reshape([b * n, 3]));
                h_temporal = gru.step(bind, xt, h_temporal);
            }
        }

        let mut value = tape.constant(
            scaler
                .transform(&batch.x_last_raw)
                .into_reshape([b, n, 1]),
        );
        let mut preds = Vec::with_capacity(f_len);
        for t in 0..f_len {
            let cov = tape.constant(
                batch
                    .future_cov
                    .slice_axis(0, t, t + 1)
                    .into_reshape([b, n, 2]),
            );
            let dec_in = Var::concat(&[value, cov], 2);
            let (h_new, mut pred) = self.decoder.step(bind, &adj, dec_in, h, mode);
            h = h_new;
            if let Some((gru, head)) = &self.temporal_branch {
                let xt = dec_in.reshape([b * n, 3]);
                h_temporal = gru.step(bind, xt, h_temporal);
                let p2 = head.forward(bind, h_temporal).reshape([b, n, 1]);
                pred = pred.add(&p2).scale(0.5);
            }
            preds.push(pred);
            value = pred;
        }
        Var::stack(&preds, 0)
            .reshape([f_len, b, n])
            .scale(scaler.std)
            .add_scalar(scaler.mean)
    }
}

impl Forecaster for RecurrentGraphNet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn family(&self) -> ModelFamily {
        self.family
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        self.prime_features(split);
        let cfg = self.cfg.clone();
        fit_deep(self, split, &cfg)
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        predict_deep(self, windows, self.cfg.batch_size)
    }

    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        evaluate_deep(self, windows, self.cfg.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{Scale, SplitSpec};

    fn tiny() -> (sagdfn_data::synth::TrafficData, ThreeWaySplit, DeepConfig) {
        let data = sagdfn_data::metr_la_like(Scale::Tiny);
        let split = ThreeWaySplit::new(
            data.dataset.subset_steps(0, 350).clone(),
            SplitSpec::paper(4, 4),
        );
        let mut cfg = DeepConfig::for_scale(Scale::Tiny);
        cfg.epochs = 2;
        cfg.batch_size = 16;
        (data, split, cfg)
    }

    #[test]
    fn dcrnn_trains() {
        let (data, split, cfg) = tiny();
        let topo = data.graph.adj.topk_rows(6).weights().clone();
        let mut model = RecurrentGraphNet::dcrnn(topo, cfg);
        let s = model.fit(&split);
        assert!(s.epochs_run >= 1);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae < 15.0, "DCRNN horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn agcrn_trains() {
        let (data, split, cfg) = tiny();
        let mut model = RecurrentGraphNet::agcrn(data.dataset.nodes(), cfg);
        model.fit(&split);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae < 15.0, "AGCRN horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn gts_primes_features_and_trains() {
        let (_, split, cfg) = tiny();
        let mut model = RecurrentGraphNet::gts(8, cfg);
        let s = model.fit(&split);
        assert!(s.param_count > 0);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae.is_finite());
    }

    #[test]
    fn d2stgnn_dual_branch_runs() {
        let (data, split, cfg) = tiny();
        let topo = data.graph.adj.topk_rows(6).weights().clone();
        let mut model = RecurrentGraphNet::d2stgnn(topo, cfg);
        model.fit(&split);
        let m = model.evaluate(&split.test);
        assert!(m[0].mae < 15.0, "D2STGNN horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn names_match_paper_rows() {
        let (data, _, cfg) = tiny();
        let topo = data.graph.adj.weights().clone();
        assert_eq!(RecurrentGraphNet::dcrnn(topo, cfg.clone()).name(), "DCRNN");
        assert_eq!(RecurrentGraphNet::agcrn(5, cfg.clone()).name(), "AGCRN");
        assert_eq!(RecurrentGraphNet::gts(8, cfg.clone()).name(), "GTS");
        assert_eq!(RecurrentGraphNet::step(8, cfg).name(), "STEP");
    }
}
