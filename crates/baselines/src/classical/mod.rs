//! Classical statistical baselines: Historical Average, ARIMA, VAR, SVR.

pub mod arima;
pub mod ha;
pub mod svr;
pub mod var;

pub use arima::Arima;
pub use ha::HistoricalAverage;
pub use svr::Svr;
pub use var::Var;
