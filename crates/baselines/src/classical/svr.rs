//! Linear ε-insensitive Support Vector Regression on lag features.
//!
//! One linear model per forecast horizon, shared across nodes (features =
//! the node's scaled lag window), trained by subgradient descent on the
//! ε-insensitive loss with L2 regularization — the primal linear-SVR
//! formulation. The paper's SVR row behaves the same way: a linear model
//! that cannot express the nonlinear rush-hour dynamics, landing near the
//! bottom of the deep tables.

use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit, ZScore};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::{Rng64, Tensor};
use std::time::Instant;

/// Primal linear SVR, one weight vector per horizon step.
pub struct Svr {
    /// ε-insensitive tube half-width (in scaled units).
    pub epsilon: f32,
    /// L2 regularization strength.
    pub lambda: f32,
    /// SGD epochs over the training windows.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// `[f][h + 1]` weights (lags + intercept), in scaled space.
    weights: Vec<Vec<f32>>,
    scaler: Option<ZScore>,
    seed: u64,
}

impl Svr {
    /// Defaults tuned for scaled traffic data.
    pub fn new() -> Self {
        Svr {
            epsilon: 0.05,
            lambda: 1e-4,
            epochs: 8,
            lr: 0.02,
            weights: Vec::new(),
            scaler: None,
            seed: 77,
        }
    }
}

impl Default for Svr {
    fn default() -> Self {
        Svr::new()
    }
}

impl Forecaster for Svr {
    fn name(&self) -> &'static str {
        "SVR"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Svr
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let start = Instant::now();
        let scaler = split.scaler;
        self.scaler = Some(scaler);
        let windows = &split.train;
        let (h, f, n) = (windows.h(), windows.f(), windows.nodes());
        let dim = h + 1;
        self.weights = vec![vec![0.0; dim]; f];
        let mut rng = Rng64::new(self.seed);
        for _ in 0..self.epochs {
            // Sample windows and nodes stochastically.
            let samples = (windows.len() * n).min(20_000);
            for _ in 0..samples {
                let w = rng.next_below(windows.len());
                let node = rng.next_below(n);
                let (input, target) = windows.raw_window(w);
                let x: Vec<f32> = (0..h)
                    .map(|t| scaler.transform_scalar(input.as_slice()[t * n + node]))
                    .chain(std::iter::once(1.0))
                    .collect();
                for (step, weights) in self.weights.iter_mut().enumerate() {
                    let y = scaler.transform_scalar(target.as_slice()[step * n + node]);
                    let pred: f32 = weights.iter().zip(&x).map(|(w, x)| w * x).sum();
                    let err = pred - y;
                    // Subgradient of the ε-insensitive loss.
                    let g = if err > self.epsilon {
                        1.0
                    } else if err < -self.epsilon {
                        -1.0
                    } else {
                        0.0
                    };
                    for (wi, &xi) in weights.iter_mut().zip(&x) {
                        *wi -= self.lr * (g * xi + self.lambda * *wi);
                    }
                }
            }
        }
        FitSummary {
            train_seconds: start.elapsed().as_secs_f64(),
            epoch_seconds: start.elapsed().as_secs_f64() / self.epochs as f64,
            param_count: f * dim,
            epochs_run: self.epochs,
        }
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        assert!(!self.weights.is_empty(), "fit() before predict()");
        let scaler = self.scaler.expect("scaler set in fit");
        let (h, f, n) = (windows.h(), windows.f(), windows.nodes());
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            for node in 0..n {
                let x: Vec<f32> = (0..h)
                    .map(|t| scaler.transform_scalar(input.as_slice()[t * n + node]))
                    .chain(std::iter::once(1.0))
                    .collect();
                for step in 0..f {
                    let scaled: f32 = self.weights[step]
                        .iter()
                        .zip(&x)
                        .map(|(w, x)| w * x)
                        .sum();
                    preds[(step * num + w) * n + node] = scaler.inverse_scalar(scaled);
                    targets[(step * num + w) * n + node] = target.as_slice()[step * n + node];
                }
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{ForecastDataset, SplitSpec};

    #[test]
    fn fits_identity_mapping() {
        // Constant-per-window series: predicting the last lag is optimal
        // and linear, so SVR should get close.
        let mut vals = Vec::new();
        let mut rng = Rng64::new(1);
        let mut level = 50.0f32;
        for _ in 0..400 {
            level = 50.0 + 0.98 * (level - 50.0) + rng.next_gaussian() * 0.2;
            vals.push(level);
        }
        let data = ForecastDataset::new("s", Tensor::from_vec(vals, [400, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(8, 4));
        let mut svr = Svr::new();
        svr.fit(&split);
        let m = svr.evaluate(&split.test);
        assert!(m[0].mae < 1.0, "horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn weights_stay_bounded() {
        let data = ForecastDataset::new("c", Tensor::full([300, 2], 30.0), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(6, 3));
        let mut svr = Svr::new();
        svr.fit(&split);
        for row in &svr.weights {
            assert!(row.iter().all(|w| w.abs() < 10.0), "{row:?}");
        }
    }
}
