//! Historical Average: predict each node's future as the mean of its
//! input window. The weakest sane baseline; used as a floor in the tables
//! and as a sanity anchor in tests (every deep model must beat it on
//! seasonal data with horizon-dependent trends).

use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;

/// Window-mean forecaster.
#[derive(Default)]
pub struct HistoricalAverage;

impl Forecaster for HistoricalAverage {
    fn name(&self) -> &'static str {
        "HA"
    }

    fn family(&self) -> ModelFamily {
        // Zero-memory; report under VAR's classical bucket.
        ModelFamily::Var
    }

    fn fit(&mut self, _split: &ThreeWaySplit) -> FitSummary {
        FitSummary::default()
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        let (f, n) = (windows.f(), windows.nodes());
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            // Per-node mean over the h input steps, ignoring zeros
            // (missing readings) so they don't drag the average down.
            let h = input.dim(0);
            for node in 0..n {
                let mut sum = 0.0f32;
                let mut cnt = 0usize;
                for t in 0..h {
                    let v = input.as_slice()[t * n + node];
                    if v != 0.0 {
                        sum += v;
                        cnt += 1;
                    }
                }
                let mean = if cnt > 0 { sum / cnt as f32 } else { 0.0 };
                for t in 0..f {
                    preds[(t * num + w) * n + node] = mean;
                    targets[(t * num + w) * n + node] = target.as_slice()[t * n + node];
                }
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{ForecastDataset, SplitSpec};

    #[test]
    fn predicts_window_mean() {
        // Constant series -> perfect forecast.
        let data = ForecastDataset::new("c", Tensor::full([60, 2], 5.0), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(4, 4));
        let mut ha = HistoricalAverage;
        ha.fit(&split);
        let m = ha.evaluate(&split.test);
        assert!(m.iter().all(|m| m.mae < 1e-5));
    }

    #[test]
    fn errors_grow_on_trending_series() {
        // Linear growth: HA lags further behind at longer horizons.
        let vals: Vec<f32> = (0..200).flat_map(|t| [t as f32 + 1.0; 1]).collect();
        let data = ForecastDataset::new("t", Tensor::from_vec(vals, [200, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(6, 6));
        let mut ha = HistoricalAverage;
        ha.fit(&split);
        let m = ha.evaluate(&split.test);
        assert!(m[5].mae > m[0].mae, "horizon 6 {} <= horizon 1 {}", m[5].mae, m[0].mae);
    }
}
