//! ARIMA(p, d, 0) per node, fit by conditional least squares.
//!
//! The paper's ARIMA baseline models each series independently. We fit an
//! AR(p) model on the `d`-times differenced training series with ridge
//! least squares (the AR part of Hannan–Rissanen; the MA component adds
//! little on these seasonal series and is omitted — noted in DESIGN.md),
//! then forecast `f` steps by iterated one-step prediction and invert the
//! differencing.

use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;
use std::time::Instant;

/// Per-node AR model on differenced data.
pub struct Arima {
    /// AR order `p`.
    pub p: usize,
    /// Differencing order `d` (0 or 1).
    pub d: usize,
    /// Ridge regularizer.
    pub ridge: f32,
    /// Fitted AR coefficients per node, `[n][p]`, plus intercept `[n]`.
    coef: Vec<Vec<f32>>,
    intercept: Vec<f32>,
}

impl Arima {
    /// ARIMA(3, 1, 0) — a solid traffic default.
    pub fn new() -> Self {
        Arima {
            p: 3,
            d: 1,
            ridge: 1e-3,
            coef: Vec::new(),
            intercept: Vec::new(),
        }
    }

    fn difference(series: &[f32], d: usize) -> Vec<f32> {
        let mut s = series.to_vec();
        for _ in 0..d {
            s = s.windows(2).map(|w| w[1] - w[0]).collect();
        }
        s
    }

    /// Fits AR(p) with intercept on one differenced series via ridge
    /// normal equations (dimension p+1, solved by Gaussian elimination).
    fn fit_node(&self, diffed: &[f32]) -> (Vec<f32>, f32) {
        let p = self.p;
        if diffed.len() <= p + 2 {
            return (vec![0.0; p], 0.0);
        }
        let dim = p + 1;
        let mut ata = vec![0.0f64; dim * dim];
        let mut atb = vec![0.0f64; dim];
        for t in p..diffed.len() {
            // Feature vector: [lag1..lagp, 1].
            let mut x = [0.0f64; 16];
            for i in 0..p {
                x[i] = diffed[t - 1 - i] as f64;
            }
            x[p] = 1.0;
            let y = diffed[t] as f64;
            for i in 0..dim {
                atb[i] += x[i] * y;
                for j in 0..dim {
                    ata[i * dim + j] += x[i] * x[j];
                }
            }
        }
        for i in 0..dim {
            ata[i * dim + i] += self.ridge as f64;
        }
        let sol = solve_dense(&mut ata, &mut atb, dim);
        (
            sol[..p].iter().map(|&v| v as f32).collect(),
            sol[p] as f32,
        )
    }

    /// Forecasts `f` steps given the last observed raw values of a node.
    fn forecast_node(&self, node: usize, history: &[f32], f: usize) -> Vec<f32> {
        let diffed = Self::difference(history, self.d);
        let p = self.p;
        let mut buf: Vec<f32> = diffed.to_vec();
        let mut out_diffs = Vec::with_capacity(f);
        for _ in 0..f {
            let mut pred = self.intercept[node];
            for i in 0..p {
                let idx = buf.len() as isize - 1 - i as isize;
                if idx >= 0 {
                    pred += self.coef[node][i] * buf[idx as usize];
                }
            }
            buf.push(pred);
            out_diffs.push(pred);
        }
        // Invert differencing.
        if self.d == 0 {
            return out_diffs;
        }
        let mut last = *history.last().expect("non-empty history");
        out_diffs
            .iter()
            .map(|&dv| {
                last += dv;
                last
            })
            .collect()
    }
}

impl Default for Arima {
    fn default() -> Self {
        Arima::new()
    }
}

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting. Used by the small normal-equation systems of ARIMA/VAR.
pub(crate) fn solve_dense(a: &mut [f64], b: &mut [f64], dim: usize) -> Vec<f64> {
    assert_eq!(a.len(), dim * dim);
    assert_eq!(b.len(), dim);
    for col in 0..dim {
        // Pivot.
        let mut piv = col;
        for r in col + 1..dim {
            if a[r * dim + col].abs() > a[piv * dim + col].abs() {
                piv = r;
            }
        }
        if a[piv * dim + col].abs() < 1e-12 {
            continue; // singular direction; leave as zero
        }
        if piv != col {
            for c in 0..dim {
                a.swap(col * dim + c, piv * dim + c);
            }
            b.swap(col, piv);
        }
        let diag = a[col * dim + col];
        for r in col + 1..dim {
            let factor = a[r * dim + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..dim {
                a[r * dim + c] -= factor * a[col * dim + c];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; dim];
    for row in (0..dim).rev() {
        let mut acc = b[row];
        for c in row + 1..dim {
            acc -= a[row * dim + c] * x[c];
        }
        let diag = a[row * dim + row];
        x[row] = if diag.abs() < 1e-12 { 0.0 } else { acc / diag };
    }
    x
}

impl Forecaster for Arima {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Arima
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let start = Instant::now();
        let data = split.train.dataset();
        let n = data.nodes();
        // Train on the value range train windows can see.
        let last = split.train.starts().last().copied().unwrap_or(0)
            + split.train.h()
            + split.train.f();
        self.coef.clear();
        self.intercept.clear();
        for node in 0..n {
            let series: Vec<f32> = (0..last)
                .map(|t| data.values.as_slice()[t * n + node])
                .collect();
            let diffed = Self::difference(&series, self.d);
            let (c, b) = self.fit_node(&diffed);
            self.coef.push(c);
            self.intercept.push(b);
        }
        FitSummary {
            train_seconds: start.elapsed().as_secs_f64(),
            epoch_seconds: 0.0,
            param_count: n * (self.p + 1),
            epochs_run: 1,
        }
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        assert!(!self.coef.is_empty(), "fit() before predict()");
        let (f, n) = (windows.f(), windows.nodes());
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            let h = input.dim(0);
            for node in 0..n {
                let history: Vec<f32> =
                    (0..h).map(|t| input.as_slice()[t * n + node]).collect();
                let fc = self.forecast_node(node, &history, f);
                for t in 0..f {
                    preds[(t * num + w) * n + node] = fc[t];
                    targets[(t * num + w) * n + node] = target.as_slice()[t * n + node];
                }
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{ForecastDataset, SplitSpec};

    #[test]
    fn solve_dense_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        assert_eq!(solve_dense(&mut a, &mut b, 2), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_dense_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_dense(&mut a, &mut b, 2);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_linear_trend_exactly() {
        // y_t = 2t: after d=1 the diffs are constant, so ARIMA must nail it.
        let vals: Vec<f32> = (0..300).map(|t| 2.0 * t as f32 + 10.0).collect();
        let data = ForecastDataset::new("t", Tensor::from_vec(vals, [300, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(8, 4));
        let mut ar = Arima::new();
        ar.fit(&split);
        let m = ar.evaluate(&split.test);
        assert!(m.iter().all(|m| m.mae < 0.3), "{m:?}");
    }

    #[test]
    fn beats_ha_on_ar1_process() {
        // Strongly autocorrelated noise: AR should beat window-mean.
        let mut vals = vec![50.0f32];
        let mut rng = sagdfn_tensor::Rng64::new(8);
        for _ in 1..600 {
            let prev = *vals.last().unwrap();
            vals.push(50.0 + 0.95 * (prev - 50.0) + rng.next_gaussian() * 1.0);
        }
        let data = ForecastDataset::new("ar", Tensor::from_vec(vals, [600, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(12, 6));
        let mut ar = Arima::new();
        ar.fit(&split);
        let mut ha = crate::classical::HistoricalAverage;
        ha.fit(&split);
        let m_ar = sagdfn_data::average(&ar.evaluate(&split.test));
        let m_ha = sagdfn_data::average(&ha.evaluate(&split.test));
        assert!(
            m_ar.mae < m_ha.mae,
            "ARIMA {} should beat HA {}",
            m_ar.mae,
            m_ha.mae
        );
    }

    #[test]
    #[should_panic(expected = "fit() before predict")]
    fn predict_requires_fit() {
        let data = ForecastDataset::new("x", Tensor::ones([100, 1]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(4, 4));
        Arima::new().predict(&split.test);
    }
}
