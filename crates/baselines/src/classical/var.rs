//! Vector autoregression: `X_t = c + Σ_{i=1..p} A_i X_{t−i}`, fit jointly
//! over all nodes with ridge least squares.
//!
//! The design dimension is `p·N + 1`, so the normal equations are solved
//! once per *output node* with a shared factor-free Gaussian elimination —
//! fine at the tiny/small run scales; at paper scale VAR's weakness (no
//! nonlinearity, parameter explosion) shows up exactly as in the paper's
//! tables.

use crate::classical::arima::solve_dense;
use crate::{FitSummary, Forecaster};
use sagdfn_data::{SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;
use std::time::Instant;

/// Ridge-fit VAR(p).
pub struct Var {
    /// Lag order `p`.
    pub p: usize,
    /// Ridge regularizer.
    pub ridge: f64,
    /// Coefficients per output node: `[n][p*n + 1]` (lags then intercept).
    coef: Vec<Vec<f32>>,
    n: usize,
}

impl Var {
    /// VAR(2) with mild ridge.
    pub fn new() -> Self {
        Var {
            p: 2,
            ridge: 1e-2,
            coef: Vec::new(),
            n: 0,
        }
    }

    fn features(&self, history: &[Vec<f32>]) -> Vec<f64> {
        // history: most recent last; uses the last p rows.
        let n = self.n;
        let mut x = Vec::with_capacity(self.p * n + 1);
        for lag in 1..=self.p {
            let row = &history[history.len() - lag];
            x.extend(row.iter().map(|&v| v as f64));
        }
        x.push(1.0);
        x
    }
}

impl Default for Var {
    fn default() -> Self {
        Var::new()
    }
}

impl Forecaster for Var {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn family(&self) -> ModelFamily {
        ModelFamily::Var
    }

    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary {
        let start = Instant::now();
        let data = split.train.dataset();
        let n = data.nodes();
        self.n = n;
        let last = split.train.starts().last().copied().unwrap_or(0)
            + split.train.h()
            + split.train.f();
        let dim = self.p * n + 1;
        let vals = data.values.as_slice();
        // Accumulate shared A^T A once, and A^T b per output node.
        let mut ata = vec![0.0f64; dim * dim];
        let mut atb = vec![vec![0.0f64; dim]; n];
        let row_at = |t: usize| -> Vec<f64> {
            let mut x = Vec::with_capacity(dim);
            for lag in 1..=self.p {
                let base = (t - lag) * n;
                x.extend(vals[base..base + n].iter().map(|&v| v as f64));
            }
            x.push(1.0);
            x
        };
        for t in self.p..last {
            let x = row_at(t);
            for i in 0..dim {
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for j in 0..dim {
                    ata[i * dim + j] += xi * x[j];
                }
            }
            for node in 0..n {
                let y = vals[t * n + node] as f64;
                for i in 0..dim {
                    atb[node][i] += x[i] * y;
                }
            }
        }
        for i in 0..dim {
            ata[i * dim + i] += self.ridge;
        }
        // Gaussian elimination per node reuses a fresh copy of A^T A; this
        // is O(n · dim³) worst case but our run scales keep dim small.
        self.coef = (0..n)
            .map(|node| {
                let mut a = ata.clone();
                let mut b = atb[node].clone();
                solve_dense(&mut a, &mut b, dim)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect()
            })
            .collect();
        FitSummary {
            train_seconds: start.elapsed().as_secs_f64(),
            epoch_seconds: 0.0,
            param_count: n * dim,
            epochs_run: 1,
        }
    }

    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor) {
        assert!(!self.coef.is_empty(), "fit() before predict()");
        let (f, n) = (windows.f(), windows.nodes());
        assert_eq!(n, self.n, "node count changed between fit and predict");
        let num = windows.len();
        let mut preds = vec![0.0f32; f * num * n];
        let mut targets = vec![0.0f32; f * num * n];
        for w in 0..num {
            let (input, target) = windows.raw_window(w);
            let h = input.dim(0);
            let mut history: Vec<Vec<f32>> = (0..h)
                .map(|t| input.as_slice()[t * n..(t + 1) * n].to_vec())
                .collect();
            for t in 0..f {
                let x = self.features(&history);
                let mut next = vec![0.0f32; n];
                for (node, next_v) in next.iter_mut().enumerate() {
                    let c = &self.coef[node];
                    let mut acc = 0.0f64;
                    for (i, &xi) in x.iter().enumerate() {
                        acc += xi * c[i] as f64;
                    }
                    *next_v = acc as f32;
                }
                for node in 0..n {
                    preds[(t * num + w) * n + node] = next[node];
                    targets[(t * num + w) * n + node] = target.as_slice()[t * n + node];
                }
                history.push(next);
            }
        }
        (
            Tensor::from_vec(preds, [f, num, n]),
            Tensor::from_vec(targets, [f, num, n]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagdfn_data::{ForecastDataset, SplitSpec};
    use sagdfn_tensor::Rng64;

    #[test]
    fn recovers_cross_series_dependence() {
        // Node 1 copies node 0 with one step of delay. VAR must exploit it;
        // a per-node model cannot.
        let mut rng = Rng64::new(3);
        let t_steps = 500;
        let mut vals = vec![0.0f32; t_steps * 2];
        let mut x0 = 10.0f32;
        for t in 0..t_steps {
            let new_x0 = 10.0 + 0.8 * (x0 - 10.0) + rng.next_gaussian();
            vals[t * 2] = new_x0;
            vals[t * 2 + 1] = if t > 0 { vals[(t - 1) * 2] } else { 10.0 };
            x0 = new_x0;
        }
        let data = ForecastDataset::new("xy", Tensor::from_vec(vals, [t_steps, 2]), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(6, 3));
        let mut var = Var::new();
        var.fit(&split);
        let m = var.evaluate(&split.test);
        // Node 1's next value is node 0's current value: horizon-1 forecast
        // of the pair should be near-exact for node 1, so overall MAE small.
        assert!(m[0].mae < 1.0, "horizon-1 MAE {}", m[0].mae);
    }

    #[test]
    fn constant_series_exact() {
        let data = ForecastDataset::new("c", Tensor::full([200, 3], 7.0), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(4, 4));
        let mut var = Var::new();
        var.fit(&split);
        let m = var.evaluate(&split.test);
        assert!(m.iter().all(|m| m.mae < 0.05), "{m:?}");
    }

    #[test]
    fn summary_counts_parameters() {
        let data = ForecastDataset::new("c", Tensor::full([200, 4], 1.0), 5, 0);
        let split = ThreeWaySplit::new(data, SplitSpec::paper(4, 4));
        let mut var = Var::new();
        let s = var.fit(&split);
        assert_eq!(s.param_count, 4 * (2 * 4 + 1));
    }
}
