//! # sagdfn-baselines
//!
//! Reimplementations of every baseline the paper compares against,
//! sharing the `sagdfn-*` substrate so Tables III–X can be regenerated on
//! one stack. The models fall into four templates (see DESIGN.md §2 for
//! the `-lite` fidelity notes):
//!
//! | Template | Paper models |
//! |---|---|
//! | [`classical`] | Historical Average, ARIMA, VAR, SVR |
//! | [`temporal`] (no graph) | LSTM; Table IX's TimesNet / FEDformer / ETSformer proxies |
//! | [`graph::recurrent`] (GRU + graph conv) | DCRNN, AGCRN, GTS, STEP, D2STGNN |
//! | [`graph::direct`] (flatten-time + graph conv) | STGCN, Graph WaveNet, MTGNN, GMAN, ASTGCN, STSGCN |
//!
//! Every model implements [`Forecaster`], so the benchmark harness runs
//! one loop over `[Box<dyn Forecaster>]` per table. SAGDFN itself gets a
//! [`Forecaster`] adapter in [`sagdfn_adapter`].

pub mod classical;
pub mod deep;
pub mod graph;
pub mod registry;
pub mod sagdfn_adapter;
pub mod temporal;

use sagdfn_data::{Metrics, SlidingWindows, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use sagdfn_tensor::Tensor;

/// Timing and size accounting captured by [`Forecaster::fit`] — the
/// columns of the paper's Table X.
#[derive(Clone, Copy, Debug, Default)]
pub struct FitSummary {
    /// Total training wall-clock seconds.
    pub train_seconds: f64,
    /// Mean seconds per epoch (0 for closed-form classical fits).
    pub epoch_seconds: f64,
    /// Trainable scalar count (0 for non-parametric methods).
    pub param_count: usize,
    /// Epochs actually run.
    pub epochs_run: usize,
}

/// A multivariate forecaster that can be fit on a windowed split and
/// evaluated per horizon.
pub trait Forecaster {
    /// Display name matching the paper's table rows.
    fn name(&self) -> &'static str;

    /// The memory-model family used for OOM gating at paper scale.
    fn family(&self) -> ModelFamily;

    /// Trains on `split.train`, using `split.val` for early stopping
    /// where applicable.
    fn fit(&mut self, split: &ThreeWaySplit) -> FitSummary;

    /// Predicts over a windowed split, returning `(predictions, targets)`
    /// as `(f, num_windows, N)` raw-unit tensors.
    fn predict(&self, windows: &SlidingWindows) -> (Tensor, Tensor);

    /// Per-horizon metrics over a split (default: metrics of
    /// [`predict`](Self::predict)).
    fn evaluate(&self, windows: &SlidingWindows) -> Vec<Metrics> {
        let (pred, target) = self.predict(windows);
        sagdfn_data::horizon_metrics(&pred, &target)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    // Compile-time check: the trait stays object-safe, since the harness
    // stores Vec<Box<dyn Forecaster>>.
    fn _assert_object_safe(_: &dyn Forecaster) {}
}
