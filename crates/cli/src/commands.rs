//! CLI subcommand implementations.

use sagdfn_core::{trainer, Backbone, Mode, Sagdfn, SagdfnConfig};
use sagdfn_data::{io as dataio, Scale, SplitSpec, ThreeWaySplit};
use sagdfn_json::{Json, JsonError};
use std::collections::HashMap;

/// Top-level usage text.
pub const USAGE: &str = "\
sagdfn — Scalable Adaptive Graph Diffusion Forecasting Network (ICDE 2024 reproduction)

USAGE:
  sagdfn generate --dataset <metr-la|london|newyork|carpark> [--scale tiny|small|paper] --out <file.csv>
  sagdfn train    --data <file.csv> [--h 12] [--f 12] [--epochs N] [--backbone gru|tcn|attention]
                  [--m M] [--alpha A] [--dropout R] [--scale tiny|small|paper] --model <stem>
  sagdfn evaluate --data <file.csv> --model <stem>
  sagdfn forecast --data <file.csv> --model <stem>
  sagdfn inspect  --data <file.csv>
  sagdfn profile  [--steps 20] [--scale tiny|small|paper] [--mode counters|full] [--out trace.jsonl]
  sagdfn help";

/// Sidecar metadata saved next to the weights.
struct ModelMeta {
    n: usize,
    h: usize,
    f: usize,
    config: SagdfnConfig,
}

impl ModelMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            ("h", Json::from(self.h)),
            ("f", Json::from(self.f)),
            ("config", self.config.to_json()),
        ])
    }

    fn from_json(doc: &Json) -> Result<ModelMeta, JsonError> {
        Ok(ModelMeta {
            n: doc.req("n")?.as_usize()?,
            h: doc.req("h")?.as_usize()?,
            f: doc.req("f")?.as_usize()?,
            config: SagdfnConfig::from_json(doc.req("config")?)?,
        })
    }
}

/// Tiny flag parser: `--key value` pairs into a map.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{flag}'"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn required<'m>(flags: &'m HashMap<String, String>, key: &str) -> Result<&'m str, String> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_scale(flags: &HashMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale") {
        None => Ok(Scale::Tiny),
        Some(s) => Scale::parse(s).ok_or_else(|| format!("unknown scale '{s}'")),
    }
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: '{v}'")),
    }
}

/// `sagdfn generate`: write a synthetic dataset as CSV.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scale = parse_scale(&flags)?;
    let out = required(&flags, "out")?;
    let dataset = match required(&flags, "dataset")? {
        "metr-la" => sagdfn_data::metr_la_like(scale).dataset,
        "london" => sagdfn_data::city2000_like(scale, 0).dataset,
        "newyork" => sagdfn_data::city2000_like(scale, 1).dataset,
        "carpark" => sagdfn_data::carpark_like(scale).dataset,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    dataio::write_csv_path(&dataset, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} nodes x {} steps ({}-minute interval)",
        out,
        dataset.nodes(),
        dataset.steps(),
        dataset.interval_min
    );
    Ok(())
}

fn load_split(
    flags: &HashMap<String, String>,
    h: usize,
    f: usize,
) -> Result<(usize, ThreeWaySplit), String> {
    let path = required(flags, "data")?;
    let dataset = dataio::read_csv_path(path).map_err(|e| e.to_string())?;
    let n = dataset.nodes();
    Ok((n, ThreeWaySplit::new(dataset, SplitSpec::paper(h, f))))
}

/// `sagdfn train`: fit SAGDFN on a CSV dataset and save the model.
pub fn train(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let stem = required(&flags, "model")?.to_string();
    let scale = parse_scale(&flags)?;
    let h = parse_num(&flags, "h", 12usize)?;
    let f = parse_num(&flags, "f", 12usize)?;
    let (n, split) = load_split(&flags, h, f)?;

    let mut cfg = SagdfnConfig::for_scale(scale, n);
    cfg.epochs = parse_num(&flags, "epochs", cfg.epochs)?;
    cfg.alpha = parse_num(&flags, "alpha", cfg.alpha)?;
    cfg.dropout = parse_num(&flags, "dropout", cfg.dropout)?;
    if let Some(m) = flags.get("m") {
        cfg.m = m.parse().map_err(|_| "bad --m")?;
        cfg.top_k = (cfg.m * 4 / 5).max(1).min(cfg.m - 1);
    }
    if let Some(b) = flags.get("backbone") {
        cfg.backbone = match b.as_str() {
            "gru" => Backbone::Gru,
            "tcn" => Backbone::Tcn,
            "attention" => Backbone::SelfAttention,
            other => return Err(format!("unknown backbone '{other}'")),
        };
    }
    println!(
        "training SAGDFN on {n} nodes (h={h}, f={f}, M={}, α={}, {:?} backbone)",
        cfg.m, cfg.alpha, cfg.backbone
    );
    let mut model = Sagdfn::new(n, cfg.clone());
    let report = trainer::fit(&mut model, &split);
    for e in &report.epochs {
        println!(
            "epoch {:>3}: train {:.4}  val {:.4}  ({:.1}s)",
            e.epoch, e.train_loss, e.val_mae, e.seconds
        );
    }
    println!("\ntest metrics:");
    for hz in [3usize, 6, 12] {
        println!("  horizon {hz:>2}: {}", report.at_horizon(hz).row());
    }

    sagdfn_nn::checkpoint::save_path(&model.params, format!("{stem}.params.json"))
        .map_err(|e| e.to_string())?;
    let meta = ModelMeta { n, h, f, config: cfg };
    std::fs::write(
        format!("{stem}.config.json"),
        meta.to_json().to_string_pretty().map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    println!("\nsaved {stem}.params.json and {stem}.config.json");
    Ok(())
}

fn load_model(flags: &HashMap<String, String>) -> Result<(Sagdfn, ModelMeta), String> {
    let stem = required(flags, "model")?;
    let text =
        std::fs::read_to_string(format!("{stem}.config.json")).map_err(|e| e.to_string())?;
    let meta = Json::parse(&text)
        .and_then(|doc| ModelMeta::from_json(&doc))
        .map_err(|e| e.to_string())?;
    let mut model = Sagdfn::new(meta.n, meta.config.clone());
    sagdfn_nn::checkpoint::load_path(&mut model.params, format!("{stem}.params.json"))
        .map_err(|e| e.to_string())?;
    // The significant index is a function of the (now loaded) embeddings.
    model.refresh_index();
    Ok((model, meta))
}

/// `sagdfn inspect`: statistical characterization of a CSV dataset.
pub fn inspect(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = required(&flags, "data")?;
    let dataset = dataio::read_csv_path(path).map_err(|e| e.to_string())?;
    let report = sagdfn_data::inspect(&dataset);
    println!("dataset '{}' ({path})", dataset.name);
    println!("{}", report.render());
    if report.daily_autocorr < 0.2 {
        println!("note: weak daily seasonality — temporal models will struggle");
    }
    if report.mean_cross_corr < 0.1 {
        println!("note: weak cross-series correlation — graph models may not help");
    }
    Ok(())
}

/// `sagdfn evaluate`: per-horizon metrics of a saved model on a dataset.
pub fn evaluate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (model, meta) = load_model(&flags)?;
    let (n, split) = load_split(&flags, meta.h, meta.f)?;
    if n != meta.n {
        return Err(format!("model was trained on {} nodes, data has {n}", meta.n));
    }
    let metrics = trainer::evaluate(&model, &split.test, meta.config.batch_size);
    println!("test metrics over {} windows:", split.test.len());
    for (i, m) in metrics.iter().enumerate() {
        println!("  horizon {:>2}: {}", i + 1, m.row());
    }
    Ok(())
}

/// `sagdfn forecast`: print the forecast for the most recent window.
pub fn forecast(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (model, meta) = load_model(&flags)?;
    let (n, split) = load_split(&flags, meta.h, meta.f)?;
    if n != meta.n {
        return Err(format!("model was trained on {} nodes, data has {n}", meta.n));
    }
    let last = split.test.len() - 1;
    let (pred, _) = {
        let batch = split.test.make_batch(&[last]);
        let tape = sagdfn_autodiff_tape();
        let _no_grad = tape.no_grad();
        let bind = model.params.bind(&tape);
        let p = model
            .forward(&tape, &bind, &batch, split.scaler, Mode::Eval)
            .value();
        (p, batch)
    };
    println!(
        "forecast for the most recent window ({} steps ahead, {} nodes):",
        meta.f, n
    );
    let show_n = n.min(8);
    print!("{:>6}", "step");
    for node in 0..show_n {
        print!(" {:>8}", format!("node{node}"));
    }
    println!("{}", if n > show_n { "  ..." } else { "" });
    for t in 0..meta.f {
        print!("{:>6}", t + 1);
        for node in 0..show_n {
            print!(" {:>8.2}", pred.at(&[t, 0, node]));
        }
        println!();
    }
    Ok(())
}

// Local alias to keep the forecast body readable.
fn sagdfn_autodiff_tape() -> sagdfn_autodiff::Tape {
    sagdfn_autodiff::Tape::new()
}

/// `sagdfn profile`: run N training steps on a synthetic workload with
/// kernel tracing on, print the per-kernel table (sorted by elapsed
/// time), and write the span trace as JSONL (`full` mode only) —
/// convertible to chrome://tracing with the `trace2chrome` bench binary.
pub fn profile(args: &[String]) -> Result<(), String> {
    use sagdfn_nn::{masked_mae, Adam, Optimizer};
    use sagdfn_obs as obs;

    let flags = parse_flags(args)?;
    let steps = parse_num(&flags, "steps", 20usize)?;
    let scale = parse_scale(&flags)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "trace.jsonl".to_string());
    let mode = match flags.get("mode").map(|s| s.as_str()) {
        None | Some("full") => obs::TraceMode::Full,
        Some("counters") => obs::TraceMode::Counters,
        Some(other) => return Err(format!("unknown --mode '{other}' (counters|full)")),
    };

    // Same synthetic workload as the train-step benchmark: metr-la-like
    // data, paper split, SNS resampling pinned off for steady state.
    let data = sagdfn_data::metr_la_like(scale);
    let n = data.dataset.nodes();
    let steps_avail = data.dataset.steps().min(500);
    let split = ThreeWaySplit::new(data.dataset.subset_steps(0, steps_avail), SplitSpec::paper(4, 4));
    let mut cfg = SagdfnConfig::for_scale(scale, n);
    cfg.sns_every = 1_000_000;
    cfg.convergence_iter = 10;
    let batch_size = cfg.batch_size.min(split.train.len());
    let lr = cfg.lr;
    let mut model = Sagdfn::new(n, cfg);
    let mut opt = Adam::new(lr);
    let tape = sagdfn_autodiff_tape();
    let ids: Vec<usize> = (0..batch_size).collect();

    let prev_mode = obs::set_trace_mode(mode);
    obs::drain_spans(); // start from an empty span buffer
    let base = obs::snapshot();
    println!("profiling {steps} training steps on {n} nodes ({scale:?} scale, {mode:?} mode)");
    println!("{}", sagdfn_tensor::dispatch::description());
    // The resolved shard plan (SAGDFN_SHARDS > cfg.shards > memsim auto)
    // and the memory split that justified it.
    let plan = sagdfn_memsim::plan_shards(
        n,
        batch_size,
        sagdfn_memsim::V100_32GB.capacity_bytes,
    );
    println!(
        "node shards: {} (auto plan: {} shards of {} rows, {:.2} MB graph/shard, \
         {:.2} MB modeled peak{})",
        model.shards(),
        plan.shards,
        plan.shard_rows,
        plan.bytes_per_shard as f64 / 1e6,
        plan.total_bytes as f64 / 1e6,
        if plan.fits { "" } else { ", exceeds V100-32GB" },
    );
    for step in 0..steps {
        let step_guard = obs::kernel(obs::Kernel::TrainStep, 0, 0, 0);
        let batch = split.train.make_batch(&ids);
        model.maybe_resample();
        tape.reset();
        let bind = model.params.bind(&tape);
        let pred =
            model.forward_scheduled(&tape, &bind, &batch, split.scaler, &[], Mode::Train);
        let mask = Sagdfn::loss_mask(&batch.y);
        let loss = masked_mae(pred, &batch.y, &mask);
        let _ = loss.item();
        let grads = loss.backward();
        opt.step(&mut model.params, &bind, &grads);
        tape.recycle_gradients(grads);
        model.tick();
        drop(step_guard);
        obs::step_rollup(step as u64 + 1);
    }
    // A short eval sweep so the inference-path counters (eval_step,
    // plan-cache builds/hits) show up alongside the training kernels.
    if !split.val.is_empty() {
        let _ = trainer::predict(&model, &split.val, batch_size);
    }
    let delta = obs::snapshot().since(&base);
    println!("\n{}", obs::format_table(&delta));
    // The eval sweep above ran through the plan executor (unless
    // SAGDFN_PLAN=off): show the compiled schedule with per-op times.
    if let Some(table) = model.plan_table() {
        println!("{table}");
    }

    if mode == obs::TraceMode::Full {
        let records = obs::write_trace(&out).map_err(|e| e.to_string())?;
        println!("wrote {records} trace records to {out}");
        if obs::dropped_records() > 0 {
            println!("note: {} records dropped (buffer full)", obs::dropped_records());
        }
    } else {
        println!("(no span trace in counters mode; use --mode full for {out})");
    }
    obs::set_trace_mode(prev_mode);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parser_roundtrip() {
        let flags = parse_flags(&strs(&["--a", "1", "--b", "two"])).unwrap();
        assert_eq!(flags.get("a").unwrap(), "1");
        assert_eq!(flags.get("b").unwrap(), "two");
    }

    #[test]
    fn flag_parser_rejects_bare_values() {
        assert!(parse_flags(&strs(&["oops"])).is_err());
        assert!(parse_flags(&strs(&["--dangling"])).is_err());
    }

    #[test]
    fn required_reports_flag_name() {
        let flags = parse_flags(&[]).unwrap();
        let err = required(&flags, "data").unwrap_err();
        assert!(err.contains("--data"), "{err}");
    }

    #[test]
    fn parse_num_default_and_error() {
        let flags = parse_flags(&strs(&["--epochs", "zzz"])).unwrap();
        assert_eq!(parse_num(&flags, "h", 12usize).unwrap(), 12);
        assert!(parse_num(&flags, "epochs", 1usize).is_err());
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let err = generate(&strs(&["--dataset", "mars", "--out", "/tmp/x.csv"])).unwrap_err();
        assert!(err.contains("unknown dataset"), "{err}");
    }

    #[test]
    fn full_cli_cycle_in_tempdir() {
        // generate -> train (1 epoch) -> evaluate -> forecast, via the
        // command functions directly.
        let dir = std::env::temp_dir().join("sagdfn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv").to_string_lossy().to_string();
        let stem = dir.join("m").to_string_lossy().to_string();

        generate(&strs(&["--dataset", "metr-la", "--out", &csv])).expect("generate");
        train(&strs(&[
            "--data", &csv, "--epochs", "1", "--h", "4", "--f", "4", "--model", &stem,
        ]))
        .expect("train");
        assert!(std::path::Path::new(&format!("{stem}.params.json")).exists());
        assert!(std::path::Path::new(&format!("{stem}.config.json")).exists());
        evaluate(&strs(&["--data", &csv, "--model", &stem])).expect("evaluate");
        forecast(&strs(&["--data", &csv, "--model", &stem])).expect("forecast");
    }

    #[test]
    fn profile_writes_table_and_trace() {
        let dir = std::env::temp_dir().join("sagdfn-cli-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.jsonl").to_string_lossy().to_string();
        profile(&strs(&["--steps", "2", "--out", &out])).expect("profile");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(!text.is_empty(), "trace file should have records");
        for line in text.lines() {
            sagdfn_json::Json::parse(line).expect("every trace line is valid JSON");
        }
        // Counters mode must succeed without touching the trace file.
        std::fs::remove_file(&out).unwrap();
        profile(&strs(&["--steps", "1", "--mode", "counters", "--out", &out]))
            .expect("profile counters");
        assert!(!std::path::Path::new(&out).exists());
    }

    #[test]
    fn evaluate_rejects_node_mismatch() {
        let dir = std::env::temp_dir().join("sagdfn-cli-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_a = dir.join("a.csv").to_string_lossy().to_string();
        let stem = dir.join("m").to_string_lossy().to_string();
        generate(&strs(&["--dataset", "metr-la", "--out", &csv_a])).unwrap();
        train(&strs(&[
            "--data", &csv_a, "--epochs", "1", "--h", "4", "--f", "4", "--model", &stem,
        ]))
        .unwrap();
        // A dataset with a different node count must be refused.
        let csv_b = dir.join("b.csv").to_string_lossy().to_string();
        generate(&strs(&["--dataset", "carpark", "--out", &csv_b])).unwrap();
        let err = evaluate(&strs(&["--data", &csv_b, "--model", &stem])).unwrap_err();
        assert!(err.contains("nodes"), "{err}");
    }
}
