//! `sagdfn` — command-line interface to the SAGDFN reproduction.
//!
//! ```text
//! sagdfn generate --dataset metr-la --scale tiny --out data.csv
//! sagdfn train    --data data.csv --h 12 --f 12 --epochs 6 --model model
//! sagdfn evaluate --data data.csv --model model
//! sagdfn forecast --data data.csv --model model
//! ```
//!
//! `--model <stem>` writes/reads `<stem>.params.json` (weights) and
//! `<stem>.config.json` (architecture + window sizes), so a trained model
//! is fully reconstructible.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "train" => commands::train(rest),
        "evaluate" => commands::evaluate(rest),
        "forecast" => commands::forecast(rest),
        "inspect" => commands::inspect(rest),
        "profile" => commands::profile(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
