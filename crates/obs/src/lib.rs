//! Observability substrate: per-kernel counters, scoped span tracing, and
//! JSONL trace output. Std-only, zero dependencies — this crate sits
//! *below* `sagdfn-tensor` so every layer of the stack can report into
//! one process-global accounting surface.
//!
//! # Modes
//!
//! Controlled by `SAGDFN_TRACE` (read once, overridable at runtime with
//! [`set_trace_mode`]):
//!
//! * `off` (default) — every instrumentation hook is a single relaxed
//!   atomic load followed by an early return; no clocks, no allocation.
//! * `counters` — kernel entry points accumulate calls / elapsed ns /
//!   flops / bytes into static atomics. Budgeted at ≤ 3 % overhead on
//!   the train-step workload (`bench_trace` gates this).
//! * `full` — counters plus one in-memory span record per instrumented
//!   scope, drained to JSONL by [`write_trace`] / [`drain_spans`], and a
//!   per-training-step rollup record from [`step_rollup`].
//!
//! # Counter semantics
//!
//! Counters are *monotonic within a process* and are tallied **once at
//! the public API entry point**, never per worker-pool chunk, so every
//! count and flop/byte total is invariant under `SAGDFN_THREADS`.
//! Flops follow the usual 2·(multiply-add) convention for GEMM-shaped
//! kernels; bytes count f32 payloads only (4 bytes per element, index
//! arrays excluded). `tests/obs_counters_threads{1,8}.rs` pin the exact
//! formulas per kernel.
//!
//! # Non-perturbation contract
//!
//! Instrumentation must never change a float: hooks only read clocks and
//! bump atomics. `tests/trace_perturbation.rs` asserts end-to-end
//! bit-identical training across all three modes.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace mode
// ---------------------------------------------------------------------------

/// Global instrumentation level; see the crate docs for what each
/// level costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceMode {
    /// No accounting at all (the default).
    Off,
    /// Per-kernel atomic counters only.
    Counters,
    /// Counters plus span records and step rollups.
    Full,
}

static MODE: OnceLock<AtomicU8> = OnceLock::new();

fn mode_cell() -> &'static AtomicU8 {
    MODE.get_or_init(|| {
        let m = match std::env::var("SAGDFN_TRACE").as_deref() {
            Ok("counters") | Ok("1") => 1,
            Ok("full") | Ok("2") => 2,
            _ => 0,
        };
        AtomicU8::new(m)
    })
}

/// Current trace mode (one relaxed atomic load).
#[inline]
pub fn trace_mode() -> TraceMode {
    match mode_cell().load(Ordering::Relaxed) {
        1 => TraceMode::Counters,
        2 => TraceMode::Full,
        _ => TraceMode::Off,
    }
}

/// Overrides the trace mode at runtime, returning the previous mode so
/// callers (tests, the profiler) can restore it.
pub fn set_trace_mode(mode: TraceMode) -> TraceMode {
    let prev = mode_cell().swap(mode as u8, Ordering::SeqCst);
    match prev {
        1 => TraceMode::Counters,
        2 => TraceMode::Full,
        _ => TraceMode::Off,
    }
}

/// True when any accounting is active. The `off` fast path of every
/// hook is exactly this load.
#[inline]
pub fn enabled() -> bool {
    mode_cell().load(Ordering::Relaxed) != 0
}

#[inline]
fn full() -> bool {
    mode_cell().load(Ordering::Relaxed) == 2
}

// ---------------------------------------------------------------------------
// Kernels and counters
// ---------------------------------------------------------------------------

/// Every instrumented kernel / scope. The discriminant indexes the
/// static counter table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Kernel {
    /// Dense batched GEMM `A·B`.
    Matmul = 0,
    /// Transpose-free `A·Bᵀ`.
    MatmulNt,
    /// Transpose-free `Aᵀ·B`.
    MatmulTn,
    /// `transpose_last2` materialization.
    Transpose,
    /// CSR forward product `A·X`.
    Spmm,
    /// CSR transpose product `Aᵀ·G`.
    SpmmT,
    /// Support-restricted adjacency gradient (sparse or dense twin).
    Dadj,
    /// Dense → CSR plan construction.
    CsrBuild,
    /// Full and axis reductions (sum / norms / reduce_axis).
    Reduce,
    /// Batched α-entmax forward rows.
    Entmax,
    /// Batched α-entmax Jacobian-vector products.
    EntmaxBackward,
    /// Autodiff tape node recorded (forward).
    Forward,
    /// Autodiff backward sweep.
    Backward,
    /// Tape arena reset.
    TapeReset,
    /// Optimizer parameter update.
    OptimStep,
    /// One trainer step (batch forward + backward + update).
    TrainStep,
    /// No-grad value stored (eval twin of `Forward`; no node recorded).
    EvalNode,
    /// One inference batch through the no-grad eval path.
    EvalStep,
}

/// Number of [`Kernel`] variants (table width).
pub const KERNEL_COUNT: usize = 18;

impl Kernel {
    /// All kernels in table order.
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::Matmul,
        Kernel::MatmulNt,
        Kernel::MatmulTn,
        Kernel::Transpose,
        Kernel::Spmm,
        Kernel::SpmmT,
        Kernel::Dadj,
        Kernel::CsrBuild,
        Kernel::Reduce,
        Kernel::Entmax,
        Kernel::EntmaxBackward,
        Kernel::Forward,
        Kernel::Backward,
        Kernel::TapeReset,
        Kernel::OptimStep,
        Kernel::TrainStep,
        Kernel::EvalNode,
        Kernel::EvalStep,
    ];

    /// Stable display / trace name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::MatmulNt => "matmul_nt",
            Kernel::MatmulTn => "matmul_tn",
            Kernel::Transpose => "transpose",
            Kernel::Spmm => "spmm",
            Kernel::SpmmT => "spmm_t",
            Kernel::Dadj => "dadj",
            Kernel::CsrBuild => "csr_build",
            Kernel::Reduce => "reduce",
            Kernel::Entmax => "entmax",
            Kernel::EntmaxBackward => "entmax_backward",
            Kernel::Forward => "fwd_node",
            Kernel::Backward => "backward",
            Kernel::TapeReset => "tape_reset",
            Kernel::OptimStep => "optim_step",
            Kernel::TrainStep => "train_step",
            Kernel::EvalNode => "eval_node",
            Kernel::EvalStep => "eval_step",
        }
    }
}

struct KCell {
    calls: AtomicU64,
    ns: AtomicU64,
    flops: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const KCELL_ZERO: KCell = KCell {
    calls: AtomicU64::new(0),
    ns: AtomicU64::new(0),
    flops: AtomicU64::new(0),
    bytes_in: AtomicU64::new(0),
    bytes_out: AtomicU64::new(0),
};

static KERNELS: [KCell; KERNEL_COUNT] = [KCELL_ZERO; KERNEL_COUNT];

static POOL_REGIONS: AtomicU64 = AtomicU64::new(0);
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static ALLOC_ACQUIRES: AtomicU64 = AtomicU64::new(0);
static ALLOC_ACQUIRE_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_RELEASES: AtomicU64 = AtomicU64::new(0);
static ALLOC_RELEASE_BYTES: AtomicU64 = AtomicU64::new(0);
static DISPATCH_SPARSE: AtomicU64 = AtomicU64::new(0);
static DISPATCH_DENSE: AtomicU64 = AtomicU64::new(0);
static SHARDED_OPS: AtomicU64 = AtomicU64::new(0);
static SHARD_SLABS: AtomicU64 = AtomicU64::new(0);
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_COMPILES: AtomicU64 = AtomicU64::new(0);
static PLAN_EXECS: AtomicU64 = AtomicU64::new(0);
static PLAN_OPS: AtomicU64 = AtomicU64::new(0);
static SIMD_TIERS: [AtomicU64; SIMD_TIER_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Number of SIMD dispatch tiers tracked by [`tally_simd`].
pub const SIMD_TIER_COUNT: usize = 4;

/// Display names for the SIMD tiers, indexed like [`tally_simd`]'s
/// argument (`sagdfn_tensor::SimdTier::index()`).
pub const SIMD_TIER_NAMES: [&str; SIMD_TIER_COUNT] = ["scalar", "neon", "avx2", "avx512"];

#[inline]
fn add(cell: &AtomicU64, v: u64) {
    cell.fetch_add(v, Ordering::Relaxed);
}

/// Counts one call of `k` with the given work totals, without timing it.
/// Used for hooks too cheap to justify two clock reads (tape pushes).
#[inline]
pub fn tally(k: Kernel, flops: u64, bytes_in: u64, bytes_out: u64) {
    if !enabled() {
        return;
    }
    let c = &KERNELS[k as usize];
    add(&c.calls, 1);
    add(&c.flops, flops);
    add(&c.bytes_in, bytes_in);
    add(&c.bytes_out, bytes_out);
}

/// Counts one parallel region fanned out to `n_tasks` worker tasks.
#[inline]
pub fn tally_pool_region(n_tasks: u64) {
    if !enabled() {
        return;
    }
    add(&POOL_REGIONS, 1);
    add(&POOL_TASKS, n_tasks);
}

/// Counts one allocator acquire of `bytes` (pool hit or heap miss alike;
/// the churn split lives in `sagdfn_tensor::alloc`'s own counters).
#[inline]
pub fn tally_alloc_acquire(bytes: u64) {
    if !enabled() {
        return;
    }
    add(&ALLOC_ACQUIRES, 1);
    add(&ALLOC_ACQUIRE_BYTES, bytes);
}

/// Counts one allocator release of `bytes`.
#[inline]
pub fn tally_alloc_release(bytes: u64) {
    if !enabled() {
        return;
    }
    add(&ALLOC_RELEASES, 1);
    add(&ALLOC_RELEASE_BYTES, bytes);
}

/// Records one sparse-vs-dense dispatch decision.
#[inline]
pub fn tally_dispatch(sparse: bool) {
    if !enabled() {
        return;
    }
    add(if sparse { &DISPATCH_SPARSE } else { &DISPATCH_DENSE }, 1);
}

/// Records one node-sharded kernel execution over `shards` row shards
/// (DESIGN.md §14). Unsharded runs (`shards <= 1`) tally nothing, so
/// these counters are exact "how much sharding happened" meters: a
/// shards = 1 workload reports zeros.
#[inline]
pub fn tally_shards(shards: u64) {
    if shards <= 1 || !enabled() {
        return;
    }
    add(&SHARDED_OPS, 1);
    add(&SHARD_SLABS, shards);
}

/// Records one frozen-plan cache lookup: `hit = true` when a cached
/// eval-mode adjacency plan was reused, `false` when it had to be built.
#[inline]
pub fn tally_plan(hit: bool) {
    if !enabled() {
        return;
    }
    add(if hit { &PLAN_HITS } else { &PLAN_BUILDS }, 1);
}

/// Records one plan-executor compile (a record-once walk of the eval
/// forward that emitted a linearized kernel schedule).
#[inline]
pub fn tally_plan_compile() {
    if !enabled() {
        return;
    }
    add(&PLAN_COMPILES, 1);
}

/// Records one planned forward: a full run of a compiled schedule of
/// `ops` kernel invocations.
#[inline]
pub fn tally_plan_exec(ops: u64) {
    if !enabled() {
        return;
    }
    add(&PLAN_EXECS, 1);
    add(&PLAN_OPS, ops);
}

/// Records one hot-kernel dispatch through the SIMD layer. `tier` is the
/// variant that ran (`SimdTier::index()`: 0 scalar, 1 neon, 2 avx2,
/// 3 avx512); out-of-range values clamp to the last slot.
#[inline]
pub fn tally_simd(tier: usize) {
    if !enabled() {
        return;
    }
    add(&SIMD_TIERS[tier.min(SIMD_TIER_COUNT - 1)], 1);
}

/// Timed scope over a kernel: counts the call and its work totals up
/// front, accumulates elapsed ns on drop, and in `full` mode emits a
/// span record. `None` (a no-op to bind) when tracing is off.
pub struct KernelGuard {
    k: Kernel,
    t0: Instant,
    span: Option<Span>,
}

/// Opens a [`KernelGuard`] over kernel `k`. Bind the result for the
/// duration of the kernel body: `let _g = obs::kernel(...);`.
#[inline]
pub fn kernel(k: Kernel, flops: u64, bytes_in: u64, bytes_out: u64) -> Option<KernelGuard> {
    if !enabled() {
        return None;
    }
    let c = &KERNELS[k as usize];
    add(&c.calls, 1);
    add(&c.flops, flops);
    add(&c.bytes_in, bytes_in);
    add(&c.bytes_out, bytes_out);
    let span = if full() { open_span(k.name(), 0) } else { None };
    Some(KernelGuard { k, t0: Instant::now(), span })
}

impl KernelGuard {
    /// Adds flops discovered after the guard opened (e.g. an optimizer
    /// only knows how many scalars it updated once it has walked the
    /// parameter registry).
    pub fn add_flops(&self, flops: u64) {
        add(&KERNELS[self.k as usize].flops, flops);
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        add(&KERNELS[self.k as usize].ns, ns);
        // `self.span` closes after this, stamping its own (slightly
        // wider) duration.
        let _ = &self.span;
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Totals for one kernel at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Calls counted (at API entry, thread-count invariant).
    pub calls: u64,
    /// Elapsed wall nanoseconds summed over calls (0 for `tally`-only hooks).
    pub ns: u64,
    /// Floating-point operations, 2·multiply-add convention.
    pub flops: u64,
    /// Input f32 payload bytes (4 per element, indices excluded).
    pub bytes_in: u64,
    /// Output f32 payload bytes.
    pub bytes_out: u64,
}

/// Point-in-time copy of every counter; subtract two with
/// [`Snapshot::since`] to meter a region.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Per-kernel totals, indexed by `Kernel as usize`.
    pub kernels: [KernelStats; KERNEL_COUNT],
    /// Parallel regions dispatched to the worker pool.
    pub pool_regions: u64,
    /// Worker tasks fanned out across those regions.
    pub pool_tasks: u64,
    /// Allocator acquires (count).
    pub alloc_acquires: u64,
    /// Allocator acquires (bytes).
    pub alloc_acquire_bytes: u64,
    /// Allocator releases (count).
    pub alloc_releases: u64,
    /// Allocator releases (bytes).
    pub alloc_release_bytes: u64,
    /// Density dispatches that chose the CSR kernels.
    pub dispatch_sparse: u64,
    /// Density dispatches that chose the dense GEMMs.
    pub dispatch_dense: u64,
    /// Kernel executions that ran node-sharded (shard count > 1).
    pub sharded_ops: u64,
    /// Total row shards processed across those executions.
    pub shard_slabs: u64,
    /// Frozen-plan cache misses (plan built from the embeddings).
    pub plan_builds: u64,
    /// Frozen-plan cache hits (cached plan reused across batches).
    pub plan_hits: u64,
    /// Plan-executor schedule compiles (record-once walks).
    pub plan_compiles: u64,
    /// Planned forwards executed through a compiled schedule.
    pub plan_execs: u64,
    /// Scheduled kernel ops run across all planned forwards.
    pub plan_ops: u64,
    /// Hot-kernel dispatches per SIMD tier (see [`SIMD_TIER_NAMES`]).
    pub simd_tiers: [u64; SIMD_TIER_COUNT],
}

/// Copies every counter. Counters are only ever added to, so a snapshot
/// taken around a quiescent region is exact.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for k in Kernel::ALL {
        let c = &KERNELS[k as usize];
        s.kernels[k as usize] = KernelStats {
            calls: c.calls.load(Ordering::Relaxed),
            ns: c.ns.load(Ordering::Relaxed),
            flops: c.flops.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
        };
    }
    s.pool_regions = POOL_REGIONS.load(Ordering::Relaxed);
    s.pool_tasks = POOL_TASKS.load(Ordering::Relaxed);
    s.alloc_acquires = ALLOC_ACQUIRES.load(Ordering::Relaxed);
    s.alloc_acquire_bytes = ALLOC_ACQUIRE_BYTES.load(Ordering::Relaxed);
    s.alloc_releases = ALLOC_RELEASES.load(Ordering::Relaxed);
    s.alloc_release_bytes = ALLOC_RELEASE_BYTES.load(Ordering::Relaxed);
    s.dispatch_sparse = DISPATCH_SPARSE.load(Ordering::Relaxed);
    s.dispatch_dense = DISPATCH_DENSE.load(Ordering::Relaxed);
    s.sharded_ops = SHARDED_OPS.load(Ordering::Relaxed);
    s.shard_slabs = SHARD_SLABS.load(Ordering::Relaxed);
    s.plan_builds = PLAN_BUILDS.load(Ordering::Relaxed);
    s.plan_hits = PLAN_HITS.load(Ordering::Relaxed);
    s.plan_compiles = PLAN_COMPILES.load(Ordering::Relaxed);
    s.plan_execs = PLAN_EXECS.load(Ordering::Relaxed);
    s.plan_ops = PLAN_OPS.load(Ordering::Relaxed);
    for (i, c) in SIMD_TIERS.iter().enumerate() {
        s.simd_tiers[i] = c.load(Ordering::Relaxed);
    }
    s
}

impl Snapshot {
    /// Totals for one kernel.
    pub fn stats(&self, k: Kernel) -> &KernelStats {
        &self.kernels[k as usize]
    }

    /// Delta `self − base` (saturating; counters are monotonic so the
    /// result is exact when `base` was taken earlier).
    pub fn since(&self, base: &Snapshot) -> Snapshot {
        let mut d = self.clone();
        for i in 0..KERNEL_COUNT {
            let (a, b) = (&self.kernels[i], &base.kernels[i]);
            d.kernels[i] = KernelStats {
                calls: a.calls.saturating_sub(b.calls),
                ns: a.ns.saturating_sub(b.ns),
                flops: a.flops.saturating_sub(b.flops),
                bytes_in: a.bytes_in.saturating_sub(b.bytes_in),
                bytes_out: a.bytes_out.saturating_sub(b.bytes_out),
            };
        }
        d.pool_regions = self.pool_regions.saturating_sub(base.pool_regions);
        d.pool_tasks = self.pool_tasks.saturating_sub(base.pool_tasks);
        d.alloc_acquires = self.alloc_acquires.saturating_sub(base.alloc_acquires);
        d.alloc_acquire_bytes = self.alloc_acquire_bytes.saturating_sub(base.alloc_acquire_bytes);
        d.alloc_releases = self.alloc_releases.saturating_sub(base.alloc_releases);
        d.alloc_release_bytes = self.alloc_release_bytes.saturating_sub(base.alloc_release_bytes);
        d.dispatch_sparse = self.dispatch_sparse.saturating_sub(base.dispatch_sparse);
        d.dispatch_dense = self.dispatch_dense.saturating_sub(base.dispatch_dense);
        d.sharded_ops = self.sharded_ops.saturating_sub(base.sharded_ops);
        d.shard_slabs = self.shard_slabs.saturating_sub(base.shard_slabs);
        d.plan_builds = self.plan_builds.saturating_sub(base.plan_builds);
        d.plan_hits = self.plan_hits.saturating_sub(base.plan_hits);
        d.plan_compiles = self.plan_compiles.saturating_sub(base.plan_compiles);
        d.plan_execs = self.plan_execs.saturating_sub(base.plan_execs);
        d.plan_ops = self.plan_ops.saturating_sub(base.plan_ops);
        for i in 0..SIMD_TIER_COUNT {
            d.simd_tiers[i] = self.simd_tiers[i].saturating_sub(base.simd_tiers[i]);
        }
        d
    }
}

/// Zeroes every counter (tests and the profiler; racing kernels on
/// other threads may leave partial tallies — meter quiescent regions).
pub fn reset_counters() {
    for k in Kernel::ALL {
        let c = &KERNELS[k as usize];
        c.calls.store(0, Ordering::Relaxed);
        c.ns.store(0, Ordering::Relaxed);
        c.flops.store(0, Ordering::Relaxed);
        c.bytes_in.store(0, Ordering::Relaxed);
        c.bytes_out.store(0, Ordering::Relaxed);
    }
    for g in [
        &POOL_REGIONS,
        &POOL_TASKS,
        &ALLOC_ACQUIRES,
        &ALLOC_ACQUIRE_BYTES,
        &ALLOC_RELEASES,
        &ALLOC_RELEASE_BYTES,
        &DISPATCH_SPARSE,
        &DISPATCH_DENSE,
        &SHARDED_OPS,
        &SHARD_SLABS,
        &PLAN_BUILDS,
        &PLAN_HITS,
        &PLAN_COMPILES,
        &PLAN_EXECS,
        &PLAN_OPS,
    ] {
        g.store(0, Ordering::Relaxed);
    }
    for c in &SIMD_TIERS {
        c.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spans (full mode only)
// ---------------------------------------------------------------------------

/// Span records kept in memory before a record is dropped instead of
/// pushed; 4M records ≈ a few hundred MB, far past any sane trace.
const MAX_RECORDS: usize = 4_000_000;

enum TraceRec {
    Span { name: &'static str, id: u64, tid: u64, depth: u32, ts_ns: u64, dur_ns: u64 },
    /// Pre-serialized rollup JSONL line.
    Rollup(String),
}

static RECORDS: Mutex<Vec<TraceRec>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == u64::MAX {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// An open trace span; closing (dropping) it appends one record to the
/// in-memory buffer. Spans on one thread are strictly nested because
/// they are scope guards: `depth` is the per-thread open-span count.
pub struct Span {
    name: &'static str,
    id: u64,
    tid: u64,
    depth: u32,
    ts_ns: u64,
    t0: Instant,
}

fn open_span(name: &'static str, _reserved: u32) -> Option<Span> {
    let tid = thread_id();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    // One clock read for both the start stamp and the duration origin:
    // `ts_ns + dur_ns` then equals the drop time relative to the epoch,
    // so span ends are ordered exactly like their drops (nesting holds
    // at ns resolution instead of up to the skew between two reads).
    // The epoch must be pinned before `t0` is read: the process's first
    // span otherwise initialises it after its own start, `duration_since`
    // saturates to 0, and that span's apparent end drifts past its true
    // drop time by the init latency — a spurious nesting violation.
    let e = epoch();
    let t0 = Instant::now();
    let ts_ns = t0.duration_since(e).as_nanos() as u64;
    Some(Span {
        name,
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        tid,
        depth,
        ts_ns,
        t0,
    })
}

/// Opens a named span when the mode is `full`; `None` otherwise. Bind
/// the result: `let _s = obs::span("epoch");`.
#[inline]
pub fn span(name: &'static str) -> Option<Span> {
    if !full() {
        return None;
    }
    open_span(name, 0)
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.t0.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        push_record(TraceRec::Span {
            name: self.name,
            id: self.id,
            tid: self.tid,
            depth: self.depth,
            ts_ns: self.ts_ns,
            dur_ns,
        });
    }
}

fn push_record(rec: TraceRec) {
    let mut buf = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() >= MAX_RECORDS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.push(rec);
}

/// Span records dropped because the in-memory buffer was full.
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn rec_to_jsonl(rec: &TraceRec) -> String {
    match rec {
        TraceRec::Span { name, id, tid, depth, ts_ns, dur_ns } => {
            let mut n = String::new();
            escape(name, &mut n);
            format!(
                "{{\"kind\":\"span\",\"name\":\"{n}\",\"id\":{id},\"tid\":{tid},\
                 \"depth\":{depth},\"ts_ns\":{ts_ns},\"dur_ns\":{dur_ns}}}"
            )
        }
        TraceRec::Rollup(line) => line.clone(),
    }
}

/// Takes every buffered record, serialized as one JSONL line each
/// (span and rollup records interleaved in completion order).
pub fn drain_spans() -> Vec<String> {
    let drained: Vec<TraceRec> = {
        let mut buf = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *buf)
    };
    drained.iter().map(rec_to_jsonl).collect()
}

/// Drains every buffered record to `path` as JSONL; returns the record
/// count written.
pub fn write_trace(path: &str) -> std::io::Result<usize> {
    let lines = drain_spans();
    let mut body = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for l in &lines {
        body.push_str(l);
        body.push('\n');
    }
    std::fs::write(path, body)?;
    Ok(lines.len())
}

// ---------------------------------------------------------------------------
// Step rollups
// ---------------------------------------------------------------------------

static LAST_STEP_SNAP: Mutex<Option<Snapshot>> = Mutex::new(None);

/// Emits a per-training-step rollup record (full mode only): the delta
/// of every kernel counter since the previous rollup, as one JSONL
/// `{"kind":"rollup",...}` line in the trace buffer.
pub fn step_rollup(step: u64) {
    if !full() {
        return;
    }
    let now = snapshot();
    let mut last = LAST_STEP_SNAP.lock().unwrap_or_else(|e| e.into_inner());
    let delta = match last.as_ref() {
        Some(base) => now.since(base),
        None => now.clone(),
    };
    *last = Some(now);
    drop(last);

    let mut kernels = String::new();
    for k in Kernel::ALL {
        let s = delta.stats(k);
        if s.calls == 0 {
            continue;
        }
        if !kernels.is_empty() {
            kernels.push(',');
        }
        kernels.push_str(&format!(
            "{{\"kernel\":\"{}\",\"calls\":{},\"ns\":{},\"flops\":{},\
             \"bytes_in\":{},\"bytes_out\":{}}}",
            k.name(),
            s.calls,
            s.ns,
            s.flops,
            s.bytes_in,
            s.bytes_out
        ));
    }
    let line = format!(
        "{{\"kind\":\"rollup\",\"step\":{step},\"pool_regions\":{},\"pool_tasks\":{},\
         \"alloc_acquire_bytes\":{},\"alloc_release_bytes\":{},\
         \"dispatch_sparse\":{},\"dispatch_dense\":{},\
         \"plan_builds\":{},\"plan_hits\":{},\
         \"simd\":[{},{},{},{}],\"kernels\":[{kernels}]}}",
        delta.pool_regions,
        delta.pool_tasks,
        delta.alloc_acquire_bytes,
        delta.alloc_release_bytes,
        delta.dispatch_sparse,
        delta.dispatch_dense,
        delta.plan_builds,
        delta.plan_hits,
        delta.simd_tiers[0],
        delta.simd_tiers[1],
        delta.simd_tiers[2],
        delta.simd_tiers[3],
    );
    push_record(TraceRec::Rollup(line));
}

// ---------------------------------------------------------------------------
// Bench timing helpers
// ---------------------------------------------------------------------------

/// Runs `f` once and returns its result with the elapsed wall seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Min-of-reps wall timing: `warmup` untimed calls, then the fastest of
/// `reps` timed calls — the least noisy estimate on a shared machine
/// (drift and interrupts only ever add time). In `full` mode each timed
/// rep is also recorded as a `name` span.
pub fn time_min<R>(name: &'static str, warmup: usize, reps: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let _s = span(name);
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Renders `snap` as a per-kernel table sorted by elapsed time
/// (descending), one row per kernel with nonzero calls, followed by the
/// pool / allocator / dispatch tallies.
pub fn format_table(snap: &Snapshot) -> String {
    let mut rows: Vec<Kernel> = Kernel::ALL
        .into_iter()
        .filter(|&k| snap.stats(k).calls > 0)
        .collect();
    rows.sort_by_key(|&k| std::cmp::Reverse(snap.stats(k).ns));

    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>14} {:>12} {:>12}\n",
        "kernel", "calls", "ms", "mflops", "MB in", "MB out"
    ));
    for k in rows {
        let s = snap.stats(k);
        out.push_str(&format!(
            "{:<16} {:>10} {:>12.3} {:>14.1} {:>12.2} {:>12.2}\n",
            k.name(),
            s.calls,
            s.ns as f64 / 1e6,
            s.flops as f64 / 1e6,
            s.bytes_in as f64 / 1e6,
            s.bytes_out as f64 / 1e6,
        ));
    }
    out.push_str(&format!(
        "pool: {} regions / {} tasks; alloc: {} acquires ({:.2} MB), {} releases ({:.2} MB); \
         dispatch: {} sparse / {} dense; plan cache: {} builds / {} hits\n",
        snap.pool_regions,
        snap.pool_tasks,
        snap.alloc_acquires,
        snap.alloc_acquire_bytes as f64 / 1e6,
        snap.alloc_releases,
        snap.alloc_release_bytes as f64 / 1e6,
        snap.dispatch_sparse,
        snap.dispatch_dense,
        snap.plan_builds,
        snap.plan_hits,
    ));
    if snap.sharded_ops > 0 {
        out.push_str(&format!(
            "node sharding: {} sharded kernel runs over {} row shards\n",
            snap.sharded_ops, snap.shard_slabs,
        ));
    }
    if snap.plan_compiles > 0 || snap.plan_execs > 0 {
        out.push_str(&format!(
            "plan executor: {} compiles / {} runs ({} scheduled ops)\n",
            snap.plan_compiles, snap.plan_execs, snap.plan_ops,
        ));
    }
    let simd_total: u64 = snap.simd_tiers.iter().sum();
    if simd_total > 0 {
        let parts: Vec<String> = snap
            .simd_tiers
            .iter()
            .zip(SIMD_TIER_NAMES)
            .filter(|(&c, _)| c > 0)
            .map(|(&c, name)| format!("{c} {name}"))
            .collect();
        out.push_str(&format!("simd kernels: {}\n", parts.join(" / ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn: counters and mode are process-global, so the unit
    // checks run sequentially inside a single #[test].
    #[test]
    fn obs_unit_suite() {
        // Default mode is Off (no SAGDFN_TRACE in the test env).
        assert_eq!(trace_mode(), TraceMode::Off);
        assert!(kernel(Kernel::Matmul, 1, 1, 1).is_none());
        assert!(span("noop").is_none());
        tally(Kernel::Reduce, 10, 4, 4);
        assert_eq!(snapshot().stats(Kernel::Reduce).calls, 0);

        // Counters mode tallies calls / flops / bytes and elapsed ns.
        let prev = set_trace_mode(TraceMode::Counters);
        assert_eq!(prev, TraceMode::Off);
        let base = snapshot();
        {
            let _g = kernel(Kernel::Matmul, 2000, 800, 400);
            std::hint::black_box(());
        }
        tally(Kernel::Forward, 0, 0, 0);
        tally_pool_region(8);
        tally_alloc_acquire(1024);
        tally_alloc_release(1024);
        tally_dispatch(true);
        tally_dispatch(false);
        tally_shards(1); // no-op: unsharded runs tally nothing
        tally_shards(4);
        tally_plan(false);
        tally_plan(true);
        tally_plan_compile();
        tally_plan_exec(42);
        tally_simd(0);
        tally_simd(3);
        tally_simd(99); // clamps to the last slot
        let d = snapshot().since(&base);
        assert_eq!(d.stats(Kernel::Matmul).calls, 1);
        assert_eq!(d.stats(Kernel::Matmul).flops, 2000);
        assert_eq!(d.stats(Kernel::Matmul).bytes_in, 800);
        assert_eq!(d.stats(Kernel::Matmul).bytes_out, 400);
        assert_eq!(d.stats(Kernel::Forward).calls, 1);
        assert_eq!((d.pool_regions, d.pool_tasks), (1, 8));
        assert_eq!((d.alloc_acquires, d.alloc_acquire_bytes), (1, 1024));
        assert_eq!((d.dispatch_sparse, d.dispatch_dense), (1, 1));
        assert_eq!((d.sharded_ops, d.shard_slabs), (1, 4));
        assert_eq!((d.plan_builds, d.plan_hits), (1, 1));
        assert_eq!((d.plan_compiles, d.plan_execs, d.plan_ops), (1, 1, 42));
        assert_eq!(d.simd_tiers, [1, 0, 0, 2]);
        // Spans stay off in counters mode.
        assert!(span("counters_no_span").is_none());

        // Full mode: nested spans serialize with correct depths.
        set_trace_mode(TraceMode::Full);
        drain_spans(); // discard anything buffered
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        step_rollup(1);
        let lines = drain_spans();
        assert_eq!(lines.len(), 3);
        // Drop order: inner closes first.
        assert!(lines[0].contains("\"name\":\"inner\"") && lines[0].contains("\"depth\":1"));
        assert!(lines[1].contains("\"name\":\"outer\"") && lines[1].contains("\"depth\":0"));
        assert!(lines[2].contains("\"kind\":\"rollup\"") && lines[2].contains("\"step\":1"));

        // format_table orders by time and includes tallies.
        let table = format_table(&snapshot());
        assert!(table.contains("matmul"));
        assert!(table.contains("dispatch:"));

        reset_counters();
        assert_eq!(snapshot().stats(Kernel::Matmul).calls, 0);
        set_trace_mode(TraceMode::Off);
    }
}
