//! # sagdfn-proptest
//!
//! A small, deterministic property-testing harness exposing the subset of
//! the `proptest` crate's API that this workspace's test suites use. The
//! workspace must build with **no external crates** (no registry access),
//! so the real `proptest` is replaced by this shim via Cargo dependency
//! renaming (`proptest = { package = "sagdfn-proptest", ... }`); the test
//! files themselves are unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * No shrinking. A failing case reports its case number and generated
//!   inputs; the run is fully deterministic (the RNG is seeded from the
//!   test function's name), so failures reproduce exactly.
//! * No persistence files, forking, or timeout handling.
//! * Only the strategies the suites use: numeric ranges, tuples,
//!   `prop_map` / `prop_flat_map`, and `prop::collection::vec`.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so each property test draws an
    /// independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then one splitmix step to spread bits.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`; `hi > lo` required.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values. Unlike real proptest there is no value
/// tree / shrinking: `generate` produces the final value directly.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and draws
    /// from that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_in_range(self.start as u64, self.end as u64) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_in_range(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let span = (self.end - self.start) as f64;
        let v = self.start as f64 + span * rng.next_unit_f64();
        // Clamp against round-up to the (exclusive) end.
        (v as f32).min(self.end - self.end.abs() * f32::EPSILON)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as a vector-length specification: an exact length
    /// or a half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.next_in_range(self.start as u64, self.end as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `len` (exact or ranged) elements of `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!`-family macros).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items (each usually carrying its own `#[test]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body, failing the case (with the
/// condition text or a formatted message) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// The import surface test files pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
    /// Lets `prop::collection::vec(...)` resolve, as in real proptest.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f32..5.0).generate(&mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::from_name("vec");
        let exact = prop::collection::vec(0.0f32..1.0, 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
        for _ in 0..100 {
            let ranged = prop::collection::vec(0u64..9, 1usize..6).generate(&mut rng);
            assert!((1..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let s = (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| prop::collection::vec(0.0f32..1.0, r * c));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..=9).contains(&v.len()));
        }
        let doubled = (1u64..10).prop_map(|x| x * 2).generate(&mut rng);
        assert_eq!(doubled % 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100, "out of range: {a} {b}");
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0.0f32..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
