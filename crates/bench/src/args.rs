//! Minimal flag parsing shared by all harness binaries.

use sagdfn_data::Scale;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Run size.
    pub scale: Scale,
    /// Dataset/model seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: String,
    /// Optional model-name filter (`--only SAGDFN,DCRNN`).
    pub only: Option<Vec<String>>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: Scale::Tiny,
            seed: 42,
            out_dir: "results".to_string(),
            only: None,
        }
    }
}

impl RunArgs {
    /// Parses `std::env::args()`, panicking with usage on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = RunArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| panic!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value();
                    out.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale '{v}' (tiny|small|paper)"));
                }
                "--seed" => {
                    out.seed = value().parse().expect("--seed wants an integer");
                }
                "--out" => out.out_dir = value(),
                "--only" => {
                    out.only =
                        Some(value().split(',').map(|s| s.trim().to_uppercase()).collect());
                }
                other => panic!("unknown flag '{other}'"),
            }
        }
        out
    }

    /// True when `name` passes the `--only` filter.
    pub fn wants(&self, name: &str) -> bool {
        match &self.only {
            None => true,
            Some(list) => list.iter().any(|m| name.to_uppercase().contains(m)),
        }
    }

    /// Opens (and creates) the CSV output file for an experiment.
    pub fn csv_writer(&self, experiment: &str) -> std::io::Result<std::fs::File> {
        std::fs::create_dir_all(&self.out_dir)?;
        std::fs::File::create(format!("{}/{}.csv", self.out_dir, experiment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> RunArgs {
        RunArgs::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.seed, 42);
        assert!(a.wants("anything"));
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--scale", "small", "--seed", "7", "--out", "/tmp/r"]);
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, "/tmp/r");
    }

    #[test]
    fn only_filter() {
        let a = parse(&["--only", "SAGDFN,dcrnn"]);
        assert!(a.wants("SAGDFN"));
        assert!(a.wants("DCRNN"));
        assert!(!a.wants("AGCRN"));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics() {
        parse(&["--scale", "huge"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn bad_flag_panics() {
        parse(&["--frobnicate"]);
    }
}
