//! Terminal plotting helpers for the figure harnesses.

/// Unicode block levels for sparklines, lowest to highest.
const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line unicode sparkline. NaNs render as
/// spaces; a constant series renders at the lowest level.
pub fn sparkline(values: &[f32]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let lo = finite.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = finite.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = (((v - lo) / span) * (LEVELS.len() as f32 - 1.0)).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Downsamples a series to at most `width` points by bucket-averaging, so
/// long test traces fit one terminal line.
pub fn downsample(values: &[f32], width: usize) -> Vec<f32> {
    assert!(width > 0, "width must be positive");
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let start = i * values.len() / width;
            let end = ((i + 1) * values.len() / width).max(start + 1);
            let bucket = &values[start..end];
            bucket.iter().sum::<f32>() / bucket.len() as f32
        })
        .collect()
}

/// Two-row truth/prediction comparison ready for `println!`.
pub fn trace_pair(truth: &[f32], pred: &[f32], width: usize) -> String {
    format!(
        "truth {}\npred  {}",
        sparkline(&downsample(truth, width)),
        sparkline(&downsample(pred, width))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_monotone_series_uses_full_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
        // Non-decreasing levels for non-decreasing data.
        let levels: Vec<usize> = chars
            .iter()
            .map(|c| LEVELS.iter().position(|l| l == c).unwrap())
            .collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sparkline_constant_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert!(s.chars().all(|c| c == '▁'), "{s}");
    }

    #[test]
    fn sparkline_handles_nan() {
        let s: Vec<char> = sparkline(&[0.0, f32::NAN, 1.0]).chars().collect();
        assert_eq!(s[1], ' ');
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let ds = downsample(&vals, 10);
        assert_eq!(ds.len(), 10);
        let mean_full: f32 = vals.iter().sum::<f32>() / 100.0;
        let mean_ds: f32 = ds.iter().sum::<f32>() / 10.0;
        assert!((mean_full - mean_ds).abs() < 1.0);
    }

    #[test]
    fn downsample_short_series_passthrough() {
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn trace_pair_formats_two_rows() {
        let out = trace_pair(&[1.0, 2.0, 3.0], &[1.0, 2.0, 2.5], 40);
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with("truth "));
    }
}
