//! Extension experiment: the OOM frontier — maximum processable graph
//! size per model family and batch size on a 32 GB V100, extending the
//! paper's Table IV sizes (AGCRN 1750, GTS 1000, D2STGNN 200 at B = 64)
//! into a full frontier.

use sagdfn_bench::RunArgs;
use sagdfn_memsim::{ModelFamily, V100_32GB};
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!("EXTENSION — max processable N on {} by batch size", V100_32GB.name);
    let batches = [16usize, 32, 64, 128];
    print!("{:>16}", "model");
    for b in batches {
        print!(" {:>10}", format!("B={b}"));
    }
    println!();
    let mut csv = args.csv_writer("ext_oom_frontier").expect("csv");
    writeln!(csv, "model,batch,max_n").unwrap();
    for family in ModelFamily::ALL {
        if family.is_classical() {
            continue;
        }
        print!("{:>16}", family.name());
        for b in batches {
            let max = family.max_processable_n(b, &V100_32GB);
            let cell = if max == usize::MAX {
                "inf".to_string()
            } else {
                max.to_string()
            };
            print!(" {cell:>10}");
            writeln!(csv, "{},{b},{cell}", family.name()).unwrap();
        }
        println!();
    }
    println!("\nwrote {}/ext_oom_frontier.csv", args.out_dir);
    println!(
        "anchors: AGCRN@64 ≈ 1750, GTS@64 ≈ 1000, D2STGNN@64 ≈ 200 (paper Table IV); \
         SAGDFN@64 ≈ 5000 (largest size the paper trains)"
    );
}
