//! Extension experiment: the OOM frontier — maximum processable graph
//! size per model family and batch size on a 32 GB V100, extending the
//! paper's Table IV sizes (AGCRN 1750, GTS 1000, D2STGNN 200 at B = 64)
//! into a full frontier.

use sagdfn_bench::RunArgs;
use sagdfn_memsim::{plan_shards, ModelFamily, V100_32GB};
use std::io::Write;

/// Largest N whose node-sharded plan (DESIGN.md §14) still fits the
/// card: the graph-side working set shrinks with the shard count, so the
/// frontier is set by the unshardable activations.
fn max_sharded_n(batch: usize) -> usize {
    let fits = |n: usize| plan_shards(n, batch, V100_32GB.capacity_bytes).fits;
    if !fits(10) {
        return 0;
    }
    let (mut lo, mut hi) = (10usize, 10_000_000);
    if fits(hi) {
        return usize::MAX;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    let args = RunArgs::parse();
    println!("EXTENSION — max processable N on {} by batch size", V100_32GB.name);
    let batches = [16usize, 32, 64, 128];
    print!("{:>16}", "model");
    for b in batches {
        print!(" {:>10}", format!("B={b}"));
    }
    println!();
    let mut csv = args.csv_writer("ext_oom_frontier").expect("csv");
    writeln!(csv, "model,batch,max_n").unwrap();
    for family in ModelFamily::ALL {
        if family.is_classical() {
            continue;
        }
        print!("{:>16}", family.name());
        for b in batches {
            let max = family.max_processable_n(b, &V100_32GB);
            let cell = if max == usize::MAX {
                "inf".to_string()
            } else {
                max.to_string()
            };
            print!(" {cell:>10}");
            writeln!(csv, "{},{b},{cell}", family.name()).unwrap();
        }
        println!();
    }
    // The sharded frontier: same SAGDFN memory model, but the adaptive
    // graph tensors are split across node shards (`plan_shards`), so only
    // one shard's slice is live at a time.
    print!("{:>16}", "sagdfn+shards");
    for b in batches {
        let max = max_sharded_n(b);
        let cell = if max == usize::MAX {
            "inf".to_string()
        } else {
            max.to_string()
        };
        print!(" {cell:>10}");
        writeln!(csv, "sagdfn+shards,{b},{cell}").unwrap();
    }
    println!();
    println!("\nwrote {}/ext_oom_frontier.csv", args.out_dir);
    println!(
        "anchors: AGCRN@64 ≈ 1750, GTS@64 ≈ 1000, D2STGNN@64 ≈ 200 (paper Table IV); \
         SAGDFN@64 ≈ 5000 (largest size the paper trains)"
    );
}
