//! Extension experiment: robustness to missing data. The paper's Figure 4
//! discussion claims SAGDFN "can resist real-world noise without
//! overfitting"; this harness quantifies that by sweeping the fraction of
//! missing (zeroed) readings in a METR-LA-like dataset and reporting the
//! degradation of SAGDFN vs LSTM (temporal-only control).

use sagdfn_baselines::deep::DeepConfig;
use sagdfn_baselines::sagdfn_adapter::SagdfnForecaster;
use sagdfn_baselines::temporal::LstmSeq2Seq;
use sagdfn_baselines::Forecaster;
use sagdfn_bench::RunArgs;
use sagdfn_core::SagdfnConfig;
use sagdfn_data::{average, Scale, SplitSpec, ThreeWaySplit};
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!(
        "EXTENSION — robustness to missing readings (scale {:?})",
        args.scale
    );
    let (nodes, days) = match args.scale {
        Scale::Tiny => (24usize, 4usize),
        Scale::Small => (60, 8),
        Scale::Paper => (207, 122),
    };
    let mut csv = args.csv_writer("ext_robustness").expect("csv");
    writeln!(csv, "missing_frac,model,mae,rmse,mape").unwrap();
    println!(
        "{:>10} {:>14} {:>14}",
        "missing", "SAGDFN MAE", "LSTM MAE"
    );
    for missing in [0.0f32, 0.02, 0.05, 0.10, 0.20] {
        let data = sagdfn_data::synth::TrafficConfig {
            nodes,
            steps: 288 * days,
            missing_frac: missing,
            seed: 1204,
            ..Default::default()
        }
        .generate("robustness");
        let n = data.dataset.nodes();
        let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(12, 12));

        let mut sag = SagdfnForecaster::new(n, SagdfnConfig::for_scale(args.scale, n));
        sag.fit(&split);
        let m_sag = average(&sag.evaluate(&split.test));

        let mut lstm = LstmSeq2Seq::new(DeepConfig::for_scale(args.scale));
        lstm.fit(&split);
        let m_lstm = average(&lstm.evaluate(&split.test));

        println!(
            "{:>9.0}% {:>14.3} {:>14.3}",
            missing * 100.0,
            m_sag.mae,
            m_lstm.mae
        );
        writeln!(csv, "{missing},SAGDFN,{},{},{}", m_sag.mae, m_sag.rmse, m_sag.mape).unwrap();
        writeln!(csv, "{missing},LSTM,{},{},{}", m_lstm.mae, m_lstm.rmse, m_lstm.mape).unwrap();
    }
    println!("\nwrote {}/ext_robustness.csv", args.out_dir);
    println!(
        "expectation: both degrade gracefully (masked loss/metrics); SAGDFN's spatial \
         diffusion lets it impute from neighbors, so its curve should stay flatter"
    );
}
