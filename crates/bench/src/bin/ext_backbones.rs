//! Extension experiment (not a paper table): the paper's Section IV-C
//! claims the fast graph convolution is "compatible with RNNs, TCNs and
//! attention mechanisms". This harness compares the GRU encoder-decoder
//! (the paper's model) with the TCN backbone on the same dataset and
//! slim adjacency machinery.

use sagdfn_baselines::sagdfn_adapter::SagdfnForecaster;
use sagdfn_baselines::Forecaster;
use sagdfn_bench::{load, DatasetKind, RunArgs};
use sagdfn_core::{Backbone, SagdfnConfig};
use sagdfn_data::average;
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!(
        "EXTENSION — GRU vs TCN vs self-attention backbone on metr-la-like (scale {:?})",
        args.scale
    );
    let data = load(DatasetKind::MetrLa, args.scale);
    let n = data.ctx.n;
    let mut csv = args.csv_writer("ext_backbones").expect("csv");
    writeln!(csv, "backbone,mae,rmse,mape,params,train_s").unwrap();
    for backbone in [Backbone::Gru, Backbone::Tcn, Backbone::SelfAttention] {
        let mut cfg = SagdfnConfig::for_scale(args.scale, n);
        cfg.backbone = backbone;
        let mut model = SagdfnForecaster::new(n, cfg);
        let summary = model.fit(&data.split);
        let m = average(&model.evaluate(&data.split.test));
        println!(
            "{backbone:?}: avg MAE {:.3}  RMSE {:.3}  MAPE {:.1}%  ({} params, {:.1}s)",
            m.mae,
            m.rmse,
            m.mape * 100.0,
            summary.param_count,
            summary.train_seconds
        );
        writeln!(
            csv,
            "{backbone:?},{},{},{},{},{:.2}",
            m.mae, m.rmse, m.mape, summary.param_count, summary.train_seconds
        )
        .unwrap();
    }
    println!("\nwrote {}/ext_backbones.csv", args.out_dir);
    println!("expectation: both backbones train; the slim graph machinery is backbone-agnostic");
}
