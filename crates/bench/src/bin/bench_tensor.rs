//! Tensor-substrate perf baseline: times the pooled hot kernels against
//! their forced-serial paths and writes `BENCH_tensor.json`, giving
//! later PRs a trajectory to compare against.
//!
//! Usage: `bench_tensor [--out FILE] [--reps N]` (defaults:
//! `BENCH_tensor.json`, 7 repetitions — the minimum wall time is kept).

use sagdfn_entmax::entmax_rows;
use sagdfn_json::Json;
use sagdfn_tensor::{pool, Rng64, Tensor};
use std::hint::black_box;
use std::time::Instant;

fn rand(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

/// Minimum wall-clock seconds of `f` over `reps` runs (after one warmup).
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Case {
    name: &'static str,
    pooled_s: f64,
    serial_s: f64,
}

impl Case {
    fn measure(name: &'static str, reps: usize, mut f: impl FnMut()) -> Case {
        let pooled_s = time_min(reps, &mut f);
        let serial_s = pool::run_serial(|| time_min(reps, &mut f));
        Case {
            name,
            pooled_s,
            serial_s,
        }
    }

    fn speedup(&self) -> f64 {
        self.serial_s / self.pooled_s
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name)),
            ("pooled_s", Json::from(self.pooled_s)),
            ("serial_s", Json::from(self.serial_s)),
            ("speedup", Json::from(self.speedup())),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_tensor.json".to_string();
    let mut reps = 7usize;
    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--reps" => reps = it.next().expect("--reps needs a value").parse().expect("reps"),
            other => panic!("unknown flag '{other}' (expected --out / --reps)"),
        }
    }

    println!(
        "tensor perf baseline: {} worker threads, {} reps (min kept)",
        pool::num_threads(),
        reps
    );

    let m512 = (rand(&[512, 512], 1), rand(&[512, 512], 2));
    let m256 = (rand(&[256, 256], 3), rand(&[256, 256], 4));
    let batched = (rand(&[16, 64, 64], 5), rand(&[16, 64, 64], 6));
    let wide = (rand(&[4096, 2048], 7), rand(&[4096, 2048], 8));
    let reduce_in = rand(&[4_000_000], 9);
    let trans_in = rand(&[1024, 1024], 10);
    let entmax_in: Vec<f32> = {
        let mut rng = Rng64::new(11);
        (0..2000 * 100).map(|_| rng.next_gaussian()).collect()
    };

    let cases = vec![
        Case::measure("matmul_512", reps, || {
            black_box(m512.0.matmul(&m512.1));
        }),
        Case::measure("matmul_256", reps, || {
            black_box(m256.0.matmul(&m256.1));
        }),
        Case::measure("batched_matmul_16x64", reps, || {
            black_box(batched.0.matmul(&batched.1));
        }),
        Case::measure("elementwise_add_4096x2048", reps, || {
            black_box(wide.0.add(&wide.1));
        }),
        Case::measure("sigmoid_4096x2048", reps, || {
            black_box(wide.0.sigmoid());
        }),
        Case::measure("sum_4M", reps, || {
            black_box(reduce_in.sum());
        }),
        Case::measure("transpose_1024", reps, || {
            black_box(trans_in.transpose_last2());
        }),
        Case::measure("entmax_rows_2000x100", reps, || {
            black_box(entmax_rows(&entmax_in, 100, 1.5));
        }),
    ];

    for c in &cases {
        println!(
            "  {:<28} pooled {:>9.3} ms   serial {:>9.3} ms   speedup {:>5.2}x",
            c.name,
            c.pooled_s * 1e3,
            c.serial_s * 1e3,
            c.speedup()
        );
    }

    let doc = Json::obj([
        ("threads", Json::from(pool::num_threads())),
        ("reps", Json::from(reps)),
        (
            "cases",
            Json::Arr(cases.iter().map(Case::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty().expect("serialize"))
        .expect("write BENCH_tensor.json");
    println!("wrote {out_path}");
}
