//! Tensor-substrate perf baseline: times the pooled hot kernels against
//! their forced-serial paths — and the SIMD dispatch against the forced
//! scalar kernels — then writes `BENCH_tensor.json`.
//!
//! The pooled / serial / scalar timings of one case are interleaved rep
//! by rep so no arm pays the page-fault and cache-warmup cost of going
//! first. (The old pooled-then-serial ordering charged that cost to the
//! pooled arm, which read as a phantom pooled regression at `threads=1`
//! where both arms run identical code.)
//!
//! Usage: `bench_tensor [--out FILE] [--reps N] [--check BASELINE]`
//!
//! With `--check`, two gates guard the SIMD win (exit nonzero on
//! failure): `matmul_512`'s single-thread SIMD speedup must clear the
//! per-tier floor (3.0× on avx512, 1.5× on avx2, 1.2× on neon; skipped
//! on scalar-only hosts) and stay within 25 % of the recorded baseline,
//! and at `threads=1` the pooled arm must stay within noise (≥ 0.85×) of
//! the serial arm for every case — `scripts/check.sh` runs this as the
//! tensor regression guard.

use sagdfn_entmax::entmax_rows;
use sagdfn_json::Json;
use sagdfn_obs as obs;
use sagdfn_tensor::{dispatch, pool, set_simd_mode, simd_tier, Rng64, SimdMode, SimdTier, Tensor};
use std::hint::black_box;
use std::time::Instant;

fn rand(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

/// Wall-clock seconds of one invocation of `f`.
fn time_once(f: &mut impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Runs `f` once with the scalar kernels forced, restoring the previous
/// dispatch mode afterwards.
fn with_scalar<R>(f: impl FnOnce() -> R) -> R {
    let prev = set_simd_mode(SimdMode::Scalar);
    let r = f();
    set_simd_mode(prev);
    r
}

struct Case {
    name: &'static str,
    pooled_s: f64,
    serial_s: f64,
    simd_serial_s: f64,
    scalar_serial_s: f64,
    flops: u64,
}

impl Case {
    fn measure(name: &'static str, reps: usize, mut f: impl FnMut()) -> Case {
        // One counted run gives the flops column (and faults in the
        // output pages before anything is timed).
        let prev_trace = obs::set_trace_mode(obs::TraceMode::Counters);
        let base = obs::snapshot();
        f();
        let flops: u64 = obs::snapshot()
            .since(&base)
            .kernels
            .iter()
            .map(|k| k.flops)
            .sum();
        obs::set_trace_mode(prev_trace);

        // Pooled vs serial: one warm run each, then interleaved timed
        // reps. Interleaving keeps the cache/allocator state each arm
        // sees symmetric — at threads=1 the two arms run identical code,
        // so any systematic gap here would be a measurement artifact.
        pool::run_serial(&mut f);
        f();
        let (mut pooled_s, mut serial_s) = (f64::INFINITY, f64::INFINITY);
        for r in 0..reps {
            // Alternate which arm goes first: timings drift downward for
            // several reps (page faults, frequency ramp), and a fixed
            // order would hand the later arm the lower points.
            if r % 2 == 0 {
                pooled_s = pooled_s.min(time_once(&mut f));
                serial_s = serial_s.min(pool::run_serial(|| time_once(&mut f)));
            } else {
                serial_s = serial_s.min(pool::run_serial(|| time_once(&mut f)));
                pooled_s = pooled_s.min(time_once(&mut f));
            }
        }
        // SIMD vs scalar, both single-thread, interleaved for the same
        // reason: the speedup ratio must compare the two kernel sets
        // under the same machine load, not across drifting time windows.
        with_scalar(|| pool::run_serial(&mut f));
        let (mut simd_serial_s, mut scalar_serial_s) = (f64::INFINITY, f64::INFINITY);
        for r in 0..reps {
            if r % 2 == 0 {
                simd_serial_s = simd_serial_s.min(pool::run_serial(|| time_once(&mut f)));
                scalar_serial_s =
                    scalar_serial_s.min(with_scalar(|| pool::run_serial(|| time_once(&mut f))));
            } else {
                scalar_serial_s =
                    scalar_serial_s.min(with_scalar(|| pool::run_serial(|| time_once(&mut f))));
                simd_serial_s = simd_serial_s.min(pool::run_serial(|| time_once(&mut f)));
            }
        }
        let serial_s = serial_s.min(simd_serial_s);
        Case {
            name,
            pooled_s,
            serial_s,
            simd_serial_s,
            scalar_serial_s,
            flops,
        }
    }

    fn speedup(&self) -> f64 {
        self.serial_s / self.pooled_s
    }

    /// Single-thread scalar-kernels / SIMD-kernels time ratio, from the
    /// interleaved phase that times both under the same machine load.
    fn simd_speedup(&self) -> f64 {
        self.scalar_serial_s / self.simd_serial_s
    }

    /// Counted flops over the best single-thread SIMD time.
    fn gflops(&self) -> f64 {
        self.flops as f64 / self.serial_s / 1e9
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name)),
            ("pooled_s", Json::from(self.pooled_s)),
            ("serial_s", Json::from(self.serial_s)),
            ("simd_serial_s", Json::from(self.simd_serial_s)),
            ("scalar_serial_s", Json::from(self.scalar_serial_s)),
            ("speedup", Json::from(self.speedup())),
            ("simd_speedup", Json::from(self.simd_speedup())),
            ("gflops", Json::from(self.gflops())),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_tensor.json".to_string();
    let mut reps = 7usize;
    let mut check: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--reps" => reps = it.next().expect("--reps needs a value").parse().expect("reps"),
            "--check" => check = Some(it.next().expect("--check needs a value").clone()),
            other => panic!("unknown flag '{other}' (expected --out / --reps / --check)"),
        }
    }

    println!(
        "tensor perf baseline: {} worker threads, {} reps (min kept)",
        pool::num_threads(),
        reps
    );
    println!("{}", dispatch::description());

    let m512 = (rand(&[512, 512], 1), rand(&[512, 512], 2));
    let m256 = (rand(&[256, 256], 3), rand(&[256, 256], 4));
    let batched = (rand(&[16, 64, 64], 5), rand(&[16, 64, 64], 6));
    let wide = (rand(&[4096, 2048], 7), rand(&[4096, 2048], 8));
    let reduce_in = rand(&[4_000_000], 9);
    let trans_in = rand(&[1024, 1024], 10);
    let entmax_in: Vec<f32> = {
        let mut rng = Rng64::new(11);
        (0..2000 * 100).map(|_| rng.next_gaussian()).collect()
    };

    let cases = vec![
        Case::measure("matmul_512", reps, || {
            black_box(m512.0.matmul(&m512.1));
        }),
        Case::measure("matmul_512_nt", reps, || {
            black_box(m512.0.matmul_nt(&m512.1));
        }),
        Case::measure("matmul_256", reps, || {
            black_box(m256.0.matmul(&m256.1));
        }),
        Case::measure("batched_matmul_16x64", reps, || {
            black_box(batched.0.matmul(&batched.1));
        }),
        Case::measure("elementwise_add_4096x2048", reps, || {
            black_box(wide.0.add(&wide.1));
        }),
        Case::measure("sigmoid_4096x2048", reps, || {
            black_box(wide.0.sigmoid());
        }),
        Case::measure("sum_4M", reps, || {
            black_box(reduce_in.sum());
        }),
        Case::measure("transpose_1024", reps, || {
            black_box(trans_in.transpose_last2());
        }),
        Case::measure("entmax_rows_2000x100", reps, || {
            black_box(entmax_rows(&entmax_in, 100, 1.5));
        }),
    ];

    println!(
        "  {:<28} {:>11} {:>11} {:>7} {:>11} {:>7} {:>8}",
        "case", "pooled ms", "serial ms", "pool x", "scalar ms", "simd x", "gflops"
    );
    for c in &cases {
        // Kernels whose obs formula charges no flops (pure data movement)
        // show "-" rather than a misleading 0.00.
        let gflops = if c.flops > 0 {
            format!("{:8.2}", c.gflops())
        } else {
            format!("{:>8}", "-")
        };
        println!(
            "  {:<28} {:>11.3} {:>11.3} {:>6.2}x {:>11.3} {:>6.2}x {gflops}",
            c.name,
            c.pooled_s * 1e3,
            c.serial_s * 1e3,
            c.speedup(),
            c.scalar_serial_s * 1e3,
            c.simd_speedup(),
        );
    }

    let doc = Json::obj([
        ("threads", Json::from(pool::num_threads())),
        ("reps", Json::from(reps)),
        ("simd_tier", Json::from(simd_tier().name())),
        (
            "cases",
            Json::Arr(cases.iter().map(Case::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty().expect("serialize"))
        .expect("write BENCH_tensor.json");
    println!("wrote {out_path}");

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("parse baseline");
        let mut failed = false;

        // Gate 1: the SIMD matmul win must hold absolutely per tier and
        // not regress more than 25% against the recorded baseline.
        // Scalar-only hosts have nothing to compare, so they skip it.
        let tier = simd_tier();
        let tier_floor = match tier {
            SimdTier::Avx512 => Some(3.0),
            SimdTier::Avx2 => Some(1.5),
            SimdTier::Neon => Some(1.2),
            SimdTier::Scalar => None,
        };
        if let Some(tier_floor) = tier_floor {
            let matmul = cases.iter().find(|c| c.name == "matmul_512").expect("case");
            let base_speedup = baseline
                .get("cases")
                .and_then(|c| match c {
                    Json::Arr(items) => items.iter().find(|it| {
                        it.get("name").and_then(|n| n.as_str().ok()) == Some("matmul_512")
                    }),
                    _ => None,
                })
                .and_then(|it| it.get("simd_speedup"))
                .and_then(|v| v.as_f64().ok());
            // Baseline recorded on a different tier (or pre-SIMD) can't
            // anchor the relative check; the absolute floor still holds.
            let same_tier =
                baseline.get("simd_tier").and_then(|v| v.as_str().ok()) == Some(tier.name());
            let floor = match base_speedup {
                Some(b) if same_tier => (b * 0.75).max(tier_floor),
                _ => tier_floor,
            };
            println!(
                "  regression guard: matmul_512 simd speedup {:.2}x on {} (floor {floor:.2}x)",
                matmul.simd_speedup(),
                tier.name()
            );
            if matmul.simd_speedup() < floor {
                eprintln!("tensor regression: matmul_512 SIMD speedup fell below the floor");
                failed = true;
            }
        } else {
            println!("  regression guard: scalar-only host, SIMD speedup gate skipped");
        }

        // Gate 2: at threads=1 the pooled and serial arms run identical
        // code, so pooled must sit within measurement noise of serial.
        if pool::num_threads() == 1 {
            for c in &cases {
                if c.speedup() < 0.85 {
                    eprintln!(
                        "tensor regression: '{}' pooled arm is {:.2}x serial at threads=1 \
                         (must stay >= 0.85x)",
                        c.name,
                        c.speedup()
                    );
                    failed = true;
                }
            }
        }

        if failed {
            std::process::exit(1);
        }
    }
}
