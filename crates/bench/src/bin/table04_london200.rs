//! Table IV: London200 — accuracy on a fixed 200-node evaluation subset
//! as the *training* graph grows. Baselines train at their maximum
//! processable graph size (AGCRN 1750, GTS 1000, D2STGNN 200 at paper
//! scale); SAGDFN trains at 200/1000/1750/5000 and improves monotonically.
//!
//! At tiny/small run scales the node counts shrink proportionally but the
//! protocol is identical: one big city dataset, training subsets are node
//! prefixes, metrics are computed on the first `n_eval` nodes only.

use sagdfn_baselines::registry::{build, BuildContext};
use sagdfn_baselines::sagdfn_adapter::SagdfnForecaster;
use sagdfn_baselines::Forecaster;
use sagdfn_bench::RunArgs;
use sagdfn_core::SagdfnConfig;
use sagdfn_data::{Scale, SplitSpec, ThreeWaySplit};
use sagdfn_memsim::ModelFamily;
use std::io::Write;

/// Training-set node counts per run scale: the paper's
/// (200, 1000, 1750, 5000) ladder, shrunk proportionally.
fn ladder(scale: Scale) -> (usize, Vec<usize>) {
    match scale {
        // (n_eval, sagdfn training sizes)
        Scale::Tiny => (12, vec![12, 24, 36, 48]),
        Scale::Small => (40, vec![40, 100, 150, 200]),
        Scale::Paper => (200, vec![200, 1000, 1750, 5000]),
    }
}

/// Baseline max processable sizes, proportional to the paper's
/// AGCRN 1750 / GTS 1000 / D2STGNN 200 at 5000 max.
fn baseline_sizes(scale: Scale) -> Vec<(ModelFamily, usize)> {
    let (_, l) = ladder(scale);
    let max = *l.last().unwrap();
    vec![
        (ModelFamily::Agcrn, max * 1750 / 5000),
        (ModelFamily::Gts, max * 1000 / 5000),
        (ModelFamily::D2stgnn, max * 200 / 5000),
    ]
}

fn main() {
    let args = RunArgs::parse();
    let (n_eval, sagdfn_sizes) = ladder(args.scale);
    let max_nodes = *sagdfn_sizes.last().unwrap();

    // One big city; every training set is a node prefix, so the n_eval
    // evaluation nodes are identical across rows.
    let big = {
        // city2000_like caps at its scale's node count; regenerate with a
        // custom config when the ladder needs more.
        let base = sagdfn_data::city2000_like(args.scale, 0);
        if base.dataset.nodes() >= max_nodes {
            base
        } else {
            sagdfn_data::synth::TrafficConfig {
                nodes: max_nodes,
                steps: base.dataset.steps(),
                interval_min: 60,
                knn: 8,
                speed_lo: 15.0,
                speed_hi: 35.0,
                rush_strength: 0.45,
                noise_scale: 1.0,
                missing_frac: 0.0,
                incident_rate: 2.0,
                seed: 9000,
            }
            .generate("london-big")
        }
    };
    println!(
        "TABLE IV — London200 protocol (scale {:?}): eval on first {n_eval} nodes",
        args.scale
    );
    println!(
        "{:>12} {:>8}  {:^23} {:^23} {:^23}",
        "model", "#train-N", "Horizon 3", "Horizon 6", "Horizon 12"
    );
    let mut csv = args.csv_writer("table04_london200").expect("csv");
    writeln!(csv, "model,train_n,mae3,rmse3,mape3,mae6,rmse6,mape6,mae12,rmse12,mape12").unwrap();

    let mut run_at = |name: &str, model: &mut dyn Forecaster, n_train: usize| {
        let sub = big.dataset.subset_nodes(n_train);
        let split = ThreeWaySplit::new(sub, SplitSpec::paper(12, 12));
        model.fit(&split);
        let (pred, target) = model.predict(&split.test);
        let metrics = sagdfn_bench::runner::subset_metrics(&pred, &target, n_eval);
        let at = |hz: usize| metrics[(hz - 1).min(metrics.len() - 1)];
        println!(
            "{name:>12} {n_train:>8}  {} | {} | {}",
            at(3).row(),
            at(6).row(),
            at(12).row()
        );
        writeln!(
            csv,
            "{name},{n_train},{},{},{},{},{},{},{},{},{}",
            at(3).mae,
            at(3).rmse,
            at(3).mape,
            at(6).mae,
            at(6).rmse,
            at(6).mape,
            at(12).mae,
            at(12).rmse,
            at(12).mape
        )
        .unwrap();
    };

    // Baselines at their maximum processable sizes.
    for (family, n_train) in baseline_sizes(args.scale) {
        if !args.wants(family.name()) {
            continue;
        }
        let n_train = n_train.max(n_eval);
        let graph_sub = big.graph.adj.topk_rows((n_train / 4).clamp(4, 100));
        let idx: Vec<usize> = (0..n_train).collect();
        let topo = graph_sub
            .weights()
            .index_select(0, &idx)
            .index_select(1, &idx);
        let ctx = BuildContext {
            n: n_train,
            h: 12,
            f: 12,
            scale: args.scale,
            topology: topo,
        };
        let mut model = build(family, &ctx);
        run_at(family.name(), model.as_mut(), n_train);
    }

    // SAGDFN up the training-size ladder.
    if args.wants("SAGDFN") {
        for &n_train in &sagdfn_sizes {
            let mut model =
                SagdfnForecaster::new(n_train, SagdfnConfig::for_scale(args.scale, n_train));
            run_at("SAGDFN", &mut model, n_train);
        }
    }
    println!("\nwrote {}/table04_london200.csv", args.out_dir);
    println!("expectation: SAGDFN rows improve monotonically with #train-N");
}
