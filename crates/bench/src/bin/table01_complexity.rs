//! Table I: complexity of adaptive-weight-GNN forecasting methods,
//! plus numeric memory/FLOP estimates that back the asymptotic claims.

use sagdfn_memsim::{complexity_row, flops_estimate, ModelFamily, WorkloadDims};
use std::io::Write;

fn main() {
    let args = sagdfn_bench::RunArgs::parse();
    println!("TABLE I — Complexity of adaptive-weight-GNN forecasting methods");
    println!("{:<8} {:<24} {:<20}", "Model", "Computation", "Memory");
    let families = [
        ModelFamily::Agcrn,
        ModelFamily::Gts,
        ModelFamily::Step,
        ModelFamily::Sagdfn,
    ];
    for fam in families {
        let row = complexity_row(fam).expect("Table I family");
        println!("{:<8} {:<24} {:<20}", row.model, row.computation, row.memory);
    }

    println!("\nNumeric estimates (d=100, D=64, M=100, batch 32, T=24):");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "Model", "flops N=500", "flops N=2000", "mem N=500", "mem N=2000"
    );
    let mut csv = args.csv_writer("table01_complexity").expect("csv");
    writeln!(csv, "model,n,flops,mem_bytes").unwrap();
    for fam in families {
        let d500 = WorkloadDims::paper(500, 32);
        let d2000 = WorkloadDims::paper(2000, 32);
        let row = complexity_row(fam).unwrap();
        println!(
            "{:<8} {:>14} {:>14} {:>13.2}G {:>13.2}G",
            row.model,
            flops_estimate(fam, &d500),
            flops_estimate(fam, &d2000),
            fam.training_bytes(&d500) as f64 / 1e9,
            fam.training_bytes(&d2000) as f64 / 1e9,
        );
        for n in [207, 500, 1000, 1918, 2000, 4000, 8000] {
            let dims = WorkloadDims::paper(n, 32);
            writeln!(
                csv,
                "{},{},{},{}",
                row.model,
                n,
                flops_estimate(fam, &dims),
                fam.training_bytes(&dims)
            )
            .unwrap();
        }
    }
    println!("\nwrote {}/table01_complexity.csv", args.out_dir);
}
