//! Figure 3: hyper-parameter sensitivity — (a) entmax α on METR-LA-like,
//! (b) attention heads on METR-LA-like, (c) significant-neighbor count M
//! on CARPARK1918-like. Each point trains a model and reports average
//! test MAE.

use sagdfn_baselines::sagdfn_adapter::SagdfnForecaster;
use sagdfn_baselines::Forecaster;
use sagdfn_bench::{load, DatasetKind, RunArgs};
use sagdfn_core::SagdfnConfig;
use sagdfn_data::average;
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!("FIGURE 3 — hyper-parameter sensitivity (scale {:?})", args.scale);
    let mut csv = args.csv_writer("fig03_sensitivity").expect("csv");
    writeln!(csv, "panel,value,mae,rmse,mape").unwrap();

    // (a) alpha sweep on METR-LA-like.
    let metr = load(DatasetKind::MetrLa, args.scale);
    println!("\n(a) entmax alpha on metr-la-like (N={})", metr.ctx.n);
    for alpha in [1.0f32, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5] {
        let mut cfg = SagdfnConfig::for_scale(args.scale, metr.ctx.n);
        cfg.alpha = alpha;
        let mut model = SagdfnForecaster::new(metr.ctx.n, cfg);
        model.fit(&metr.split);
        let m = average(&model.evaluate(&metr.split.test));
        println!("  alpha={alpha:<5} MAE={:.3} RMSE={:.3}", m.mae, m.rmse);
        writeln!(csv, "alpha,{alpha},{},{},{}", m.mae, m.rmse, m.mape).unwrap();
    }

    // (b) heads sweep on METR-LA-like.
    println!("\n(b) attention heads on metr-la-like");
    for heads in [1usize, 2, 4, 8] {
        let mut cfg = SagdfnConfig::for_scale(args.scale, metr.ctx.n);
        cfg.heads = heads;
        let mut model = SagdfnForecaster::new(metr.ctx.n, cfg);
        model.fit(&metr.split);
        let m = average(&model.evaluate(&metr.split.test));
        println!("  heads={heads:<3} MAE={:.3} RMSE={:.3}", m.mae, m.rmse);
        writeln!(csv, "heads,{heads},{},{},{}", m.mae, m.rmse, m.mape).unwrap();
    }

    // (c) M sweep on CARPARK-like.
    let cp = load(DatasetKind::Carpark, args.scale);
    let n = cp.ctx.n;
    println!("\n(c) significant neighbors M on carpark1918-like (N={n})");
    let m_values: Vec<usize> = [n / 8, n / 4, n / 2, (3 * n) / 4]
        .into_iter()
        .map(|m| m.max(3))
        .collect();
    for m_size in m_values {
        let mut cfg = SagdfnConfig::for_scale(args.scale, n);
        cfg.m = m_size;
        cfg.top_k = (m_size * 4 / 5).max(1).min(m_size - 1);
        let mut model = SagdfnForecaster::new(n, cfg);
        model.fit(&cp.split);
        let m = average(&model.evaluate(&cp.split.test));
        println!("  M={m_size:<4} MAE={:.3} RMSE={:.3}", m.mae, m.rmse);
        writeln!(csv, "m,{m_size},{},{},{}", m.mae, m.rmse, m.mape).unwrap();
    }

    println!("\nwrote {}/fig03_sensitivity.csv", args.out_dir);
    println!("expectation: alpha sweet spot near 2.0; more heads help; MAE flattens once M is large enough");
}
