//! Table 7: performance comparison on the newyork2000-like dataset.
//! Quadratic-memory baselines are gated by the 32 GB V100 memory model at
//! paper scale and print as 'x (OOM)', matching the paper's '×' cells.

use sagdfn_bench::runner::{csv_row, format_row, table_families, CSV_HEADER};
use sagdfn_bench::{load, run_family, DatasetKind, RunArgs};
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!(
        "TABLE 7 — newyork2000-like (scale {:?}); horizons 3 | 6 | 12, cells: MAE RMSE MAPE",
        args.scale
    );
    let data = load(DatasetKind::NewYork, args.scale);
    println!(
        "dataset: N={} (OOM gate at paper N={}) windows {}/{}/{}",
        data.ctx.n,
        data.kind.paper_n(),
        data.split.train.len(),
        data.split.val.len(),
        data.split.test.len()
    );
    let mut csv = args.csv_writer("table07_newyork2000").expect("csv");
    csv.write_all(CSV_HEADER.as_bytes()).unwrap();
    for family in table_families() {
        if !args.wants(family.name()) {
            continue;
        }
        let outcome = run_family(family, &data);
        println!("{}", format_row(family.name(), &outcome));
        csv.write_all(csv_row(family.name(), &outcome).as_bytes())
            .unwrap();
    }
    println!("\nwrote {}/table07_newyork2000.csv", args.out_dir);
}
