//! Table VIII: ablation study on the CARPARK1918(-like) dataset — the
//! full model against the four component-removal variants.

use sagdfn_baselines::sagdfn_adapter::SagdfnForecaster;
use sagdfn_baselines::Forecaster;
use sagdfn_bench::{load, DatasetKind, RunArgs};
use sagdfn_core::{SagdfnConfig, Variant};
use std::io::Write;

fn main() {
    let args = RunArgs::parse();
    println!(
        "TABLE VIII — Ablation on CARPARK1918-like (scale {:?}); horizons 3 | 6 | 12",
        args.scale
    );
    let data = load(DatasetKind::Carpark, args.scale);
    let n = data.ctx.n;
    let topo_k = (n / 8).clamp(4, 100);
    // The entmax/SNS effects the ablation isolates only manifest when M is
    // large enough that most significant-neighbor entries are noise for
    // any given node (the paper runs M = 100 on N = 1918). At reduced run
    // scales we therefore widen M to half the graph.
    let make_cfg = || {
        let mut cfg = SagdfnConfig::for_scale(args.scale, n);
        if !matches!(args.scale, sagdfn_data::Scale::Paper) {
            cfg.m = (n / 2).clamp(8, 100);
            cfg.top_k = (cfg.m * 3 / 5).max(1);
        }
        cfg
    };
    let mut csv = args.csv_writer("table08_ablation").expect("csv");
    writeln!(csv, "variant,mae3,rmse3,mape3,mae6,rmse6,mape6,mae12,rmse12,mape12").unwrap();
    for variant in Variant::ALL {
        if !args.wants(variant.name()) {
            continue;
        }
        let topo = (!variant.uses_learned_graph())
            .then(|| data.graph.adj.topk_rows(topo_k).weights().clone());
        let mut model = SagdfnForecaster::variant(n, make_cfg(), variant, topo);
        model.fit(&data.split);
        let metrics = model.evaluate(&data.split.test);
        let at = |hz: usize| metrics[(hz - 1).min(metrics.len() - 1)];
        println!(
            "{:>16}  {} | {} | {}",
            variant.name(),
            at(3).row(),
            at(6).row(),
            at(12).row()
        );
        writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{}",
            variant.name(),
            at(3).mae,
            at(3).rmse,
            at(3).mape,
            at(6).mae,
            at(6).rmse,
            at(6).mape,
            at(12).mae,
            at(12).rmse,
            at(12).mape
        )
        .unwrap();
    }
    println!("\nwrote {}/table08_ablation.csv", args.out_dir);
    println!("expectation: full SAGDFN beats all four variants");
}
