//! Inference-path benchmark: measures seconds/batch for a full eval sweep
//! in four execution modes — the recording tape ("taped", what training
//! uses), the no-grad tape with the adjacency rebuilt per batch, the
//! no-grad tape with the frozen adjacency plan reused across batches but
//! still interpreted op-by-op, and the compiled plan executor
//! (`SAGDFN_PLAN`, the default `Mode::Eval` path since the plan-executor
//! change). Writes `BENCH_infer.json`.
//!
//! The four arms are timed *interleaved* — every rep runs one pass of
//! each arm back to back — and each pass is timed individually with the
//! per-arm minimum reported. Eval passes here run in single-digit
//! milliseconds: one scheduler hiccup inside a single accumulated
//! measurement, or CPU frequency drift between two arms timed in
//! separate blocks, can invert a real 1.6x speedup into an apparent
//! regression (the same phantom-regression fix `bench_tensor` uses).
//!
//! The workload is attention-heavy (wide embeddings, several SSMA heads)
//! so the per-batch adjacency rebuild is a real cost, as it is at paper
//! scale where `N·M` pair scoring dominates. All four modes must produce
//! bit-identical predictions; the frozen mode must register plan-cache
//! hits and the planned mode must run its compiled schedule with zero
//! steady-state allocator acquires.
//!
//! Usage: `bench_infer [--out FILE] [--steps N] [--check BASELINE]`
//!
//! With `--check`, the process exits nonzero unless the no-grad tape is
//! at least as fast as the taped eval, the frozen-plan eval is >= 1.3x
//! taped, the planned executor is >= 2.5x taped, the plan cache recorded
//! at least one hit, and the steady-state planned pass acquired zero
//! buffers — `scripts/check.sh` uses this as the inference-path
//! regression guard.

use sagdfn_autodiff::Tape;
use sagdfn_core::{set_plan_mode, Mode, PlanMode, Sagdfn, SagdfnConfig};
use sagdfn_data::{Batch, SplitSpec, ThreeWaySplit};
use sagdfn_json::Json;
use sagdfn_obs as obs;
use sagdfn_tensor::{pool, Tensor};
use std::time::Instant;

const WARMUP_REPS: usize = 2;

/// How a benchmark pass executes the forward.
#[derive(Clone, Copy, PartialEq)]
enum RunKind {
    /// Recording tape, adjacency rebuilt per batch (the training path).
    Taped,
    /// No-grad tape, adjacency still rebuilt per batch.
    NoGradRebuilt,
    /// No-grad tape, frozen adjacency plan reused, interpreted ops.
    NoGradFrozen,
    /// Compiled plan executor: frozen adjacency + linearized schedule.
    Planned,
}

/// An attention-heavy eval workload: adjacency construction (SSMA pair
/// scoring over N·M pairs) is the dominant per-batch cost, mirroring the
/// paper-scale regime.
fn workload() -> (Sagdfn, ThreeWaySplit) {
    let data = sagdfn_data::synth::TrafficConfig {
        nodes: 120,
        steps: 220,
        ..Default::default()
    }
    .generate("infer");
    let n = data.dataset.nodes();
    let cfg = SagdfnConfig {
        embed_dim: 48,
        m: 24,
        top_k: 18,
        heads: 6,
        attn_hidden: 24,
        hidden: 16,
        diffusion_steps: 2,
        batch_size: 4,
        convergence_iter: 10,
        sns_every: 1_000_000,
        ..SagdfnConfig::for_scale(sagdfn_data::Scale::Tiny, n)
    };
    let model = Sagdfn::new(n, cfg);
    let split = ThreeWaySplit::new(data.dataset, SplitSpec::paper(6, 6));
    (model, split)
}

/// One full pass over the eval split in the given mode, returning its
/// wall-clock seconds. Collects every prediction's bit pattern into
/// `bits` when provided (pass `None` for timed reps).
fn one_pass(
    model: &Sagdfn,
    split: &ThreeWaySplit,
    batches: &[Vec<usize>],
    kind: RunKind,
    mut bits: Option<&mut Vec<u32>>,
) -> f64 {
    // The frozen arm must measure the *interpreted* eval path, so the
    // plan executor is pinned off for every arm except Planned.
    let prev_plan = set_plan_mode(if kind == RunKind::Planned {
        PlanMode::On
    } else {
        PlanMode::Off
    });
    let tape = Tape::new();
    let _no_grad = (kind != RunKind::Taped).then(|| tape.no_grad());
    let mode = if kind == RunKind::NoGradFrozen || kind == RunKind::Planned {
        Mode::Eval
    } else {
        Mode::Train // dropout is 0, so train-mode math == eval math
    };
    let t0 = Instant::now();
    for ids in batches {
        let _step = obs::kernel(obs::Kernel::EvalStep, 0, 0, 0);
        let batch = split.test.make_batch(ids);
        tape.reset();
        let bind = model.params.bind(&tape);
        let pred = model
            .forward(&tape, &bind, &batch, split.scaler, mode)
            .value();
        if let Some(bits) = bits.as_deref_mut() {
            bits.extend(pred.as_slice().iter().map(|v| v.to_bits()));
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    set_plan_mode(prev_plan);
    seconds
}

/// Measures allocator acquires across one steady-state planned pass:
/// batches and output buffers are materialized up front, a warmup pass
/// compiles the schedules, then the counted pass must acquire nothing.
fn planned_steady_state_acquires(model: &Sagdfn, split: &ThreeWaySplit) -> u64 {
    let batch_size = model.config().batch_size;
    let scaler = split.scaler;
    let mut work: Vec<(Batch, Tensor)> = split
        .test
        .batch_ids(batch_size, None)
        .iter()
        .map(|ids| {
            let batch = split.test.make_batch(ids);
            let out = Tensor::zeros([batch.y.dim(0), batch.x.dim(1), batch.x.dim(2)]);
            (batch, out)
        })
        .collect();
    let prev_plan = set_plan_mode(PlanMode::On);
    model.invalidate_plan();
    for (batch, out) in &mut work {
        assert!(
            model.planned_forward_into(batch, scaler, out),
            "planned path must be eligible for the GRU workload"
        );
    }
    let before = obs::snapshot();
    for (batch, out) in &mut work {
        model.planned_forward_into(batch, scaler, out);
    }
    let delta = obs::snapshot().since(&before);
    set_plan_mode(prev_plan);
    delta.alloc_acquires
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_infer.json".to_string();
    let mut reps = 12usize;
    let mut check: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--steps" => reps = it.next().expect("--steps needs a value").parse().expect("steps"),
            "--check" => check = Some(it.next().expect("--check needs a value").clone()),
            other => panic!("unknown flag '{other}' (expected --out / --steps / --check)"),
        }
    }

    // Counters stay on for every mode (same overhead everywhere) so the
    // plan-cache build/hit tally and per-op schedule times are visible.
    obs::set_trace_mode(obs::TraceMode::Counters);

    let (model, split) = workload();
    println!(
        "inference benchmark: {} worker threads, {} nodes, {} eval windows, {reps} reps",
        pool::num_threads(),
        model.n(),
        split.test.len()
    );

    let kinds = [
        RunKind::Taped,
        RunKind::NoGradRebuilt,
        RunKind::NoGradFrozen,
        RunKind::Planned,
    ];
    let batches: Vec<Vec<usize>> = split.test.batch_ids(model.config().batch_size, None);
    // One plan invalidation up front: the first frozen-path pass pays the
    // single adjacency build and schedule compile during warmup, then
    // every later pass hits the caches.
    model.invalidate_plan();
    let counters_before = obs::snapshot();
    let mut all_bits: Vec<Vec<u32>> = Vec::new();
    for kind in kinds {
        for _ in 0..WARMUP_REPS {
            one_pass(&model, &split, &batches, kind, None);
        }
        let mut bits = Vec::new();
        one_pass(&model, &split, &batches, kind, Some(&mut bits));
        all_bits.push(bits);
    }
    // Interleaved, order-alternating timing: each rep runs one pass of
    // every arm back to back so frequency drift hits all arms alike, and
    // odd reps reverse the arm order so no arm always inherits the
    // thermal/boost state left by the longest arm; min-of-reps per arm.
    let mut best = [f64::INFINITY; 4];
    for rep in 0..reps {
        let order: Vec<usize> = if rep % 2 == 0 {
            (0..kinds.len()).collect()
        } else {
            (0..kinds.len()).rev().collect()
        };
        for k in order {
            best[k] = best[k].min(one_pass(&model, &split, &batches, kinds[k], None));
        }
    }
    let counters = obs::snapshot().since(&counters_before);
    let per_batch = |k: usize| best[k] / batches.len() as f64;
    let (taped_spb, rebuilt_spb, frozen_spb, planned_spb) =
        (per_batch(0), per_batch(1), per_batch(2), per_batch(3));
    let [taped_bits, rebuilt_bits, frozen_bits, planned_bits] =
        <[Vec<u32>; 4]>::try_from(all_bits).expect("four arms");
    let planned_acquires = planned_steady_state_acquires(&model, &split);

    let bit_identical =
        taped_bits == rebuilt_bits && taped_bits == frozen_bits && taped_bits == planned_bits;
    let speedup_nograd = taped_spb / rebuilt_spb;
    let speedup_frozen = taped_spb / frozen_spb;
    let speedup_planned = taped_spb / planned_spb;
    println!("  taped           {:>9.3} ms/batch", taped_spb * 1e3);
    println!(
        "  no-grad rebuilt {:>9.3} ms/batch   ({speedup_nograd:.2}x vs taped)",
        rebuilt_spb * 1e3
    );
    println!(
        "  no-grad frozen  {:>9.3} ms/batch   ({speedup_frozen:.2}x vs taped)",
        frozen_spb * 1e3
    );
    println!(
        "  planned         {:>9.3} ms/batch   ({speedup_planned:.2}x vs taped)",
        planned_spb * 1e3
    );
    println!(
        "  plan cache: {} builds / {} hits   schedule: {} compiles / {} runs   predictions bit-identical: {bit_identical}",
        counters.plan_builds, counters.plan_hits, counters.plan_compiles, counters.plan_execs
    );
    println!("  steady-state planned pass: {planned_acquires} allocator acquires");
    if let Some(table) = model.plan_table() {
        println!("\n{table}");
    }
    assert!(
        bit_identical,
        "no-grad / frozen / planned eval changed predictions — bit-identity contract violated"
    );
    assert!(
        counters.plan_builds >= 1,
        "frozen eval never built an adjacency plan"
    );
    assert!(
        counters.plan_compiles >= 1 && counters.plan_execs >= 1,
        "planned eval never ran its compiled schedule"
    );

    let doc = Json::obj([
        ("threads", Json::from(pool::num_threads())),
        ("reps", Json::from(reps)),
        ("nodes", Json::from(model.n())),
        ("taped_seconds_per_batch", Json::from(taped_spb)),
        ("nograd_seconds_per_batch", Json::from(rebuilt_spb)),
        ("frozen_seconds_per_batch", Json::from(frozen_spb)),
        ("planned_seconds_per_batch", Json::from(planned_spb)),
        ("speedup_nograd", Json::from(speedup_nograd)),
        ("speedup_frozen", Json::from(speedup_frozen)),
        ("speedup_planned", Json::from(speedup_planned)),
        ("plan_builds", Json::from(counters.plan_builds)),
        ("plan_hits", Json::from(counters.plan_hits)),
        ("plan_compiles", Json::from(counters.plan_compiles)),
        ("plan_execs", Json::from(counters.plan_execs)),
        ("planned_acquires", Json::from(planned_acquires)),
        ("bit_identical", Json::from(bit_identical)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty().expect("serialize"))
        .expect("write BENCH_infer.json");
    println!("wrote {out_path}");

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("parse baseline");
        let base_speedup = baseline
            .req("speedup_frozen")
            .and_then(|v| v.as_f64())
            .expect("baseline speedup_frozen");
        println!(
            "  regression guard: frozen {speedup_frozen:.2}x (baseline {base_speedup:.2}x, floor 1.30x), \
             no-grad {speedup_nograd:.2}x (floor 1.00x), planned {speedup_planned:.2}x (floor 2.50x)"
        );
        fn fail(msg: &str) -> ! {
            eprintln!("inference regression: {msg}");
            std::process::exit(1);
        }
        if speedup_frozen < 1.3 {
            fail("frozen-plan eval no longer >= 1.3x taped eval");
        }
        if speedup_nograd < 1.0 {
            fail("no-grad eval slower than the taped eval");
        }
        if speedup_planned < 2.5 {
            fail("planned executor no longer >= 2.5x taped eval");
        }
        if counters.plan_hits == 0 {
            fail("plan cache recorded zero hits across batches");
        }
        if planned_acquires != 0 {
            fail("steady-state planned pass acquired buffers (arena slots must be pre-resolved)");
        }
    }
}
